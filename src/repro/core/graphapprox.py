"""Graph approximation of the hexagonal plane (Section 4.2).

Enforcing ε-Geo-Ind for every ordered pair of the K locations costs
``O(K³)`` constraints once each of the K matrix columns is counted.  The
paper instead connects every cell to its 6 immediate and 6 diagonal
neighbours, assigns every edge the weight ``a`` (the centre distance of
immediate neighbours) and enforces Geo-Ind only across edges.  Lemma 4.1
shows that the resulting graph distance never exceeds the Euclidean
distance, and Theorem 4.1 (transitivity) that edge-wise Geo-Ind therefore
implies Geo-Ind for every pair, cutting the constraint count to ``O(K²)``.

Two weightings are provided:

* ``"paper"`` (default) — every edge, diagonal or not, weighs ``a``.  This is
  the paper's choice and the only one for which Lemma 4.1 holds, i.e. the
  only *sound* approximation.
* ``"euclidean"`` — edges weigh their true centre distance (``a`` or
  ``sqrt(3)·a``).  The resulting constraints are looser (lower quality loss)
  but no longer guarantee Geo-Ind for non-adjacent pairs; it is kept as an
  ablation (see ``benchmarks/bench_ablation_graph_weights.py``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Literal, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components, shortest_path

from repro.core.geoind import GeoIndConstraintSet, neighbor_constraints
from repro.hexgrid.cell import HexCell
from repro.hexgrid.grid import HexGridSystem
from repro.hexgrid.lattice import AXIAL_DIRECTIONS, DIAGONAL_DIRECTIONS
from repro.utils.logging import get_logger

logger = get_logger(__name__)

Weighting = Literal["paper", "euclidean"]

_SQRT3 = math.sqrt(3.0)


class HexNeighborhoodGraph:
    """The 12-neighbour graph over a set of same-resolution hexagonal cells.

    Parameters
    ----------
    grid:
        The hexagonal grid system the cells belong to.
    cells:
        The cells (all at the same resolution), in the order used by the
        obfuscation matrix rows/columns.
    weighting:
        Edge weighting scheme, see the module docstring.
    include_diagonals:
        When false, only the 6 immediate neighbours are connected (a further
        ablation; Lemma 4.1 then fails for diagonal pairs).
    """

    def __init__(
        self,
        grid: HexGridSystem,
        cells: Sequence[HexCell],
        *,
        weighting: Weighting = "paper",
        include_diagonals: bool = True,
    ) -> None:
        if not cells:
            raise ValueError("cells must not be empty")
        resolutions = {cell.resolution for cell in cells}
        if len(resolutions) != 1:
            raise ValueError(f"all cells must share one resolution, got {sorted(resolutions)}")
        if weighting not in ("paper", "euclidean"):
            raise ValueError(f"unknown weighting {weighting!r}")
        self.grid = grid
        self.cells = list(cells)
        self.weighting: Weighting = weighting
        self.include_diagonals = include_diagonals
        self.resolution = self.cells[0].resolution
        self.spacing_km = grid.neighbor_spacing_km(self.resolution)
        self._index: Dict[Tuple[int, int], int] = {
            cell.axial: position for position, cell in enumerate(self.cells)
        }
        if len(self._index) != len(self.cells):
            raise ValueError("cells must be unique")
        self._edges = self._build_edges()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build_edges(self) -> List[Tuple[int, int, float]]:
        edges: List[Tuple[int, int, float]] = []
        immediate_weight = self.spacing_km
        diagonal_weight = self.spacing_km if self.weighting == "paper" else _SQRT3 * self.spacing_km
        directions: List[Tuple[Tuple[int, int], float]] = [
            (direction, immediate_weight) for direction in AXIAL_DIRECTIONS
        ]
        if self.include_diagonals:
            directions += [(direction, diagonal_weight) for direction in DIAGONAL_DIRECTIONS]
        for position, cell in enumerate(self.cells):
            q, r = cell.axial
            for (dq, dr), weight in directions:
                neighbor = (q + dq, r + dr)
                other = self._index.get(neighbor)
                if other is None or other <= position:
                    # Undirected edges are recorded once (smaller index first).
                    continue
                edges.append((position, other, weight))
        return edges

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of cells (graph nodes)."""
        return len(self.cells)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def edges(self) -> List[Tuple[int, int, float]]:
        """Undirected edges as ``(index_a, index_b, weight_km)`` triples."""
        return list(self._edges)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric weighted adjacency matrix (0 where not adjacent)."""
        matrix = np.zeros((self.size, self.size))
        for a, b, weight in self._edges:
            matrix[a, b] = weight
            matrix[b, a] = weight
        return matrix

    def _sparse_adjacency(self) -> coo_matrix:
        if not self._edges:
            return coo_matrix((self.size, self.size))
        a_indices, b_indices, weights = zip(*self._edges)
        rows = np.concatenate([a_indices, b_indices])
        cols = np.concatenate([b_indices, a_indices])
        data = np.concatenate([weights, weights])
        return coo_matrix((data, (rows, cols)), shape=(self.size, self.size))

    def is_connected(self) -> bool:
        """Whether the graph is connected (required by Theorem 4.1's transitivity)."""
        if self.size <= 1:
            return True
        count, _ = connected_components(self._sparse_adjacency(), directed=False)
        return int(count) == 1

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #

    def graph_distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances on the graph, in km (inf if disconnected)."""
        if not self._edges:
            matrix = np.full((self.size, self.size), np.inf)
            np.fill_diagonal(matrix, 0.0)
            return matrix
        return shortest_path(self._sparse_adjacency(), method="D", directed=False)

    def euclidean_distance_matrix(self) -> np.ndarray:
        """Planar Euclidean distances between cell centres (km)."""
        centers = np.array([self.grid.cell_center_xy(cell) for cell in self.cells])
        deltas = centers[:, None, :] - centers[None, :, :]
        return np.sqrt((deltas**2).sum(axis=2))

    def haversine_distance_matrix(self) -> np.ndarray:
        """Great-circle distances between cell centres (km)."""
        return self.grid.cell_distance_matrix_km(self.cells)

    def verify_lower_bound(self, *, atol: float = 1e-6) -> bool:
        """Empirically check Lemma 4.1: graph distance ≤ Euclidean distance for all pairs.

        Only guaranteed for the ``"paper"`` weighting on a connected cell set.
        """
        graph = self.graph_distance_matrix()
        euclid = self.euclidean_distance_matrix()
        finite = np.isfinite(graph)
        return bool(np.all(graph[finite] <= euclid[finite] + atol))

    # ------------------------------------------------------------------ #
    # Constraint generation
    # ------------------------------------------------------------------ #

    def constraint_set(self) -> GeoIndConstraintSet:
        """Ordered neighbour pairs and the distances used in their Geo-Ind constraints.

        Both orientations of every undirected edge are returned, because
        constraint (i, j) bounds ``z_{i,k}`` by ``z_{j,k}`` and vice versa.
        """
        pairs: List[Tuple[int, int]] = []
        distances: List[float] = []
        for a, b, weight in self._edges:
            pairs.append((a, b))
            distances.append(weight)
            pairs.append((b, a))
            distances.append(weight)
        description = f"12-neighbour graph ({self.weighting} weights)"
        if not self.include_diagonals:
            description = f"6-neighbour graph ({self.weighting} weights)"
        if not pairs:
            logger.warning("neighbourhood graph has no edges; constraint set is empty")
            return GeoIndConstraintSet(
                pairs=np.zeros((0, 2), dtype=int),
                distances_km=np.zeros(0),
                description=description,
            )
        return neighbor_constraints(pairs, distances, description=description)

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (node attribute ``cell_id``, edge ``weight``)."""
        import networkx as nx

        graph = nx.Graph()
        for position, cell in enumerate(self.cells):
            graph.add_node(position, cell_id=cell.cell_id)
        for a, b, weight in self._edges:
            graph.add_edge(a, b, weight=weight)
        return graph

    def __repr__(self) -> str:
        return (
            f"HexNeighborhoodGraph(size={self.size}, edges={self.num_edges}, "
            f"weighting={self.weighting!r}, diagonals={self.include_diagonals})"
        )
