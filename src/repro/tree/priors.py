"""Prior probability estimation from check-in data (Section 6.1, "Priors").

The paper computes the prior probability of every leaf node by counting the
user check-ins falling inside it and aggregates the counts up the tree for
internal nodes.  This module implements that estimator with optional
additive smoothing (so that leaves with zero observed check-ins keep a small
non-zero probability, which keeps the Geo-Ind constraints meaningful) plus
the uniform fallback used in ablations.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def checkin_counts_by_cell(tree: LocationTree, checkins: Iterable) -> Counter:
    """Count check-ins per leaf node of *tree*.

    Parameters
    ----------
    tree:
        The location tree whose leaves define the counting bins.
    checkins:
        Iterable of objects exposing ``lat`` and ``lng`` attributes (e.g.
        :class:`repro.datasets.checkin.CheckIn`), or ``(lat, lng)`` tuples.
        Check-ins outside the tree's area of interest are ignored (and
        counted in the log message).

    Returns
    -------
    collections.Counter
        Mapping from leaf node id to the number of check-ins inside it.
    """
    counts: Counter = Counter()
    outside = 0
    total = 0
    for checkin in checkins:
        total += 1
        lat, lng = _coords(checkin)
        if not tree.contains_latlng(lat, lng):
            outside += 1
            continue
        leaf = tree.leaf_for_latlng(lat, lng)
        counts[leaf.node_id] += 1
    if outside:
        logger.debug("%d of %d check-ins fall outside the area of interest", outside, total)
    return counts


def priors_from_checkins(
    tree: LocationTree,
    checkins: Iterable,
    *,
    smoothing: float = 0.5,
    apply: bool = True,
) -> Dict[str, float]:
    """Estimate leaf priors from check-ins and (optionally) install them on the tree.

    Parameters
    ----------
    tree:
        Location tree whose leaves receive the priors.
    checkins:
        Check-in records (see :func:`checkin_counts_by_cell`).
    smoothing:
        Additive (Laplace) smoothing constant added to every leaf count.
        ``0`` reproduces the raw empirical estimator of the paper.
    apply:
        When true (default), the priors are installed on the tree via
        :meth:`LocationTree.set_leaf_priors` so that internal-node priors are
        aggregated immediately.

    Returns
    -------
    dict
        Mapping from leaf node id to its prior probability (sums to 1).
    """
    if smoothing < 0:
        raise ValueError(f"smoothing must be non-negative, got {smoothing}")
    counts = checkin_counts_by_cell(tree, checkins)
    leaf_ids = [leaf.node_id for leaf in tree.leaves()]
    masses = np.array([counts.get(node_id, 0) + smoothing for node_id in leaf_ids], dtype=float)
    if masses.sum() <= 0:
        logger.warning("no check-ins inside the area of interest and no smoothing; using uniform priors")
        masses = np.ones(len(leaf_ids))
    probabilities = masses / masses.sum()
    priors = {node_id: float(p) for node_id, p in zip(leaf_ids, probabilities)}
    if apply:
        tree.set_leaf_priors(priors, normalize=False)
    return priors


def uniform_priors(tree: LocationTree, *, apply: bool = True) -> Dict[str, float]:
    """Uniform prior over the leaves (ablation baseline)."""
    leaf_ids = [leaf.node_id for leaf in tree.leaves()]
    probability = 1.0 / len(leaf_ids)
    priors = {node_id: probability for node_id in leaf_ids}
    if apply:
        tree.set_leaf_priors(priors, normalize=False)
    return priors


def aggregate_priors(tree: LocationTree, node_ids: Sequence[str]) -> np.ndarray:
    """Prior vector of arbitrary (same-level) nodes, each the sum of its leaf priors.

    Useful when building matrices directly at an intermediate precision
    level; for leaves this is simply their stored prior.
    """
    values = []
    for node_id in node_ids:
        node = tree.node(node_id)
        if node.is_leaf:
            values.append(node.prior)
        else:
            values.append(sum(leaf.prior for leaf in tree.descendant_leaves(node_id)))
    return np.asarray(values, dtype=float)


def conditional_priors(
    tree: LocationTree,
    node_ids: Sequence[str],
    *,
    fallback_uniform: bool = True,
) -> np.ndarray:
    """Priors over *node_ids* re-normalised to sum to 1 within the group."""
    raw = aggregate_priors(tree, node_ids)
    total = raw.sum()
    if total <= 0:
        if not fallback_uniform:
            raise ValueError("the selected nodes carry zero prior mass")
        return np.full(len(node_ids), 1.0 / len(node_ids))
    return raw / total


def priors_from_counts(
    tree: LocationTree,
    counts: Mapping[str, float],
    *,
    smoothing: float = 0.0,
    apply: bool = True,
) -> Dict[str, float]:
    """Install priors from an externally computed count table.

    Mirrors :func:`priors_from_checkins` but accepts pre-aggregated counts,
    e.g. published visit statistics, so that a deployment does not need raw
    check-in events.
    """
    if smoothing < 0:
        raise ValueError(f"smoothing must be non-negative, got {smoothing}")
    leaf_ids = [leaf.node_id for leaf in tree.leaves()]
    unknown = set(counts) - set(leaf_ids)
    if unknown:
        raise KeyError(f"counts refer to nodes that are not leaves of this tree: {sorted(unknown)[:5]}")
    masses = np.array([float(counts.get(node_id, 0.0)) + smoothing for node_id in leaf_ids])
    if np.any(masses < 0):
        raise ValueError("counts must be non-negative")
    if masses.sum() <= 0:
        masses = np.ones(len(leaf_ids))
    probabilities = masses / masses.sum()
    priors = {node_id: float(p) for node_id, p in zip(leaf_ids, probabilities)}
    if apply:
        tree.set_leaf_priors(priors, normalize=False)
    return priors


def _coords(checkin) -> tuple:
    if hasattr(checkin, "lat") and hasattr(checkin, "lng"):
        return (float(checkin.lat), float(checkin.lng))
    lat, lng = checkin
    return (float(lat), float(lng))
