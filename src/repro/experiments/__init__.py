"""Experiment drivers reproducing every figure of the paper's evaluation.

Each module reproduces one figure of Section 6.2 and returns both the raw
measurements and a :class:`~repro.analysis.tables.ResultTable` printing the
same rows/series the paper reports:

* :mod:`repro.experiments.convergence`        — Fig. 9 (Algorithm 1 convergence)
* :mod:`repro.experiments.graph_approx`       — Fig. 10 (graph approximation)
* :mod:`repro.experiments.privacy_params`     — Fig. 11 (ε and δ vs quality loss)
* :mod:`repro.experiments.pruning_impact`     — Fig. 12 (pruning vs Geo-Ind violations)
* :mod:`repro.experiments.privacy_level`      — Fig. 13 (privacy level vs quality loss)
* :mod:`repro.experiments.precision_timing`   — Fig. 14 (precision reduction vs recalculation)

:mod:`repro.experiments.config` defines the shared experiment configuration
(with ``small`` and ``paper`` scales) and :mod:`repro.experiments.workloads`
the shared workload construction (tree, priors, location sets, targets).
:mod:`repro.experiments.runner` runs everything end to end.
"""

from repro.experiments.config import ExperimentConfig, PAPER_SCALE, SMALL_SCALE, get_scale
from repro.experiments.workloads import ExperimentWorkload, build_workload

__all__ = [
    "ExperimentConfig",
    "SMALL_SCALE",
    "PAPER_SCALE",
    "get_scale",
    "ExperimentWorkload",
    "build_workload",
]
