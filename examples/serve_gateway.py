"""Hold one push-gateway connection and receive matrix refreshes, no polling.

Demonstrates the asyncio push front-end layered over the same service core
the sync HTTP transport uses:

1. the server process wraps a ``ForestEngine`` in a ``CORGIService`` and
   starts a ``GatewayServer`` next to the ``CORGIHTTPServer`` — both fronts
   share the single-flight gate, caches, metrics and admin surface;
2. the user device opens **one** long-lived ``GatewayClient`` connection,
   subscribes to its ``(privacy_level, delta, epsilon)`` key and blocks on
   pushes — no re-poll loop anywhere;
3. an admin ``publish_priors`` (a fresh batch of check-in statistics)
   flushes the caches and the gateway pushes the rebuilt matrix to every
   subscriber, tagged with a new generation; the client's generation guard
   guarantees it never installs a matrix older than the one it holds;
4. the gateway counters surface in the service metrics and the gateway
   gauges in ``GET /admin/diagnostics`` of the HTTP front.

Run with::

    python examples/serve_gateway.py

For a standalone server use ``python -m repro.experiments.runner --serve
--port 8350 --gateway-port 8351``.
"""

import json

from repro import (
    CORGIHTTPServer,
    CORGIService,
    ServerConfig,
    annotate_tree_with_dataset,
    priors_from_checkins,
    tree_for_region,
)
from repro.client.gateway import GatewayClient
from repro.datasets import SAN_FRANCISCO
from repro.datasets.synthetic import generate_small_dataset
from repro.server.engine import ForestEngine
from repro.service.gateway import GatewayServer

PRIVACY_LEVEL = 1
DELTA = 1


def main() -> None:
    # --- server side -------------------------------------------------- #
    dataset = generate_small_dataset(num_checkins=4_000, seed=7)
    tree = tree_for_region(SAN_FRANCISCO, height=1, root_resolution=8)
    priors_from_checkins(tree, dataset)
    annotate_tree_with_dataset(tree, dataset)

    engine = ForestEngine(tree, ServerConfig(epsilon=10.0, num_targets=20, robust_iterations=1))
    service = CORGIService(engine)

    with GatewayServer(service) as gateway, CORGIHTTPServer(service, port=0) as http:
        print(f"server: push gateway on {gateway.host}:{gateway.port}, HTTP on {http.url}")

        # --- user device: one held connection, zero polling ------------ #
        with GatewayClient(gateway.host, gateway.port) as device:
            key = device.subscribe(PRIVACY_LEVEL, DELTA)
            print(f"client: subscribed to {key}")

            initial = device.wait_forest(key)
            print(
                f"client: initial matrix pushed (generation {initial.generation}, "
                f"{len(initial.forest().matrices)} sub-tree(s))"
            )

            # --- admin publishes fresh priors — the refresh is PUSHED -- #
            new_priors = {leaf.node_id: leaf.prior + 0.001 for leaf in tree.leaves()}
            flushed = service.publish_priors(new_priors)
            print(f"admin:  published new priors, flushed {flushed} cached forest(s)")

            refreshed = device.wait_forest(key, min_generation=initial.generation + 1)
            print(
                f"client: refreshed matrix pushed (generation {refreshed.generation}, "
                f"reason {refreshed.reason!r}) — no re-poll happened"
            )
            print(f"client: frame stats {device.stats()}")

        # --- observability --------------------------------------------- #
        snapshot = service.metrics.snapshot()
        print("server: gateway counters:")
        print(
            json.dumps(
                {k: v for k, v in snapshot.items() if k.startswith("gateway_")},
                indent=2,
            )
        )
        print("server: gateway gauges (also under GET /admin/diagnostics):")
        print(json.dumps(service.diagnostics()["gateway"], indent=2))


if __name__ == "__main__":
    main()
