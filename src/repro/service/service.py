"""The CORGI service front: request semantics over the forest engine.

Figure 1's trust model is an explicit client/server protocol, and a server
facing millions of users needs more than a callable engine.  The
:class:`CORGIService` wraps a :class:`~repro.server.engine.ForestEngine`
with exactly the concerns a serving tier owns:

* **validation / normalization** — wire payloads are coerced into
  well-typed :class:`~repro.server.messages.ObfuscationRequest` objects and
  the effective ε is resolved *before* keying, so ``epsilon: null`` and an
  explicit default coalesce to the same build;
* **single-flight coalescing** — concurrent identical ``(privacy_level, δ,
  ε)`` requests share one forest build: the first caller becomes the
  *leader* and runs the engine, everyone else waits on the leader's result
  (millions of users request the handful of sanctioned parameter
  combinations, so this is the difference between one LP campaign and N);
* **bounded batching** — :meth:`handle_batch` deduplicates identical
  requests inside one batch and bounds the number of distinct builds a
  single batch may demand;
* **admission control** — at most ``max_in_flight`` engine builds run
  concurrently and at most ``max_queue_depth`` further *distinct* builds
  may wait; beyond that the service fails fast with
  :class:`ServiceOverloadedError` (HTTP 503 on the wire) instead of
  accumulating unbounded work;
* **metrics** — per-request latency percentiles and coalesce/cache-hit
  counters (:class:`~repro.service.metrics.ServiceMetrics`).

The service is transport-agnostic: :mod:`repro.service.http` exposes it
over stdlib HTTP, and :class:`~repro.client.transport.InProcessTransport`
calls it directly.  It also satisfies the ``generate_privacy_forest`` duck
type, so a :class:`~repro.client.client.CORGIClient` can sit right on top
of it and benefit from coalescing without any wire format in between.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import CORGIError
from repro.server.engine import ForestEngine
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.server.privacy_forest import PrivacyForest
from repro.service.metrics import ServiceMetrics
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "CORGIService",
    "CoalescedBuildError",
    "ServiceBuildTimeoutError",
    "ServiceConfig",
    "ServiceOverloadedError",
    "rewrap_for_follower",
]


class ServiceOverloadedError(CORGIError):
    """The service is at capacity (admission control rejected the request).

    Transports map this to HTTP 503; in-process callers should back off and
    retry.  Carrying a dedicated type (rather than a generic ``RuntimeError``)
    lets callers distinguish overload from request errors.
    """


class ServiceBuildTimeoutError(CORGIError):
    """A coalesced follower's wait for the build leader exceeded its deadline.

    Followers used to block on the leader's rendezvous event with no
    timeout; a leader thread dying without reaching its ``finally`` block
    (interpreter teardown, ``SystemExit`` in a transport thread) would hang
    them forever.  This error is transient from the caller's perspective —
    retrying starts a fresh build — so transports map it to HTTP 503, never
    500.
    """


class CoalescedBuildError(CORGIError):
    """Fallback wrapper for a leader error that cannot be copied per follower.

    Used by :func:`rewrap_for_follower` when the original exception type
    cannot be reconstructed from its ``args`` (custom constructor
    signature); the original is always attached as ``__cause__``.
    """


def rewrap_for_follower(error: BaseException) -> BaseException:
    """A per-follower copy of the leader's exception, original as ``__cause__``.

    Re-raising the leader's *same* exception instance in every coalesced
    follower makes N threads concurrently mutate one shared
    ``__traceback__``, interleaving frames from unrelated requests in the
    logs.  Each follower instead raises its own instance: same type and
    ``args`` when the type is reconstructible (so transport error mapping
    is unchanged), else a :class:`CoalescedBuildError` carrying the
    message.  Either way the untouched original hangs off ``__cause__``.
    """
    try:
        copy = type(error)(*error.args)
    except BaseException:  # noqa: BLE001 - constructor shape is arbitrary
        copy = CoalescedBuildError(f"{type(error).__name__}: {error}")
    copy.__cause__ = error
    return copy


@dataclass
class ServiceConfig:
    """Serving-tier knobs (the engine has its own :class:`ServerConfig`).

    Attributes
    ----------
    max_in_flight:
        Maximum number of engine builds running concurrently.  Coalesced
        followers do not consume a slot — only build leaders do.
    max_queue_depth:
        Maximum number of *additional* distinct builds allowed to wait for
        a slot; a new distinct request beyond ``max_in_flight +
        max_queue_depth`` is rejected with :class:`ServiceOverloadedError`.
    max_batch_size:
        Upper bound on the number of *distinct* builds one
        :meth:`CORGIService.handle_batch` call may trigger (duplicates
        inside the batch are deduplicated first and don't count).
    latency_window:
        Number of latency observations retained for percentile reporting.
    build_wait_timeout_s:
        Deadline (seconds) a coalesced follower waits for its build leader
        before failing with :class:`ServiceBuildTimeoutError` (HTTP 503).
        Size it to the slowest legitimate cold build, not to network
        latency — it only exists so a leader that died without reaching its
        ``finally`` (interpreter teardown, ``SystemExit``) cannot strand
        followers forever.
    """

    max_in_flight: int = 4
    max_queue_depth: int = 32
    max_batch_size: int = 16
    latency_window: int = 4096
    build_wait_timeout_s: float = 300.0

    def validate(self) -> None:
        """Raise :class:`ValueError` for inconsistent settings."""
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        if self.build_wait_timeout_s <= 0:
            raise ValueError("build_wait_timeout_s must be positive")


class _InFlightBuild:
    """Rendezvous for one in-progress forest build (single-flight entry)."""

    __slots__ = ("event", "forest", "error", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.forest: Optional[PrivacyForest] = None
        self.error: Optional[BaseException] = None
        self.followers = 0


#: Normalized request identity: ``(privacy_level, delta, effective_epsilon)``.
RequestKey = Tuple[int, int, float]


class CORGIService:
    """Batched, single-flight request front for one forest engine.

    Parameters
    ----------
    engine:
        The engine to serve: a :class:`~repro.server.engine.ForestEngine`,
        a sharded :class:`~repro.service.pool.EnginePool`, or anything else
        exposing the same ``build_forest_traced`` / ``tree`` / ``config``
        surface.  A :class:`~repro.server.server.CORGIServer` is also
        accepted (its engine is unwrapped), so existing setup code migrates
        with one line.
    config:
        Serving-tier limits; defaults are sized for a small deployment.
    """

    def __init__(
        self,
        engine: ForestEngine,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        inner = getattr(engine, "engine", None)
        self.engine: ForestEngine = inner if isinstance(inner, ForestEngine) else engine
        if not (
            callable(getattr(self.engine, "build_forest_traced", None))
            and hasattr(self.engine, "tree")
            and hasattr(self.engine, "config")
        ):
            raise TypeError(
                "engine must be a ForestEngine, EnginePool or CORGIServer "
                f"(or duck-compatible), got {type(engine).__name__}"
            )
        self.config = config or ServiceConfig()
        self.config.validate()
        self.metrics = ServiceMetrics(self.config.latency_window)
        self._lock = threading.Lock()
        self._inflight: Dict[RequestKey, _InFlightBuild] = {}
        self._pending_leaders = 0
        self._build_slots = threading.BoundedSemaphore(self.config.max_in_flight)
        # Cache-update listeners (the push gateway subscribes here): called
        # after invalidate / publish_priors so held connections learn about
        # refreshes without polling.  Guarded like the pool stats listener —
        # a raising listener must never fail the admin operation itself.
        self._update_listeners: List = []
        # Attached gateway diagnostics providers (callables returning a
        # JSON-friendly dict), merged into diagnostics()/snapshot().
        self._gateway_diagnostics: List = []
        # A sharded pool reports hand-off lifecycle events (drains,
        # hand-offs, warm failovers) through a listener; mirroring them into
        # ServiceMetrics keeps the wire snapshot lock-consistent with every
        # other counter.
        register = getattr(self.engine, "set_stats_listener", None)
        if callable(register):
            register(self._record_pool_event)

    #: Pool stat names mirrored 1:1 into service counters.
    _POOL_MIRRORED_EVENTS = frozenset({"drains", "handoffs", "warm_failovers"})

    def _record_pool_event(self, name: str, amount: int) -> None:
        if name in self._POOL_MIRRORED_EVENTS:
            self.metrics.increment(name, amount)

    # ------------------------------------------------------------------ #
    # Cache-update listeners (push-gateway hook)
    # ------------------------------------------------------------------ #

    def add_update_listener(self, listener) -> None:
        """Register ``listener(kind, privacy_level)`` for cache updates.

        Called after every successful :meth:`invalidate` (``kind =
        "invalidate"``, ``privacy_level`` as requested — ``None`` for a full
        flush) and :meth:`publish_priors` (``kind = "priors"``,
        ``privacy_level = None``).  The gateway uses this to push refreshed
        matrices to held connections.  Listeners run on the admin caller's
        thread and must not block.
        """
        if not callable(listener):
            raise TypeError("update listener must be callable")
        self._update_listeners.append(listener)

    def remove_update_listener(self, listener) -> None:
        """Unregister a listener previously added (missing ones are ignored)."""
        try:
            self._update_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_update(self, kind: str, privacy_level: Optional[int]) -> None:
        for listener in list(self._update_listeners):
            try:
                listener(kind, privacy_level)
            except Exception:  # noqa: BLE001 - a listener must not fail admin ops
                logger.exception("cache-update listener failed (kind=%s)", kind)

    def attach_gateway_diagnostics(self, provider) -> None:
        """Register a gateway stats provider merged into :meth:`diagnostics`."""
        if not callable(provider):
            raise TypeError("gateway diagnostics provider must be callable")
        self._gateway_diagnostics.append(provider)

    def detach_gateway_diagnostics(self, provider) -> None:
        """Unregister a gateway stats provider (missing ones are ignored)."""
        try:
            self._gateway_diagnostics.remove(provider)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Validation / normalization
    # ------------------------------------------------------------------ #

    def normalize(self, request: ObfuscationRequest) -> RequestKey:
        """Validate a request against the served tree and resolve its identity.

        The effective ε (request override or engine default) is folded into
        the key so that requests that *mean* the same build coalesce even
        when one spells the default out and the other omits it.

        Raises
        ------
        ValueError
            For a privacy level outside the tree, or out-of-range δ/ε (the
            message dataclass has already vetted its own fields).
        """
        privacy_level = int(request.privacy_level)
        if not 0 <= privacy_level <= self.engine.tree.height:
            raise ValueError(
                f"privacy_level must be in [0, {self.engine.tree.height}], got {privacy_level}"
            )
        epsilon = request.epsilon if request.epsilon is not None else self.engine.config.epsilon
        return (privacy_level, int(request.delta), float(epsilon))

    # ------------------------------------------------------------------ #
    # Single-flight forest acquisition
    # ------------------------------------------------------------------ #

    def generate_privacy_forest(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> PrivacyForest:
        """Forest-provider duck type: coalesced access for in-process clients.

        ``use_cache`` is accepted for signature compatibility with
        :class:`~repro.server.server.CORGIServer` but a coalesced service
        always uses the engine caches — bypassing them per-request would let
        one caller force redundant work onto everyone coalesced with it.
        """
        del use_cache
        request = ObfuscationRequest(
            privacy_level=int(privacy_level),
            delta=int(delta),
            epsilon=None if epsilon is None else float(epsilon),
        )
        return self._forest_for(self.normalize(request))

    generate_forest = generate_privacy_forest

    def _forest_for(self, key: RequestKey) -> PrivacyForest:
        """Serve one normalized request through the single-flight gate."""
        privacy_level, delta, epsilon = key
        start = time.perf_counter()
        self.metrics.increment("requests")
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                if self._pending_leaders >= self.config.max_in_flight + self.config.max_queue_depth:
                    self.metrics.increment("rejected")
                    raise ServiceOverloadedError(
                        f"service at capacity: {self.config.max_in_flight} builds in flight "
                        f"and {self.config.max_queue_depth} queued"
                    )
                entry = _InFlightBuild()
                self._inflight[key] = entry
                self._pending_leaders += 1
                leader = True
            else:
                entry.followers += 1
                leader = False

        if not leader:
            self.metrics.increment("coalesced")
            finished = entry.event.wait(timeout=self.config.build_wait_timeout_s)
            self.metrics.observe_latency(time.perf_counter() - start)
            if not finished:
                # The leader never reached its finally block (thread killed
                # mid-build, interpreter teardown) or is pathologically slow;
                # either way the follower must not hang forever.
                self.metrics.increment("build_timeouts")
                raise ServiceBuildTimeoutError(
                    f"coalesced follower waited {self.config.build_wait_timeout_s:.1f}s "
                    f"for the build leader of level={privacy_level} delta={delta} "
                    f"epsilon={epsilon:g}; retry to start a fresh build"
                )
            if entry.error is not None:
                # Each follower raises its own copy — re-raising the shared
                # instance would let N threads mutate one __traceback__.
                raise rewrap_for_follower(entry.error) from entry.error
            assert entry.forest is not None
            return entry.forest

        try:
            with self._build_slots:
                forest, cached = self.engine.build_forest_traced(
                    privacy_level, delta, epsilon=epsilon
                )
            entry.forest = forest
            self.metrics.increment("engine_cache_hits" if cached else "engine_builds")
        except BaseException as error:
            entry.error = error
            self.metrics.increment("failed")
            raise
        finally:
            with self._lock:
                self._pending_leaders -= 1
                self._inflight.pop(key, None)
            entry.event.set()
            self.metrics.observe_latency(time.perf_counter() - start)
        if entry.followers:
            logger.debug(
                "single-flight: level=%d delta=%d epsilon=%.3f served %d coalesced followers",
                privacy_level,
                delta,
                epsilon,
                entry.followers,
            )
        return forest

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    def handle(self, request: ObfuscationRequest) -> PrivacyForestResponse:
        """Serve one request end to end and package the forest as a response."""
        key = self.normalize(request)
        forest = self._forest_for(key)
        return self._package(forest)

    def handle_dict(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """Wire-level entry point: dict in, dict out (used by the HTTP transport)."""
        request = ObfuscationRequest.from_dict(payload)
        return self.handle(request).to_dict()

    def handle_batch(
        self, requests: Sequence[ObfuscationRequest]
    ) -> List[PrivacyForestResponse]:
        """Serve a batch of requests, deduplicating identical ones.

        Identical requests inside the batch share one build (intra-batch
        coalescing, counted as ``batch_coalesced``); distinct builds still
        pass through the single-flight gate, so two concurrent batches
        asking for the same forest also share work.  A batch demanding more
        than ``max_batch_size`` *distinct* builds is rejected outright.

        Distinct builds fan out across at most ``max_in_flight`` threads —
        running them sequentially would leave the build slots the service
        was configured with idle — and since this batch can occupy at most
        that many leader slots at once, it can never trip its own
        admission control.
        """
        self.metrics.increment("batches")
        self.metrics.increment("batch_requests", len(requests))
        keys = [self.normalize(request) for request in requests]
        distinct = list(dict.fromkeys(keys))
        if len(distinct) > self.config.max_batch_size:
            self.metrics.increment("rejected")
            raise ServiceOverloadedError(
                f"batch demands {len(distinct)} distinct builds; "
                f"max_batch_size is {self.config.max_batch_size}"
            )
        self.metrics.increment("batch_coalesced", len(keys) - len(distinct))
        if len(distinct) <= 1:
            forests = {key: self._forest_for(key) for key in distinct}
        else:
            workers = min(len(distinct), self.config.max_in_flight)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                forests = dict(zip(distinct, pool.map(self._forest_for, distinct)))
        return [self._package(forests[key]) for key in keys]

    def handle_batch_dicts(
        self, payloads: Sequence[Mapping[str, object]]
    ) -> List[Dict[str, object]]:
        """Wire-level batch entry point: list of dicts in, list of dicts out."""
        requests = [ObfuscationRequest.from_dict(payload) for payload in payloads]
        return [response.to_dict() for response in self.handle_batch(requests)]

    @staticmethod
    def _package(forest: PrivacyForest) -> PrivacyForestResponse:
        return PrivacyForestResponse(
            privacy_level=forest.privacy_level,
            delta=forest.delta,
            epsilon=forest.epsilon,
            matrices={root_id: matrix for root_id, matrix in forest},
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def publish_leaf_priors(self, subtree_root_id: str) -> Dict[str, float]:
        """Leaf priors of one sub-tree (exposed on the wire as ``/priors/<id>``)."""
        return self.engine.publish_leaf_priors(subtree_root_id)

    # ------------------------------------------------------------------ #
    # Cache lifecycle (admin surface)
    # ------------------------------------------------------------------ #

    def invalidate(self, privacy_level: Optional[int] = None) -> int:
        """Drop cached forests on the engine (all levels, or one).

        On an :class:`~repro.service.pool.EnginePool` this broadcasts to
        every shard.  Returns the number of forests dropped; exposed on the
        wire as ``POST /admin/invalidate``.  A pool configured as a
        replication *follower* refuses with
        :class:`~repro.service.replication.ReplicationRoleError` (HTTP 400)
        — control writes go to the primary and replicate back.
        """
        dropped = int(self.engine.invalidate(privacy_level))
        self.metrics.increment("invalidated", dropped)
        self._notify_update("invalidate", None if privacy_level is None else int(privacy_level))
        return dropped

    def publish_priors(
        self, priors: Mapping[str, float], *, normalize: bool = True
    ) -> int:
        """Install new leaf priors and flush affected caches (live update).

        Exposed on the wire as ``POST /admin/priors``; on a pool the update
        reaches every shard — and, when the pool is a replication primary,
        every follower head tailing its control log.  Returns the number of
        forests flushed.  A follower pool refuses the local write with
        :class:`~repro.service.replication.ReplicationRoleError` (HTTP 400).
        """
        dropped = int(self.engine.publish_priors(priors, normalize=normalize))
        self.metrics.increment("invalidated", dropped)
        self._notify_update("priors", None)
        return dropped

    def drain(self, slot: int) -> Dict[str, object]:
        """Gracefully drain one shard slot with warm hand-off to its siblings.

        Only meaningful when the engine is a sharded
        :class:`~repro.service.pool.EnginePool`; a plain engine has no slots
        and raises :class:`ValueError` (HTTP 400 on the wire, like every
        other bad drain request — see ``POST /admin/drain``).  The pool's
        hand-off counters reach :attr:`metrics` through the stats listener
        registered at construction, so the returned report and the next
        :meth:`snapshot` agree.
        """
        drain = getattr(self.engine, "drain", None)
        if not callable(drain):
            raise ValueError(
                "engine has no shard slots to drain (serving a single-process "
                "engine, not an EnginePool)"
            )
        return drain(slot)

    def diagnostics(self) -> Dict[str, object]:
        """Engine cache/pool diagnostics (hand-off counters included on a pool).

        When a push gateway is attached its connection/subscription gauges
        are merged under ``"gateway"`` so ``GET /admin/diagnostics`` is the
        one stop for the whole serving stack.
        """
        diagnostics = dict(self.engine.cache_diagnostics())
        if self._gateway_diagnostics:
            gateways = []
            for provider in self._gateway_diagnostics:
                try:
                    gateways.append(provider())
                except Exception:  # noqa: BLE001 - diagnostics must stay a probe
                    logger.exception("gateway diagnostics provider failed")
            diagnostics["gateway"] = gateways[0] if len(gateways) == 1 else gateways
        return diagnostics

    def durability(self) -> Dict[str, object]:
        """Durable-tier diagnostics: control-log replay, store hits, ratios.

        Exposed on the wire as ``GET /admin/durability``.  A plain engine
        (or a pool without ``state_dir``) reports ``durable: False`` rather
        than erroring — the endpoint is a probe, not a capability check.
        On a replicated pool the payload carries a ``replication`` block:
        role, per-follower acked cursors and lag on a primary; source,
        durable cursor, applied/skipped counters and lag on a follower.
        """
        probe = getattr(self.engine, "durability_diagnostics", None)
        if callable(probe):
            return probe()
        return {"durable": False, "state_dir": None, "errors": []}

    def snapshot(self) -> Dict[str, object]:
        """Service metrics plus engine cache diagnostics, JSON-friendly.

        The in-flight gauges are read under the service lock so the snapshot
        is one consistent view of the single-flight table.
        """
        with self._lock:
            gauges = {
                "pending_leaders": self._pending_leaders,
                "inflight_keys": len(self._inflight),
            }
        return {
            "service": self.metrics.snapshot(),
            "gauges": gauges,
            "engine": self.engine.cache_diagnostics(),
            "limits": {
                "max_in_flight": self.config.max_in_flight,
                "max_queue_depth": self.config.max_queue_depth,
                "max_batch_size": self.config.max_batch_size,
            },
        }
