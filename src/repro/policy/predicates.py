"""Boolean predicates over location attributes.

User preferences are encoded as predicates ``<var, op, val>`` (Section 3.2)
where ``var`` names a location attribute (``popular``, ``home``, ``office``,
``outlier``, ``distance_km``, ``checkin_count``, ...), ``op`` is one of
``{=, !=, <, >, >=, <=}`` and ``val`` comes from the attribute's domain.

A location *satisfies* a predicate when the comparison holds; a location
that fails any of the user's predicates is pruned from the obfuscation
range.  Missing attributes are treated as not satisfying the predicate
unless the predicate explicitly tests for absence (``var = None``), which
keeps the semantics conservative: the user never keeps a location they know
nothing about if they asked for a property.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence, Union

Number = Union[int, float]


class Operator(str, enum.Enum):
    """Comparison operators allowed in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    GE = ">="
    LE = "<="

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        """Parse an operator symbol, accepting the common aliases (``==``, ``≠``, ...)."""
        normalized = symbol.strip()
        aliases = {
            "==": cls.EQ,
            "=": cls.EQ,
            "!=": cls.NE,
            "≠": cls.NE,
            "<>": cls.NE,
            "<": cls.LT,
            ">": cls.GT,
            ">=": cls.GE,
            "≥": cls.GE,
            "<=": cls.LE,
            "≤": cls.LE,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown operator {symbol!r}")
        return aliases[normalized]


_ORDERED_OPERATORS = {Operator.LT, Operator.GT, Operator.GE, Operator.LE}


@dataclass(frozen=True)
class Predicate:
    """One Boolean predicate ``<var, op, val>``.

    Examples
    --------
    >>> Predicate("popular", Operator.EQ, True).evaluate({"popular": True})
    True
    >>> Predicate("distance_km", Operator.LE, 5.0).evaluate({"distance_km": 7.2})
    False
    """

    var: str
    op: Operator
    value: Any

    def __post_init__(self) -> None:
        if not self.var or not isinstance(self.var, str):
            raise ValueError(f"predicate variable must be a non-empty string, got {self.var!r}")
        if not isinstance(self.op, Operator):
            object.__setattr__(self, "op", Operator.from_symbol(str(self.op)))

    def evaluate(self, attributes: Mapping[str, Any]) -> bool:
        """Whether a location with the given attributes satisfies this predicate."""
        present = self.var in attributes
        actual = attributes.get(self.var)
        if self.op in _ORDERED_OPERATORS:
            if not present or actual is None:
                return False
            try:
                actual_number = float(actual)
                expected_number = float(self.value)
            except (TypeError, ValueError):
                return False
            if self.op is Operator.LT:
                return actual_number < expected_number
            if self.op is Operator.GT:
                return actual_number > expected_number
            if self.op is Operator.GE:
                return actual_number >= expected_number
            return actual_number <= expected_number
        expected = self.value
        if not present:
            # "var = None" matches locations that genuinely lack the attribute.
            if self.op is Operator.EQ:
                return expected is None
            return expected is not None
        if self.op is Operator.EQ:
            return _values_equal(actual, expected)
        return not _values_equal(actual, expected)

    def describe(self) -> str:
        """Human-readable rendering (``popular = True``)."""
        return f"{self.var} {self.op.value} {self.value!r}"

    def __str__(self) -> str:
        return self.describe()


def _values_equal(actual: Any, expected: Any) -> bool:
    """Equality with friendly handling of booleans expressed as strings and numbers."""
    if isinstance(actual, bool) or isinstance(expected, bool):
        return _as_bool(actual) == _as_bool(expected)
    if isinstance(actual, (int, float)) and isinstance(expected, (int, float)):
        return float(actual) == float(expected)
    if isinstance(actual, str) and isinstance(expected, str):
        return actual.strip().lower() == expected.strip().lower()
    return actual == expected


def _as_bool(value: Any) -> Optional[bool]:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "yes", "1"):
            return True
        if lowered in ("false", "no", "0"):
            return False
    return None


def parse_predicate(text: str) -> Predicate:
    """Parse a predicate from text such as ``"popular = True"`` or ``"distance_km <= 5"``.

    The value is interpreted as a bool (``True``/``False``), a number when it
    parses as one, or a bare string otherwise.
    """
    for symbol in ("<=", ">=", "!=", "<>", "==", "≤", "≥", "≠", "=", "<", ">"):
        if symbol in text:
            var, _, raw_value = text.partition(symbol)
            var = var.strip()
            raw_value = raw_value.strip().strip("'\"")
            return Predicate(var, Operator.from_symbol(symbol), _parse_value(raw_value))
    raise ValueError(f"could not find a comparison operator in {text!r}")


def _parse_value(raw: str) -> Any:
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        if "." in raw or "e" in lowered:
            return float(raw)
        return int(raw)
    except ValueError:
        return raw


def satisfies_all(attributes: Mapping[str, Any], predicates: Sequence[Predicate]) -> bool:
    """Whether the attributes satisfy every predicate (empty list is trivially true)."""
    return all(predicate.evaluate(attributes) for predicate in predicates)
