"""Tests for the engine/service/transport split.

Covers the wire-format round-trips (satellite), single-flight coalescing
and admission control in :class:`CORGIService`, intra-batch deduplication,
constraint-structure sharing across congruent sibling sub-trees, and the
end-to-end client-over-HTTP path against a live ``ThreadingHTTPServer`` on
an ephemeral port — including the acceptance check that HTTP and
in-process transports return byte-identical forests.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.client.client import CORGIClient
from repro.client.transport import (
    HTTPTransport,
    InProcessTransport,
    TransportError,
    TransportForestProvider,
    as_forest_provider,
)
from repro.policy.policy import Policy
from repro.server.engine import ForestEngine, ServerConfig
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.service.http import CORGIHTTPServer
from repro.service.metrics import ServiceMetrics
from repro.service.service import CORGIService, ServiceConfig, ServiceOverloadedError


@pytest.fixture()
def engine(small_tree_with_priors):
    return ForestEngine(
        small_tree_with_priors,
        ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=1),
    )


@pytest.fixture()
def service(engine):
    return CORGIService(engine)


# --------------------------------------------------------------------- #
# Satellite: request message coercion
# --------------------------------------------------------------------- #


class TestRequestCoercion:
    def test_epsilon_string_coerced_to_float(self):
        request = ObfuscationRequest.from_dict(
            {"privacy_level": 1, "delta": 2, "epsilon": "1.5"}
        )
        assert isinstance(request.epsilon, float)
        assert request.epsilon == 1.5

    def test_coerced_epsilon_is_validated(self):
        with pytest.raises(ValueError):
            ObfuscationRequest.from_dict(
                {"privacy_level": 1, "delta": 2, "epsilon": "-3"}
            )
        with pytest.raises(ValueError):
            ObfuscationRequest.from_dict({"privacy_level": 1, "delta": 2, "epsilon": 0})

    def test_unparseable_epsilon_fails_loudly(self):
        with pytest.raises(ValueError):
            ObfuscationRequest.from_dict(
                {"privacy_level": 1, "delta": 2, "epsilon": "soon"}
            )

    def test_missing_epsilon_stays_none(self):
        request = ObfuscationRequest.from_dict({"privacy_level": 1, "delta": 2})
        assert request.epsilon is None

    def test_missing_required_field_is_value_error(self):
        with pytest.raises(ValueError, match="privacy_level"):
            ObfuscationRequest.from_dict({"delta": 1})


# --------------------------------------------------------------------- #
# Satellite: wire-format round-trips through real JSON
# --------------------------------------------------------------------- #


class TestWireRoundTrips:
    def test_request_roundtrip_through_json(self):
        request = ObfuscationRequest(privacy_level=2, delta=3, epsilon=1.25)
        restored = ObfuscationRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert restored == request

    def test_response_roundtrip_through_json(self, engine):
        response = CORGIService(engine).handle(
            ObfuscationRequest(privacy_level=1, delta=1)
        )
        restored = PrivacyForestResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert restored.privacy_level == response.privacy_level
        assert restored.delta == response.delta
        assert restored.epsilon == response.epsilon
        assert set(restored.matrices) == set(response.matrices)
        for root_id, matrix in response.matrices.items():
            other = restored.matrices[root_id]
            assert other.node_ids == matrix.node_ids
            assert np.array_equal(other.values, matrix.values)
        # The canonical JSON of both responses is identical (floats
        # round-trip exactly through json.dumps/loads).
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            response.to_dict(), sort_keys=True
        )


# --------------------------------------------------------------------- #
# Service: validation, single-flight, admission control, batching
# --------------------------------------------------------------------- #


class TestServiceValidation:
    def test_accepts_corgi_server(self, small_tree_with_priors):
        from repro.server.server import CORGIServer

        server = CORGIServer(
            small_tree_with_priors,
            ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=1),
        )
        service = CORGIService(server)
        assert service.engine is server.engine

    def test_rejects_non_engine(self):
        with pytest.raises(TypeError):
            CORGIService(object())

    def test_privacy_level_out_of_range(self, service):
        with pytest.raises(ValueError):
            service.handle(ObfuscationRequest(privacy_level=9, delta=0))

    def test_default_epsilon_coalesces_with_explicit(self, service, engine):
        implicit = service.normalize(ObfuscationRequest(privacy_level=1, delta=0))
        explicit = service.normalize(
            ObfuscationRequest(privacy_level=1, delta=0, epsilon=engine.config.epsilon)
        )
        assert implicit == explicit

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_in_flight=0).validate()
        with pytest.raises(ValueError):
            ServiceConfig(max_queue_depth=-1).validate()
        with pytest.raises(ValueError):
            ServiceConfig(max_batch_size=0).validate()


class TestSingleFlight:
    def test_concurrent_identical_requests_build_once(self, service, engine):
        """Acceptance: N concurrent identical requests → exactly one engine build."""
        num_threads = 6
        barrier = threading.Barrier(num_threads)
        original = engine.build_forest_traced

        def slow_build(*args, **kwargs):
            time.sleep(0.25)  # hold the build open so followers pile up
            return original(*args, **kwargs)

        engine.build_forest_traced = slow_build
        forests = [None] * num_threads
        errors = []

        def worker(index):
            try:
                barrier.wait(timeout=10)
                forests[index] = service.generate_privacy_forest(1, 1)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        engine.build_forest_traced = original

        assert not errors
        assert all(forest is not None for forest in forests)
        # Everyone got the same forest object from the one build.
        assert all(forest is forests[0] for forest in forests)
        assert service.metrics.count("engine_builds") == 1
        assert service.metrics.count("coalesced") == num_threads - 1
        assert service.metrics.count("requests") == num_threads

    def test_leader_error_propagates_to_followers(self, service, engine):
        started = threading.Event()

        def failing_build(*args, **kwargs):
            started.set()
            time.sleep(0.1)
            raise RuntimeError("solver exploded")

        engine.build_forest_traced = failing_build
        results = []

        def follower():
            started.wait(timeout=5)
            with pytest.raises(RuntimeError):
                service.generate_privacy_forest(1, 1)
            results.append("follower-raised")

        thread = threading.Thread(target=follower)
        thread.start()
        with pytest.raises(RuntimeError):
            service.generate_privacy_forest(1, 1)
        thread.join(timeout=10)
        assert service.metrics.count("failed") >= 1

    def test_sequential_repeat_is_engine_cache_hit(self, service):
        first = service.generate_privacy_forest(1, 1)
        second = service.generate_privacy_forest(1, 1)
        assert first is second
        assert service.metrics.count("engine_builds") == 1
        assert service.metrics.count("engine_cache_hits") == 1


class TestAdmissionControl:
    def test_overload_rejected(self, engine):
        service = CORGIService(
            engine, ServiceConfig(max_in_flight=1, max_queue_depth=0)
        )
        release = threading.Event()
        entered = threading.Event()

        def slow_build(*args, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return engine_build(*args, **kwargs)

        engine_build = engine.build_forest_traced
        engine.build_forest_traced = slow_build

        def leader():
            service.generate_privacy_forest(1, 0)

        thread = threading.Thread(target=leader)
        thread.start()
        assert entered.wait(timeout=5)
        # A *distinct* build beyond max_in_flight + max_queue_depth is refused.
        with pytest.raises(ServiceOverloadedError):
            service.generate_privacy_forest(1, 1)
        assert service.metrics.count("rejected") == 1
        release.set()
        thread.join(timeout=30)
        # After the backlog drains, the service admits work again.
        assert service.generate_privacy_forest(1, 0) is not None


class TestBatching:
    def test_batch_deduplicates_identical_requests(self, service):
        requests = [
            ObfuscationRequest(privacy_level=1, delta=1),
            ObfuscationRequest(privacy_level=1, delta=1, epsilon=2.0),  # same effective key
            ObfuscationRequest(privacy_level=1, delta=0),
        ]
        responses = service.handle_batch(requests)
        assert len(responses) == 3
        assert responses[0].to_dict() == responses[1].to_dict()
        assert service.metrics.count("batch_coalesced") == 1
        assert service.metrics.count("engine_builds") == 2

    def test_oversized_batch_rejected(self, engine):
        service = CORGIService(engine, ServiceConfig(max_batch_size=1))
        with pytest.raises(ServiceOverloadedError):
            service.handle_batch(
                [
                    ObfuscationRequest(privacy_level=1, delta=0),
                    ObfuscationRequest(privacy_level=1, delta=1),
                ]
            )


class TestServiceMetrics:
    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServiceMetrics().increment("typo")

    def test_percentiles_empty_window(self):
        assert ServiceMetrics().latency_percentiles() == {}

    def test_percentiles_ordering(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):
            metrics.observe_latency(value / 100.0)
        percentiles = metrics.latency_percentiles()
        assert percentiles["p50"] == pytest.approx(0.50)
        assert percentiles["p90"] == pytest.approx(0.90)
        assert percentiles["p99"] == pytest.approx(0.99)

    def test_percentiles_nearest_rank_on_odd_window(self):
        # Nearest-rank p50 of 5 samples is the median (3rd smallest), not
        # the 2nd — guards against banker's-rounding rank selection.
        metrics = ServiceMetrics()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            metrics.observe_latency(value)
        assert metrics.latency_percentiles()["p50"] == pytest.approx(3.0)

    def test_snapshot_shape(self, service):
        service.generate_privacy_forest(1, 0)
        snapshot = service.snapshot()
        assert snapshot["service"]["requests"] == 1
        assert "structure_sharing" in snapshot["engine"]
        assert snapshot["limits"]["max_in_flight"] >= 1


# --------------------------------------------------------------------- #
# Structure sharing across congruent sibling sub-trees (ROADMAP lever)
# --------------------------------------------------------------------- #


class TestStructureSharing:
    @pytest.fixture()
    def shared_engine(self, medium_tree):
        return ForestEngine(
            medium_tree,
            ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=1),
        )

    def test_siblings_share_one_structure(self, shared_engine):
        """Acceptance: congruent sibling sub-trees share a structure (reuses > 0)."""
        forest = shared_engine.build_forest(privacy_level=1, delta=0)
        assert len(forest) == 7
        stats = shared_engine.cache_diagnostics()["structure_sharing"]
        assert stats["builds"] >= 1
        assert stats["reuses"] > 0
        # All 7 sibling sub-trees are congruent: one build serves the rest.
        assert stats["builds"] + stats["reuses"] == 7

    def test_sharing_matches_unshared_results(self, medium_tree):
        shared = ForestEngine(
            medium_tree,
            ServerConfig(
                epsilon=2.0, num_targets=5, robust_iterations=1, share_structures=True
            ),
        )
        unshared = ForestEngine(
            medium_tree,
            ServerConfig(
                epsilon=2.0, num_targets=5, robust_iterations=1, share_structures=False
            ),
        )
        shared_forest = shared.build_forest(privacy_level=1, delta=1)
        unshared_forest = unshared.build_forest(privacy_level=1, delta=1)
        assert unshared.cache_diagnostics()["structure_sharing"]["reuses"] == 0
        for (root_a, matrix_a), (root_b, matrix_b) in zip(shared_forest, unshared_forest):
            assert root_a == root_b
            assert np.array_equal(matrix_a.values, matrix_b.values)


# --------------------------------------------------------------------- #
# End-to-end: client over HTTP against a live ThreadingHTTPServer
# --------------------------------------------------------------------- #


@pytest.fixture()
def http_stack(service):
    server = CORGIHTTPServer(service, port=0).start()
    try:
        yield server, HTTPTransport(server.url)
    finally:
        server.shutdown()


class TestHTTPEndToEnd:
    def test_health_and_metrics(self, http_stack):
        _, transport = http_stack
        assert transport.health() == {"status": "ok"}
        metrics = transport.metrics()
        assert "service" in metrics and "engine" in metrics

    def test_transports_byte_identical(self, http_stack, service):
        """Acceptance: HTTP and in-process transports return byte-identical forests."""
        _, http_transport = http_stack
        request = ObfuscationRequest(privacy_level=1, delta=1)
        over_http = http_transport.fetch_forest(request)
        in_process = InProcessTransport(service).fetch_forest(request)
        assert json.dumps(over_http.to_dict(), sort_keys=True) == json.dumps(
            in_process.to_dict(), sort_keys=True
        )

    def test_client_over_http(self, http_stack, small_tree_with_priors):
        _, transport = http_stack
        client = CORGIClient(small_tree_with_priors, transport)
        center = small_tree_with_priors.root.center
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        outcome = client.obfuscate(center.lat, center.lng, policy, seed=11)
        leaf_ids = {leaf.node_id for leaf in small_tree_with_priors.leaves()}
        assert outcome.reported_node_id in leaf_ids
        assert outcome.metadata["privacy_level"] == 1

    def test_client_over_http_matches_in_process(
        self, http_stack, small_tree_with_priors, service
    ):
        _, transport = http_stack
        center = small_tree_with_priors.root.center
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        remote = CORGIClient(small_tree_with_priors, transport)
        local = CORGIClient(small_tree_with_priors, service)
        outcome_remote = remote.obfuscate(center.lat, center.lng, policy, seed=5)
        outcome_local = local.obfuscate(center.lat, center.lng, policy, seed=5)
        assert outcome_remote.reported_node_id == outcome_local.reported_node_id
        assert np.array_equal(
            outcome_remote.customized_matrix.values,
            outcome_local.customized_matrix.values,
        )

    def test_batch_endpoint(self, http_stack):
        _, transport = http_stack
        requests = [
            ObfuscationRequest(privacy_level=1, delta=1),
            ObfuscationRequest(privacy_level=1, delta=1),
        ]
        responses = transport.fetch_forests(requests)
        assert len(responses) == 2
        assert responses[0].to_dict() == responses[1].to_dict()

    def test_invalid_request_maps_to_400(self, http_stack):
        _, transport = http_stack
        with pytest.raises(TransportError) as excinfo:
            transport.fetch_forest(ObfuscationRequest(privacy_level=9, delta=0))
        assert excinfo.value.status == 400

    def test_unknown_route_maps_to_404(self, http_stack):
        _, transport = http_stack
        with pytest.raises(TransportError) as excinfo:
            transport._post("/nope", {})
        assert excinfo.value.status == 404

    def test_missing_body_field_maps_to_400(self, http_stack):
        _, transport = http_stack
        with pytest.raises(TransportError) as excinfo:
            transport._post("/forest", {"delta": 1})
        assert excinfo.value.status == 400

    def test_priors_endpoint(self, http_stack, small_tree_with_priors):
        _, transport = http_stack
        priors = transport._get(f"/priors/{small_tree_with_priors.root.node_id}")
        assert len(priors) == 7
        assert sum(priors.values()) == pytest.approx(1.0)

    def test_unreachable_server(self):
        transport = HTTPTransport("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(TransportError):
            transport.health()


class TestProviderNormalization:
    def test_provider_passthrough(self, engine, service):
        assert as_forest_provider(engine) is engine
        assert as_forest_provider(service) is service

    def test_transport_wrapped(self, service):
        provider = as_forest_provider(InProcessTransport(service))
        assert isinstance(provider, TransportForestProvider)
        forest = provider.generate_privacy_forest(1, 0)
        assert len(forest) >= 1
        assert forest.matrix_for_subtree(forest.subtree_roots()[0]) is not None
        with pytest.raises(KeyError):
            forest.matrix_for_subtree("h9:99:99")

    def test_unusable_target_rejected(self):
        with pytest.raises(TypeError):
            as_forest_provider(42)
