"""Failover scenario tests: warm shard hand-off and graceful drain.

Covers the ISSUE acceptance surface for the hand-off protocol:

* **graceful drain** — under a live mixed-key burst, draining a shard
  loses no requests, and afterwards the shard's ring sibling serves the
  drained shard's hot keys from its forest cache (snapshot import), not
  via cold rebuilds;
* **SIGKILL warm failover** — killing a worker mid-burst loses no
  requests, and the pool replays the dead slot's hot-key ledger to the
  sibling so its keys are pre-warmed there;
* **determinism** — a drained-then-respawned pool keeps returning
  responses byte-identical to a single-process engine;
* **hygiene** — expired-TTL entries are excluded from snapshots at export
  time, imports preserve remaining TTL, and foreign-topology payloads are
  rebuilt instead of mis-served;
* **admin surface** — ``POST /admin/drain`` answers structured 4xx (never
  500) for bad slot ids, and ``HTTPTransport.drain`` propagates typed
  errors like the existing ``invalidate`` helper.

All synchronization goes through the conftest helpers (``run_burst``,
``wait_until``) — no ad-hoc sleeps.
"""

import copy
import json
import threading
import urllib.error
import urllib.request

import pytest

from helpers_concurrency import run_burst, wait_until
from repro.client.transport import HTTPTransport, TransportError
from repro.server.engine import ForestEngine, ServerConfig
from repro.server.messages import ObfuscationRequest
from repro.service.handoff import CacheSnapshot, SnapshotEntry, encode_snapshot
from repro.service.http import CORGIHTTPServer
from repro.service.metrics import ServiceMetrics
from repro.service.pool import EnginePool, EnginePoolError, PoolTimeoutError
from repro.service.service import CORGIService

#: Fast engine settings shared by every pool in this module.
POOL_CONFIG = dict(epsilon=2.0, num_targets=5, robust_iterations=1)

#: The mixed-key workload: six distinct (level, delta) keys so both shards
#: of a 2-shard pool own some of them.
MIXED_KEYS = [(level, delta) for level in (0, 1) for delta in (0, 1, 2)]


@pytest.fixture()
def pool_tree(small_tree_with_priors):
    """A private copy of the priors-annotated tree (pools may mutate priors)."""
    return copy.deepcopy(small_tree_with_priors)


def victim_and_keys(pool):
    """A shard slot that homes at least one mixed key, plus its keys."""
    victim = pool.shard_for(*MIXED_KEYS[0])
    keys = [key for key in MIXED_KEYS if pool.shard_for(*key) == victim]
    assert keys, "ring routing must home at least one mixed key on the victim"
    return victim, keys


# --------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------- #


class TestGracefulDrain:
    def test_drain_hands_off_cache_to_sibling(self, pool_tree):
        """Acceptance: after a drain, the sibling serves the drained shard's
        hot keys from its forest cache — imports, not cold rebuilds."""
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            victim, victim_keys = victim_and_keys(pool)
            for level, delta in MIXED_KEYS:
                pool.build_forest(level, delta)

            report = pool.drain(victim)

            assert report["slot"] == victim
            assert report["exported"] == len(victim_keys)
            assert report["handoff_keys"] == len(victim_keys)
            assert report["payloads"] == len(victim_keys)  # all fit the budget
            assert report["imported"] == len(victim_keys)
            assert report["prewarmed"] == 0
            assert pool.shard_states()[victim]["state"] == "drained"

            # Every drained hot key is now a forest-cache hit on the sibling.
            for level, delta in victim_keys:
                _, cached = pool.build_forest_traced(level, delta)
                assert cached, f"key {(level, delta)} cold-built after drain"

            stats = pool.pool_stats()
            assert stats["drains"] == 1
            assert stats["handoffs"] == len(victim_keys)
            assert stats["crash_failures"] == 0
            diagnostics = pool.cache_diagnostics()
            assert diagnostics["handoff_imports"] == len(victim_keys)

    def test_drain_mid_burst_loses_no_requests(self, pool_tree):
        """Acceptance: draining a shard under a live mixed-key burst — every
        request completes exactly once; nothing is lost to the drain."""
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=2,
            chaos_build_delay_s=0.2,
        )
        try:
            pool.wait_ready()
            victim, victim_keys = victim_and_keys(pool)
            drain_report = {}

            def drainer():
                wait_until(
                    lambda: pool.shard_states()[victim]["in_flight"] > 0,
                    timeout_s=30,
                    message=f"shard {victim} to have work in flight",
                )
                drain_report.update(pool.drain(victim))

            drain_thread = threading.Thread(target=drainer, daemon=True)
            drain_thread.start()
            outcome = run_burst(
                [
                    lambda level=level, delta=delta: pool.build_forest(level, delta)
                    for level, delta in MIXED_KEYS
                ],
                timeout_s=120,
            )
            drain_thread.join(timeout=60)
            assert not drain_thread.is_alive(), "drain did not complete"
            outcome.raise_errors()
            assert len(outcome.results) == len(MIXED_KEYS)
            assert all(forest is not None for forest in outcome.results)

            assert pool.shard_states()[victim]["state"] == "drained"
            assert pool.pool_stats()["crash_failures"] == 0
            # The victim's keys keep being served — warm where the hand-off
            # delivered them, and from cache either way on the next request.
            for level, delta in victim_keys:
                _, cached = pool.build_forest_traced(level, delta)
                assert cached
        finally:
            pool.close()

    def test_drained_then_respawned_pool_byte_identical(
        self, pool_tree, small_tree_with_priors
    ):
        """Acceptance: drain + respawn is invisible in the response bytes."""
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            victim, _ = victim_and_keys(pool)
            for level, delta in MIXED_KEYS:
                pool.build_forest(level, delta)
            pool.drain(victim)
            pool.respawn(victim)
            pool.wait_ready()
            assert pool.shard_states()[victim]["state"] == "ready"

            engine = ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
            for level, delta in MIXED_KEYS:
                request = ObfuscationRequest(privacy_level=level, delta=delta)
                pooled = CORGIService(pool).handle(request)
                single = CORGIService(engine).handle(request)
                assert json.dumps(pooled.to_dict(), sort_keys=True) == json.dumps(
                    single.to_dict(), sort_keys=True
                )

    def test_drain_without_live_sibling_retires_cold(self, pool_tree):
        """A single-shard drain has nowhere to hand off: entries are dropped,
        the slot retires cleanly, and respawn revives the pool."""
        pool = EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=1)
        try:
            pool.wait_ready()
            pool.build_forest(1, 1)
            report = pool.drain(0)
            assert report["exported"] == 1
            assert report["handoff_keys"] == 0
            assert report["dropped"] == 1
            with pytest.raises(EnginePoolError):
                pool.build_forest(1, 0)
            pool.respawn(0)
            pool.wait_ready()
            assert pool.build_forest(1, 0) is not None
        finally:
            pool.close()

    def test_drain_rejects_bad_slots(self, pool_tree):
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            for bad in ("wat", -1, 99, None, True, 1.5, [1], {}):
                with pytest.raises((ValueError, TypeError)):
                    pool.drain(bad)

    def test_double_drain_rejected(self, pool_tree):
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            victim, _ = victim_and_keys(pool)
            pool.drain(victim)
            with pytest.raises(ValueError, match="only a ready shard"):
                pool.drain(victim)

    def test_failed_drain_rolls_back_to_ready(self, pool_tree):
        """Regression: a drain that times out while work is in flight must
        return the slot to READY (not strand it in DRAINING forever) — and
        a later drain must still succeed."""
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=2,
            chaos_build_delay_s=0.5,
        )
        try:
            pool.wait_ready()
            victim, victim_keys = victim_and_keys(pool)
            level, delta = victim_keys[0]
            builder = threading.Thread(
                target=lambda: pool.build_forest(level, delta), daemon=True
            )
            builder.start()
            wait_until(
                lambda: pool.shard_states()[victim]["in_flight"] > 0,
                timeout_s=30,
                message=f"shard {victim} to have work in flight",
            )
            with pytest.raises(PoolTimeoutError):
                pool.drain(victim, timeout_s=0.05)
            assert pool.shard_states()[victim]["state"] == "ready"
            builder.join(timeout=60)
            # The slot kept serving, and a patient drain now completes.
            assert pool.build_forest(level, delta) is not None
            report = pool.drain(victim)
            assert report["slot"] == victim
            assert pool.shard_states()[victim]["state"] == "drained"
        finally:
            pool.close()

    def test_respawn_requires_drained_slot(self, pool_tree):
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            with pytest.raises(ValueError, match="only a drained slot"):
                pool.respawn(0)

    def test_rebalance_respawns_and_rehomes(self, pool_tree):
        """After drain + rebalance, the revived home shard holds its keys
        again (imported, so the next request is a cache hit served at home)."""
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            victim, victim_keys = victim_and_keys(pool)
            for level, delta in MIXED_KEYS:
                pool.build_forest(level, delta)
            pool.drain(victim)

            summary = pool.rebalance()

            assert summary["respawned"] == 1
            assert summary["moved_keys"] >= len(victim_keys)
            assert pool.shard_states()[victim]["state"] == "ready"
            dispatched_before = pool.shard_states()[victim]["dispatched"]
            for level, delta in victim_keys:
                _, cached = pool.build_forest_traced(level, delta)
                assert cached
            # ...and those hits were served by the revived home shard.
            assert (
                pool.shard_states()[victim]["dispatched"]
                >= dispatched_before + len(victim_keys)
            )


# --------------------------------------------------------------------- #
# SIGKILL warm failover
# --------------------------------------------------------------------- #


class TestSigkillWarmFailover:
    def test_sigkill_prewarms_sibling(self, pool_tree):
        """Acceptance: after a SIGKILL, the collector replays the dead
        slot's hot-key ledger — its keys become forest-cache hits on the
        sibling without any client request paying for the rebuild."""
        pool = EnginePool(
            pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2, respawn_limit=0
        )
        try:
            pool.wait_ready()
            victim, victim_keys = victim_and_keys(pool)
            for level, delta in MIXED_KEYS:
                pool.build_forest(level, delta)
            assert len(pool.hot_keys(victim)) == len(victim_keys)

            pool._shards[victim].process.kill()
            wait_until(
                lambda: pool.pool_stats()["warm_failovers"] >= 1,
                timeout_s=60,
                message="the hot-key ledger to be replayed to the sibling",
            )
            assert pool.shard_states()[victim]["state"] == "dead"

            for level, delta in victim_keys:
                _, cached = pool.build_forest_traced(level, delta)
                assert cached, f"key {(level, delta)} cold-built after SIGKILL"
            stats = pool.pool_stats()
            assert stats["handoffs"] >= len(victim_keys)
            assert stats["handoff_prewarms"] >= len(victim_keys)
        finally:
            pool.close()

    def test_sigkill_mid_burst_loses_no_requests_then_serves_warm(self, pool_tree):
        """Acceptance: SIGKILL under a live mixed-key burst — zero lost
        requests (retry on the ring sibling), and once recovery settles the
        dead shard's hot keys are cache hits on the sibling."""
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=2,
            respawn_limit=0,
            chaos_build_delay_s=0.25,
        )
        try:
            pool.wait_ready()
            victim, victim_keys = victim_and_keys(pool)

            def assassin():
                wait_until(
                    lambda: pool.shard_states()[victim]["in_flight"] > 0,
                    timeout_s=30,
                    message=f"shard {victim} to have work in flight",
                )
                pool._shards[victim].process.kill()

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            outcome = run_burst(
                [
                    lambda level=level, delta=delta: pool.build_forest(level, delta)
                    for level, delta in MIXED_KEYS
                ],
                timeout_s=120,
            )
            killer.join(timeout=30)
            outcome.raise_errors()
            assert len(outcome.results) == len(MIXED_KEYS)
            assert all(forest is not None for forest in outcome.results)
            assert pool.pool_stats()["crash_failures"] >= 1

            wait_until(
                lambda: pool.shard_states()[victim]["state"] == "dead",
                timeout_s=30,
                message="the victim slot to be declared dead",
            )
            # Whether a key arrived via ledger replay or via the burst's own
            # failover retry, the sibling now serves it from cache.
            for level, delta in victim_keys:
                _, cached = pool.build_forest_traced(level, delta)
                assert cached
        finally:
            pool.close()


# --------------------------------------------------------------------- #
# Snapshot hygiene: TTL at export/import, topology guard
# --------------------------------------------------------------------- #


class TestSnapshotHygiene:
    def make_engine(self, tree, ttl):
        clock = {"now": 0.0}
        engine = ForestEngine(
            tree,
            ServerConfig(forest_ttl_s=ttl, **POOL_CONFIG),
            clock=lambda: clock["now"],
        )
        return engine, clock

    def test_expired_entries_excluded_from_export(self, small_tree_with_priors):
        """Regression (ISSUE fix): expiry is lazy, so an expired entry still
        sits in the cache dict — it must never be exported."""
        engine, clock = self.make_engine(small_tree_with_priors, ttl=10.0)
        engine.build_forest_traced(1, 0)
        clock["now"] = 6.0
        engine.build_forest_traced(1, 1)
        # Both entries are in the raw dict; the first is past its TTL now.
        clock["now"] = 11.0
        assert len(engine._forest_cache) == 2  # lazy expiry: still present
        entries = engine.export_cache_entries(payload_budget_bytes=1 << 20)
        assert [(entry["privacy_level"], entry["delta"]) for entry in entries] == [(1, 1)]
        remaining = entries[0]["ttl_remaining_s"]
        assert remaining == pytest.approx(5.0)

    def test_export_without_ttl_ships_no_deadline(self, small_tree_with_priors):
        engine, _ = self.make_engine(small_tree_with_priors, ttl=0.0)
        engine.build_forest_traced(1, 1)
        (entry,) = engine.export_cache_entries(payload_budget_bytes=1 << 20)
        assert entry["ttl_remaining_s"] is None
        assert entry["matrices"] is not None

    def test_payload_budget_degrades_to_key_only(self, small_tree_with_priors):
        engine, _ = self.make_engine(small_tree_with_priors, ttl=0.0)
        engine.build_forest_traced(1, 0)
        engine.build_forest_traced(1, 1)
        entries = engine.export_cache_entries(payload_budget_bytes=0)
        assert len(entries) == 2
        assert all(entry["matrices"] is None for entry in entries)

    def test_import_preserves_remaining_ttl(self, small_tree_with_priors):
        source, _ = self.make_engine(small_tree_with_priors, ttl=10.0)
        forest, _ = source.build_forest_traced(1, 1)
        sink, clock = self.make_engine(copy.deepcopy(small_tree_with_priors), ttl=10.0)
        outcome = sink.import_cache_entry(
            1, 1, POOL_CONFIG["epsilon"],
            matrices={root_id: matrix for root_id, matrix in forest},
            ttl_remaining_s=3.0,
        )
        assert outcome == "imported"
        clock["now"] = 2.0
        _, cached = sink.build_forest_traced(1, 1)
        assert cached  # 1 s of imported life left
        clock["now"] = 4.0
        _, cached = sink.build_forest_traced(1, 1)
        assert not cached  # the imported 3 s are gone, not a fresh 10 s

    def test_import_skips_entries_expired_in_transit(self, small_tree_with_priors):
        engine, _ = self.make_engine(small_tree_with_priors, ttl=10.0)
        assert engine.import_cache_entry(1, 1, 2.0, ttl_remaining_s=0.0) == "skipped"
        assert engine.import_cache_entry(99, 1, 2.0) == "skipped"

    def test_worker_rejects_stale_priors_payload(self, small_tree_with_priors):
        """Regression: the *worker* compares the snapshot's priors version
        against its own at import time — a payload stamped with another
        generation is pre-warmed (rebuilt), never installed, even if the
        pool-side check raced a publish."""
        import multiprocessing

        from repro.service.shard import ShardSpec, shard_worker_main

        ctx = multiprocessing.get_context()
        request_queue, response_queue = ctx.Queue(), ctx.Queue()
        spec = ShardSpec(
            shard_id=0,
            tree=copy.deepcopy(small_tree_with_priors),
            config=ServerConfig(**POOL_CONFIG),
            priors_version=5,
        )
        worker = threading.Thread(
            target=shard_worker_main, args=(spec, request_queue, response_queue),
            daemon=True,
        )
        worker.start()
        try:
            _, status, _ = response_queue.get(timeout=60)
            assert status == "ready"
            reference = ForestEngine(
                copy.deepcopy(small_tree_with_priors), ServerConfig(**POOL_CONFIG)
            )
            forest, _ = reference.build_forest_traced(1, 1)
            entry = SnapshotEntry(
                privacy_level=1,
                delta=1,
                epsilon=POOL_CONFIG["epsilon"],
                matrices=dict(forest),
            )

            def import_with_version(ticket, version):
                blob = encode_snapshot(
                    CacheSnapshot(shard_slot=1, priors_version=version, entries=(entry,))
                )
                request_queue.put(("import_cache", ticket, blob))
                answered, status, result = response_queue.get(timeout=120)
                assert answered == ticket and status == "ok"
                return result

            skewed = import_with_version(1, version=4)  # != the worker's 5
            assert skewed == {"imported": 0, "prewarmed": 1, "skipped": 0}
            matching = import_with_version(2, version=5)
            assert matching["imported"] == 1
        finally:
            request_queue.put(None)
            worker.join(timeout=30)
            assert not worker.is_alive()

    def test_import_foreign_topology_rebuilds(self, small_tree_with_priors):
        """A payload whose sub-tree roots don't match this tree must be
        rebuilt, never installed (replica-mismatch guard)."""
        engine, _ = self.make_engine(small_tree_with_priors, ttl=0.0)
        forest, _ = engine.build_forest_traced(1, 1)
        matrices = {f"alien-{index}": matrix for index, (_, matrix) in enumerate(forest)}
        engine.invalidate()
        outcome = engine.import_cache_entry(1, 1, POOL_CONFIG["epsilon"], matrices=matrices)
        assert outcome == "prewarmed"
        _, cached = engine.build_forest_traced(1, 1)
        assert cached  # the rebuild warmed the cache under the local key


# --------------------------------------------------------------------- #
# Service surface and metrics
# --------------------------------------------------------------------- #


class TestServiceSurface:
    def test_metrics_grow_handoff_counters(self):
        snapshot = ServiceMetrics().snapshot()
        for name in ("drains", "handoffs", "warm_failovers"):
            assert snapshot[name] == 0
        metrics = ServiceMetrics()
        metrics.increment("warm_failovers")
        assert metrics.snapshot()["warm_failovers"] == 1

    def test_service_drain_mirrors_pool_counters(self, pool_tree):
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            service = CORGIService(pool)
            victim, victim_keys = victim_and_keys(pool)
            for level, delta in MIXED_KEYS:
                pool.build_forest(level, delta)
            report = service.drain(victim)
            assert report["slot"] == victim
            snapshot = service.snapshot()
            assert snapshot["service"]["drains"] == 1
            assert snapshot["service"]["handoffs"] == len(victim_keys)
            assert snapshot["service"]["warm_failovers"] == 0
            assert snapshot["engine"]["pool"]["drains"] == 1
            assert service.diagnostics()["handoff_imports"] == len(victim_keys)

    def test_service_drain_requires_pool(self, small_tree_with_priors):
        service = CORGIService(
            ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
        )
        with pytest.raises(ValueError, match="no shard slots"):
            service.drain(0)


# --------------------------------------------------------------------- #
# HTTP admin surface
# --------------------------------------------------------------------- #


def _post_status(url: str, body: object) -> int:
    """POST arbitrary JSON; return the HTTP status (errors included)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status
    except urllib.error.HTTPError as error:
        return error.code


class TestAdminDrainHTTP:
    def test_drain_over_the_wire(self, pool_tree):
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            victim, victim_keys = victim_and_keys(pool)
            service = CORGIService(pool)
            with CORGIHTTPServer(service, port=0) as server:
                transport = HTTPTransport(server.url)
                for level, delta in MIXED_KEYS:
                    transport.fetch_forest(
                        ObfuscationRequest(privacy_level=level, delta=delta)
                    )
                report = transport.drain(victim)
                assert report["slot"] == victim
                assert report["handoff_keys"] == len(victim_keys)
                metrics = transport.metrics()
                assert metrics["service"]["drains"] == 1
                assert metrics["service"]["handoffs"] == len(victim_keys)

    def test_bad_slots_are_structured_4xx_never_500(self, pool_tree):
        """Acceptance: every malformed drain request is a client-class
        answer with a structured body — the error mapping has no 500 hole."""
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            service = CORGIService(pool)
            with CORGIHTTPServer(service, port=0) as server:
                url = server.url + "/admin/drain"
                bad_bodies = [
                    {},
                    {"slot": "wat"},
                    {"slot": -1},
                    {"slot": 99},
                    {"slot": None},
                    {"slot": True},
                    {"slot": 1.5},
                    {"slot": [1]},
                    {"slot": {"nested": 1}},
                    [],
                    "just a string",
                    42,
                ]
                for body in bad_bodies:
                    status = _post_status(url, body)
                    assert 400 <= status < 500, f"status {status} for body {body!r}"

    def test_drain_twice_over_the_wire_is_400(self, pool_tree):
        with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
            victim, _ = victim_and_keys(pool)
            with CORGIHTTPServer(CORGIService(pool), port=0) as server:
                transport = HTTPTransport(server.url)
                transport.drain(victim)
                with pytest.raises(TransportError) as excinfo:
                    transport.drain(victim)
                assert excinfo.value.status == 400
                assert "only a ready shard" in (excinfo.value.detail or "")

    def test_transport_drain_propagates_typed_errors(self, small_tree_with_priors):
        """An engine-backed (non-pool) server answers 400, and the transport
        raises the same typed error shape as ``invalidate``."""
        engine = ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
        with CORGIHTTPServer(CORGIService(engine), port=0) as server:
            transport = HTTPTransport(server.url)
            with pytest.raises(TransportError) as excinfo:
                transport.drain(0)
            assert excinfo.value.status == 400
            assert "no shard slots" in (excinfo.value.detail or "")
            with pytest.raises(TransportError) as excinfo:
                transport.drain("wat")
            assert excinfo.value.status == 400
