"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table/figure of the paper's evaluation
(Section 6.2).  The scale is controlled by the ``REPRO_SCALE`` environment
variable (``small`` by default, ``paper`` for the full configuration — see
repro.experiments.config).  At the small scale the whole directory runs in a
few minutes on a laptop while preserving the shape of every result; the
printed tables are the rows quoted in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig, get_scale
from repro.experiments.workloads import build_workload

# Make the shared test helpers (tests/helpers_concurrency.py) importable
# when only benchmarks/ is collected — the service benchmark reuses the
# deadline-joined burst driver instead of growing a weaker copy.
_TESTS_DIR = str(Path(__file__).resolve().parent.parent / "tests")
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance-trajectory benchmarks (bench_perf_pipeline.py); "
        "excluded from tier-1, deselect with -m 'not perf'",
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The experiment configuration used by every benchmark in this session."""
    base = get_scale()
    if base.name != "small":
        return base
    # Benchmark-friendly trim of the small scale: same structure, smaller sweeps.
    return base.derive(
        robust_iterations=3,
        epsilon_sweep=(15.0, 17.0),
        delta_sweep=(1, 3),
        pruning_trials=30,
        num_checkins=6_000,
    )


@pytest.fixture(scope="session")
def workload(config):
    """The shared experiment workload (tree, priors, targets, splits)."""
    return build_workload(config)
