"""Scenario reports and SLO evaluation.

A :class:`ScenarioReport` is the single artifact a scenario run produces:
replay counters, the adversary's privacy posture, latency percentiles and
the verdict of every declared SLO, side by side.  The report separates

* **deterministic counters** (:meth:`ScenarioReport.deterministic_view`) —
  event/served/error counts, per-key traffic, utility loss, adversary
  metrics and the schedule digest, which are bit-identical for the same
  ``(scenario, seed)`` and gated by the determinism test; from
* **timing** — wall-clock latency percentiles and throughput, which vary
  run to run and are bounded only by (deliberately loose) latency SLOs.

SLOs are declared per scenario as an :class:`SLOSpec`; evaluation yields
one :class:`SLOCheck` per bound so CI output can show exactly which bound
failed by how much.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["SLOCheck", "SLOSpec", "ScenarioReport", "latency_percentiles"]


def latency_percentiles(samples_s: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p90/p99/max over raw latency samples (seconds)."""
    if not samples_s:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0, "count": 0}
    ordered = sorted(samples_s)
    count = len(ordered)

    def rank(quantile: float) -> float:
        position = max(1, math.ceil(quantile * count))
        return float(ordered[position - 1])

    return {
        "p50": rank(0.50),
        "p90": rank(0.90),
        "p99": rank(0.99),
        "max": float(ordered[-1]),
        "count": count,
    }


@dataclass(frozen=True)
class SLOSpec:
    """Declared service-level objectives of one scenario.

    Every bound is an upper limit; ``inf`` (the default for most) means
    "not gated".  The defaults gate nothing — scenarios declare what they
    promise.
    """

    #: Served-weighted Geo-Ind violation percentage across distinct matrices.
    max_violation_pct: float = float("inf")
    #: Attacker MAP recovery vs the prior-only guess (1.0 = no leakage).
    max_recovery_ratio: float = float("inf")
    #: Mean empirical utility loss (km) over replayed reports.
    max_utility_loss_km: float = float("inf")
    #: Fraction of replay requests that failed outright.
    max_error_rate: float = float("inf")
    #: Wall-clock request latency bounds (loose — CI runners are noisy).
    max_latency_p50_s: float = float("inf")
    max_latency_p99_s: float = float("inf")

    def to_dict(self) -> Dict[str, float]:
        return {
            "max_violation_pct": self.max_violation_pct,
            "max_recovery_ratio": self.max_recovery_ratio,
            "max_utility_loss_km": self.max_utility_loss_km,
            "max_error_rate": self.max_error_rate,
            "max_latency_p50_s": self.max_latency_p50_s,
            "max_latency_p99_s": self.max_latency_p99_s,
        }

    def evaluate(
        self, counters: Mapping[str, object], timing: Mapping[str, object]
    ) -> List["SLOCheck"]:
        """One :class:`SLOCheck` per *gated* bound (unbounded specs skipped)."""
        adversary = counters.get("adversary") or {}
        latency = timing.get("latency_s") or {}
        observations = (
            ("violation_pct", adversary.get("violation_pct"), self.max_violation_pct),
            ("recovery_ratio", adversary.get("recovery_ratio"), self.max_recovery_ratio),
            ("utility_loss_km", counters.get("utility_loss_km"), self.max_utility_loss_km),
            ("error_rate", counters.get("error_rate"), self.max_error_rate),
            ("latency_p50_s", latency.get("p50"), self.max_latency_p50_s),
            ("latency_p99_s", latency.get("p99"), self.max_latency_p99_s),
        )
        checks: List[SLOCheck] = []
        for name, actual, limit in observations:
            if math.isinf(limit):
                continue
            if actual is None:
                # A gated metric that was never measured is a failure — a
                # scenario promising a privacy bound must have fed the
                # adversary at least one matrix.
                checks.append(SLOCheck(name=name, limit=limit, actual=None, passed=False))
                continue
            checks.append(
                SLOCheck(name=name, limit=limit, actual=float(actual), passed=float(actual) <= limit)
            )
        return checks


@dataclass(frozen=True)
class SLOCheck:
    """Verdict of one SLO bound."""

    name: str
    limit: float
    actual: Optional[float]
    passed: bool

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "limit": self.limit, "actual": self.actual, "passed": self.passed}


@dataclass
class ScenarioReport:
    """Everything one scenario run measured, plus its SLO verdict."""

    scenario: str
    seed: int
    schedule_digest: str
    counters: Dict[str, object] = field(default_factory=dict)
    timing: Dict[str, object] = field(default_factory=dict)
    slo_checks: List[SLOCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every declared SLO held."""
        return all(check.passed for check in self.slo_checks)

    def failed_checks(self) -> List[SLOCheck]:
        return [check for check in self.slo_checks if not check.passed]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "schedule_digest": self.schedule_digest,
            "passed": self.passed,
            "counters": self.counters,
            "timing": self.timing,
            "slo_checks": [check.to_dict() for check in self.slo_checks],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioReport":
        checks = [
            SLOCheck(
                name=str(entry["name"]),
                limit=float(entry["limit"]),  # type: ignore[arg-type]
                actual=None if entry.get("actual") is None else float(entry["actual"]),  # type: ignore[arg-type]
                passed=bool(entry["passed"]),
            )
            for entry in payload.get("slo_checks", ())  # type: ignore[union-attr]
        ]
        return cls(
            scenario=str(payload["scenario"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            schedule_digest=str(payload["schedule_digest"]),
            counters=dict(payload.get("counters") or {}),  # type: ignore[arg-type]
            timing=dict(payload.get("timing") or {}),  # type: ignore[arg-type]
            slo_checks=checks,
        )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def deterministic_view(self) -> Dict[str, object]:
        """The subset that must be bit-identical for the same seed + scenario.

        Excludes every wall-clock observation (``timing``) and the
        pass/fail of latency SLOs; includes the schedule digest, traffic
        counters and the adversary's privacy metrics.
        """
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "schedule_digest": self.schedule_digest,
            "counters": self.counters,
        }

    def to_markdown(self) -> str:
        """A compact GitHub-flavoured summary (CI step summaries, PR bodies)."""
        adversary = self.counters.get("adversary") or {}
        latency = self.timing.get("latency_s") or {}
        lines = [
            f"### Scenario `{self.scenario}` — {'PASS' if self.passed else 'FAIL'}",
            "",
            "| metric | value |",
            "|---|---|",
            f"| events replayed | {self.counters.get('events_total', 0)} |",
            f"| served / errors | {self.counters.get('served', 0)} / {self.counters.get('errors', 0)} |",
            f"| distinct matrices audited | {adversary.get('distinct_matrices', 0)} |",
            f"| Geo-Ind violation % (served-weighted) | {adversary.get('violation_pct', 0.0):.4f} |",
            f"| attacker recovery vs prior | {adversary.get('recovery_ratio', 0.0):.4f} |",
            f"| expected inference error (km) | {adversary.get('expected_error_km', 0.0):.4f} |",
            f"| mean utility loss (km) | {self.counters.get('utility_loss_km', 0.0):.4f} |",
            f"| latency p50 / p99 (s) | {latency.get('p50', 0.0):.4f} / {latency.get('p99', 0.0):.4f} |",
        ]
        if self.slo_checks:
            lines += ["", "| SLO | limit | actual | verdict |", "|---|---|---|---|"]
            for check in self.slo_checks:
                actual = "n/a" if check.actual is None else f"{check.actual:.4f}"
                lines.append(
                    f"| {check.name} | {check.limit:.4f} | {actual} | "
                    f"{'ok' if check.passed else 'VIOLATED'} |"
                )
        return "\n".join(lines)
