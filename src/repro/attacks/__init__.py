"""Adversary models used to audit the mechanisms.

Geo-Ind bounds how much an attacker's posterior can deviate from the prior
(Definition 2.1).  This subpackage provides the Bayesian adversary that
actually computes those posteriors from a published obfuscation matrix and
the inference-error metrics commonly used to quantify location privacy
empirically (Shokri et al.), which the examples use to illustrate what the
guarantee buys in practice.
"""

from repro.attacks.bayesian import BayesianAttacker
from repro.attacks.metrics import (
    expected_inference_error_km,
    posterior_gain,
    top1_recovery_rate,
)

__all__ = [
    "BayesianAttacker",
    "expected_inference_error_km",
    "posterior_gain",
    "top1_recovery_rate",
]
