"""Trace replay against any forest transport, with an online adversary.

:class:`TraceReplayer` takes a materialised
:class:`~repro.loadgen.trace.TraceSchedule` and replays it as a simulated
user fleet against anything that speaks the two-message protocol —
:class:`~repro.client.transport.InProcessTransport`,
:class:`~repro.client.transport.HTTPTransport`, or the push gateway via the
:class:`GatewayForestTransport` adapter below.  Every served matrix is fed
to an :class:`~repro.loadgen.adversary.OnlineAdversary`, and every replayed
report contributes an empirical utility-loss observation (the real leaf is
known to the harness, never to the server).

Fault-injection ops (shard drains, worker SIGKILLs, priors publishes) are
**synchronous barriers**: the replay drains all in-flight requests, applies
the op, then resumes.  That keeps every scenario's counters deterministic —
each request is unambiguously pre- or post-op — while the service still
absorbs the op under immediately-following load.

Determinism: per-event randomness (report sampling) is seeded from
``(schedule seed, event index)``, per-event results land in an
index-addressed array, and all floating-point reductions run in event-index
order after the replay — so counter floats are bit-identical across runs
regardless of thread scheduling.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.client.transport import ForestTransport, ResponseForest
from repro.loadgen.adversary import OnlineAdversary
from repro.loadgen.report import latency_percentiles
from repro.loadgen.trace import ReplayEvent, TraceSchedule
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["GatewayForestTransport", "ReplayOutcome", "TraceReplayer"]

#: A fault-injection op: called at its barrier, returns a JSON-friendly
#: description of what it did (merged into the outcome's op log).
ReplayOp = Callable[[], Mapping[str, object]]


class GatewayForestTransport:
    """Adapts a held push-gateway connection to the ``fetch_forest`` protocol.

    The gateway inverts the flow — matrices are pushed, not fetched — so
    this adapter subscribes on first use of a key and then answers each
    ``fetch_forest`` from the freshest held push (waiting for the initial
    snapshot when none is held yet).  Replays through it measure the
    held-connection consumption path end to end.
    """

    def __init__(self, client: object, *, wait_s: float = 30.0) -> None:
        self.client = client  # a repro.client.gateway.GatewayClient
        self.wait_s = float(wait_s)
        self._lock = threading.Lock()
        self._subscribed: Dict[Tuple[int, int, Optional[float]], Tuple[int, int, float]] = {}

    def fetch_forest(self, request: ObfuscationRequest) -> PrivacyForestResponse:
        wanted = (request.privacy_level, request.delta, request.epsilon)
        with self._lock:
            key = self._subscribed.get(wanted)
            if key is None:
                key = self.client.subscribe(
                    request.privacy_level, request.delta, request.epsilon, wait_s=self.wait_s
                )
                self._subscribed[wanted] = key
        push = self.client.wait_forest(key, timeout_s=self.wait_s)
        return PrivacyForestResponse.from_dict(push.response)


@dataclass
class _EventRecord:
    """What one replayed event observed (index-addressed for determinism)."""

    ok: bool
    key_label: str
    digest: Optional[str] = None
    utility_km: Optional[float] = None
    latency_s: float = 0.0
    error: Optional[str] = None


@dataclass
class ReplayOutcome:
    """Raw replay results, reduced deterministically by :meth:`counters`."""

    schedule: TraceSchedule
    records: List[Optional[_EventRecord]]
    ops_applied: List[Dict[str, object]] = field(default_factory=list)
    wall_s: float = 0.0
    adversary: Optional[OnlineAdversary] = None

    def counters(self) -> Dict[str, object]:
        """Deterministic traffic/privacy counters (event-index-ordered reduce)."""
        served = 0
        errors = 0
        utility_sum = 0.0
        utility_count = 0
        per_key: Dict[str, int] = {}
        for record in self.records:
            if record is None:
                continue
            per_key[record.key_label] = per_key.get(record.key_label, 0) + 1
            if record.ok:
                served += 1
                if record.utility_km is not None:
                    utility_sum += record.utility_km
                    utility_count += 1
            else:
                errors += 1
        total = len(self.schedule)
        counters: Dict[str, object] = {
            "events_total": total,
            "served": served,
            "errors": errors,
            "error_rate": (errors / total) if total else 0.0,
            "per_key": {label: per_key[label] for label in sorted(per_key)},
            "utility_loss_km": (utility_sum / utility_count) if utility_count else 0.0,
            "utility_samples": utility_count,
            "ops_applied": len(self.ops_applied),
        }
        if self.adversary is not None:
            summary = self.adversary.summary()
            counters["adversary"] = summary.to_dict() if summary is not None else {}
        return counters

    def timing(self) -> Dict[str, object]:
        """Wall-clock observations (non-deterministic; latency SLOs only)."""
        latencies = [record.latency_s for record in self.records if record is not None and record.ok]
        total = len(self.schedule)
        return {
            "latency_s": latency_percentiles(latencies),
            "wall_s": self.wall_s,
            "throughput_rps": (total / self.wall_s) if self.wall_s > 0 else 0.0,
        }


def _key_label(event: ReplayEvent) -> str:
    epsilon = "default" if event.epsilon is None else f"{event.epsilon:g}"
    return f"level={event.privacy_level} delta={event.delta} eps={epsilon}"


class TraceReplayer:
    """Replays a schedule as a concurrent simulated fleet.

    Parameters
    ----------
    transport:
        Anything with ``fetch_forest(ObfuscationRequest)``.
    tree:
        The *client-side* view of the served tree: maps each event's real
        leaf to its sub-tree root at the requested level, and prices the
        utility of each sampled report.  Must be topologically identical to
        the tree the service serves (the harness builds both from one
        workload).
    schedule:
        The materialised trace.
    adversary:
        Optional :class:`OnlineAdversary` fed every served matrix.
    concurrency:
        Replay worker threads (simultaneously outstanding requests).
    ops:
        Fault-injection barriers: ``{event_index: op}`` — before dispatching
        ``event_index``, all earlier events are drained and ``op()`` runs.
    replay_speed:
        ``None`` (default) replays as fast as the service allows; a float
        ``x`` paces arrivals at ``x``× the schedule's virtual time (the
        live-dashboard mode).
    """

    def __init__(
        self,
        transport: ForestTransport,
        tree: LocationTree,
        schedule: TraceSchedule,
        *,
        adversary: Optional[OnlineAdversary] = None,
        concurrency: int = 8,
        ops: Optional[Mapping[int, ReplayOp]] = None,
        replay_speed: Optional[float] = None,
    ) -> None:
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive, got {concurrency}")
        if replay_speed is not None and replay_speed <= 0:
            raise ValueError(f"replay_speed must be positive, got {replay_speed}")
        self.transport = transport
        self.tree = tree
        self.schedule = schedule
        self.adversary = adversary
        self.concurrency = int(concurrency)
        self.ops = dict(ops or {})
        self.replay_speed = replay_speed
        self._records: List[Optional[_EventRecord]] = [None] * len(schedule)
        self._progress_lock = threading.Lock()
        self._dispatched = 0
        self._served = 0
        self._errors = 0
        self._started_at: Optional[float] = None
        self._finished = threading.Event()

    # ------------------------------------------------------------------ #
    # Live introspection (the dashboard's feed)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """Thread-safe live progress view for the terminal dashboard."""
        with self._progress_lock:
            dispatched, served, errors = self._dispatched, self._served, self._errors
        latencies = [
            record.latency_s
            for record in self._records
            if record is not None and record.ok
        ]
        summary = self.adversary.summary() if self.adversary is not None else None
        elapsed = 0.0 if self._started_at is None else time.perf_counter() - self._started_at
        return {
            "events_total": len(self.schedule),
            "dispatched": dispatched,
            "served": served,
            "errors": errors,
            "elapsed_s": elapsed,
            "done": self._finished.is_set(),
            "latency_s": latency_percentiles(latencies),
            "adversary": summary.to_dict() if summary is not None else {},
            "ops_applied": len(self.ops),
        }

    @property
    def finished(self) -> threading.Event:
        return self._finished

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def run(self) -> ReplayOutcome:
        """Replay the whole schedule; returns the raw outcome."""
        events = self.schedule.events
        # Ops keyed past the schedule end never fire (a scaled-down run may
        # shrink the schedule under a fixed barrier index).
        barriers = sorted(index for index in self.ops if 0 <= index < len(events))
        ops_applied: List[Dict[str, object]] = []
        self._started_at = time.perf_counter()
        start = self._started_at
        cursor = 0
        try:
            with ThreadPoolExecutor(max_workers=self.concurrency) as executor:
                for barrier in barriers:
                    chunk = events[cursor:barrier]
                    if chunk:
                        # list() drains the chunk: the map is the barrier.
                        list(executor.map(self._replay_one, chunk))
                    cursor = barrier
                    description = dict(self.ops[barrier]())
                    description.setdefault("at_event", barrier)
                    ops_applied.append(description)
                    logger.info("replay op at event %d: %s", barrier, description)
                tail = events[cursor:]
                if tail:
                    list(executor.map(self._replay_one, tail))
        finally:
            self._finished.set()
        wall = time.perf_counter() - start
        return ReplayOutcome(
            schedule=self.schedule,
            records=self._records,
            ops_applied=ops_applied,
            wall_s=wall,
            adversary=self.adversary,
        )

    def _replay_one(self, event: ReplayEvent) -> None:
        if self.replay_speed is not None and self._started_at is not None:
            due = self._started_at + event.at_s / self.replay_speed
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        with self._progress_lock:
            self._dispatched += 1
        record = _EventRecord(ok=False, key_label=_key_label(event))
        began = time.perf_counter()
        try:
            request = ObfuscationRequest(
                privacy_level=event.privacy_level, delta=event.delta, epsilon=event.epsilon
            )
            response = self.transport.fetch_forest(request)
            record.latency_s = time.perf_counter() - began
            forest = ResponseForest.from_response(response)
            root = self.tree.ancestor_at_level(event.leaf_id, event.privacy_level)
            matrix = forest.matrix_for_subtree(root.node_id)
            if self.adversary is not None:
                record.digest = self.adversary.consume(matrix, epsilon=response.epsilon)
            # Empirical utility: sample the report the device would send and
            # price the haversine error against the real leaf.  Seeded per
            # event so the draw is independent of thread interleaving.
            rng = np.random.default_rng((abs(self.schedule.seed) + 1) * 1_000_003 + event.index)
            reported_id = matrix.sample(event.leaf_id, seed=rng)
            record.utility_km = self.tree.distance_km(event.leaf_id, reported_id)
            record.ok = True
        except Exception as error:  # noqa: BLE001 - counted, surfaced via the report
            record.latency_s = time.perf_counter() - began
            record.error = f"{type(error).__name__}: {error}"
            logger.warning("replay event %d failed: %s", event.index, record.error)
        self._records[event.index] = record
        with self._progress_lock:
            if record.ok:
                self._served += 1
            else:
                self._errors += 1
