"""Fig. 11 — impact of the privacy parameter ε and the customization parameter δ.

For ε from 15 to 18 /km and δ from 1 to 3, the quality loss of CORGI's
robust matrix is compared against the non-robust baseline (δ = 0, the plain
Eq. 8 optimum).  Expected shape: loss decreases as ε grows (weaker
constraints), increases with δ (more budget reserved), and CORGI's loss is
always at least the non-robust loss for the same ε — the price of
robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import ResultTable
from repro.baselines.nonrobust import NonRobustLPMechanism
from repro.core.lp import ConstraintStructure
from repro.core.robust import RobustMatrixGenerator
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import ExperimentWorkload, LocationSet, build_workload
from repro.pipeline.executor import RobustGenerationTask, run_robust_tasks
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class PrivacyParamsResult:
    """Quality-loss measurements behind Fig. 11."""

    rows: List[Dict[str, float]] = field(default_factory=list)
    #: (epsilon, delta) -> CORGI quality loss (km)
    corgi_loss: Dict[Tuple[float, int], float] = field(default_factory=dict)
    #: epsilon -> non-robust quality loss (km)
    nonrobust_loss: Dict[float, float] = field(default_factory=dict)
    table: Optional[ResultTable] = None

    def loss_decreases_with_epsilon(self, delta: int) -> bool:
        """Whether CORGI's loss is non-increasing along the ε sweep for a given δ."""
        epsilons = sorted({eps for eps, d in self.corgi_loss if d == delta})
        losses = [self.corgi_loss[(eps, delta)] for eps in epsilons]
        return all(losses[i + 1] <= losses[i] + 1e-6 for i in range(len(losses) - 1))

    def corgi_never_below_nonrobust(self) -> bool:
        """Whether CORGI's loss is always >= the non-robust loss at the same ε."""
        for (eps, _delta), loss in self.corgi_loss.items():
            if loss + 1e-6 < self.nonrobust_loss.get(eps, 0.0):
                return False
        return True


def run_privacy_params_experiment(
    config: ExperimentConfig,
    *,
    workload: Optional[ExperimentWorkload] = None,
    epsilons: Optional[Sequence[float]] = None,
    deltas: Optional[Sequence[int]] = None,
    location_set: Optional[LocationSet] = None,
) -> PrivacyParamsResult:
    """Reproduce Fig. 11 (quality loss vs ε and δ, CORGI vs non-robust)."""
    workload = workload or build_workload(config)
    epsilons = list(epsilons) if epsilons is not None else list(config.epsilon_sweep)
    deltas = list(deltas) if deltas is not None else list(config.delta_sweep)
    location_set = location_set or workload.subtree_location_set()

    result = PrivacyParamsResult()
    table = ResultTable(
        title="Fig. 11 - quality loss (estimation error, km) vs epsilon and delta",
        columns=["epsilon_per_km", "delta", "corgi_loss_km", "nonrobust_loss_km"],
    )
    # The whole sweep runs over one location set, so the sparse constraint
    # pattern is built once and every LP (baseline and robust, every ε and δ)
    # refreshes only the e^{ε_eff d} coefficients.
    structure = ConstraintStructure(location_set.size, location_set.constraint_set)
    for epsilon in epsilons:
        baseline = NonRobustLPMechanism(
            location_set.node_ids,
            location_set.distance_matrix_km,
            location_set.quality_model,
            epsilon,
            constraint_set=location_set.constraint_set,
            solver_method=config.solver_method,
            solver_backend=config.solver_backend,
            structure=structure,
        )
        nonrobust_loss = location_set.quality_model.expected_loss(baseline.matrix)
        result.nonrobust_loss[float(epsilon)] = float(nonrobust_loss)

    sweep = [(float(epsilon), int(delta)) for epsilon in epsilons for delta in deltas]
    generations = _generate_sweep(config, location_set, sweep, structure)
    for (epsilon, delta), generation in zip(sweep, generations):
        corgi_loss = location_set.quality_model.expected_loss(generation.matrix)
        result.corgi_loss[(epsilon, delta)] = float(corgi_loss)
        row = {
            "epsilon_per_km": epsilon,
            "delta": delta,
            "corgi_loss_km": float(corgi_loss),
            "nonrobust_loss_km": result.nonrobust_loss[epsilon],
        }
        result.rows.append(row)
        table.add_row(**row)
        logger.info(
            "privacy params: epsilon=%.1f delta=%d corgi=%.4f nonrobust=%.4f",
            epsilon,
            delta,
            corgi_loss,
            result.nonrobust_loss[epsilon],
        )
    result.table = table
    return result


def _generate_sweep(
    config: ExperimentConfig,
    location_set: LocationSet,
    sweep: Sequence[Tuple[float, int]],
    structure: ConstraintStructure,
):
    """Robust generations for every (ε, δ) point, in sweep order.

    With ``config.max_workers > 1`` the independent points fan out across
    worker processes through the pipeline executor; otherwise they run
    serially, sharing the pre-built constraint structure.
    """
    if config.max_workers > 1:
        tasks = [
            RobustGenerationTask(
                key=f"eps={epsilon}:delta={delta}",
                node_ids=location_set.node_ids,
                distance_matrix_km=location_set.distance_matrix_km,
                cost_matrix=location_set.quality_model.cost_matrix,
                priors=location_set.quality_model.priors,
                epsilon=epsilon,
                delta=delta,
                constraint_pairs=location_set.constraint_set.pairs,
                constraint_distances_km=location_set.constraint_set.distances_km,
                constraint_description=location_set.constraint_set.description,
                max_iterations=config.robust_iterations,
                solver_method=config.solver_method,
                solver_backend=config.solver_backend,
            )
            for epsilon, delta in sweep
        ]
        return run_robust_tasks(tasks, max_workers=config.max_workers)
    return [
        RobustMatrixGenerator(
            location_set.node_ids,
            location_set.distance_matrix_km,
            location_set.quality_model,
            epsilon,
            delta,
            constraint_set=location_set.constraint_set,
            max_iterations=config.robust_iterations,
            solver_method=config.solver_method,
            solver_backend=config.solver_backend,
            structure=structure,
        ).generate()
        for epsilon, delta in sweep
    ]
