"""End-to-end integration tests: the full CORGI pipeline on realistic data.

These tests wire every subsystem together the way the examples and the paper
do: synthetic Gowalla-like check-ins -> location tree + priors + attributes
-> server-side robust matrix generation -> client-side customization ->
obfuscated reports -> privacy/utility evaluation.
"""

import numpy as np
import pytest

from repro import (
    CORGIClient,
    CORGIServer,
    ObfuscationSession,
    Policy,
    ServerConfig,
    annotate_tree_with_dataset,
    check_geo_ind,
    priors_from_checkins,
    tree_for_region,
)
from repro.attacks.bayesian import BayesianAttacker
from repro.datasets.region import SAN_FRANCISCO
from repro.datasets.splits import train_test_split_checkins
from repro.datasets.synthetic import generate_small_dataset


@pytest.fixture(scope="module")
def pipeline():
    """A complete small-scale CORGI deployment shared by the tests below."""
    dataset = generate_small_dataset(1_500, seed=11)
    train, test = train_test_split_checkins(dataset, 0.1, seed=11)
    tree = tree_for_region(SAN_FRANCISCO, height=2, root_resolution=7)
    priors_from_checkins(tree, train)
    annotate_tree_with_dataset(tree, train)
    config = ServerConfig(epsilon=5.0, num_targets=10, robust_iterations=2, solver_method="highs-ipm")
    server = CORGIServer(tree, config)
    user = dataset.users()[0]
    client = CORGIClient(tree, server, user_id=user, history=train)
    return {"tree": tree, "server": server, "client": client, "train": train, "test": test}


class TestEndToEnd:
    def test_full_report_flow(self, pipeline):
        tree = pipeline["tree"]
        client = pipeline["client"]
        real = tree.root.center
        policy = Policy.from_strings(
            privacy_level=1,
            precision_level=0,
            preferences=["outlier = False"],
            delta=1,
        )
        outcome = client.obfuscate(real.lat, real.lng, policy, seed=5)
        # The reported node is a leaf of the user's level-1 sub-tree.
        subtree_leaves = {leaf.node_id for leaf in tree.descendant_leaves(outcome.subtree_root_id)}
        assert outcome.reported_node_id in subtree_leaves
        # The customized matrix still satisfies Geo-Ind on its surviving locations.
        ids = outcome.customized_matrix.node_ids
        distances = tree.distance_matrix_km(ids)
        report = check_geo_ind(outcome.customized_matrix, distances, epsilon=5.0, rtol=1e-3, atol=1e-4)
        assert report.violation_fraction < 0.05

    def test_wider_privacy_level_spreads_reports(self, pipeline):
        tree = pipeline["tree"]
        client = pipeline["client"]
        real = tree.root.center
        rng = np.random.default_rng(0)
        narrow = {
            client.obfuscate(real.lat, real.lng, Policy(privacy_level=1, delta=0), seed=rng).reported_node_id
            for _ in range(10)
        }
        wide = {
            client.obfuscate(real.lat, real.lng, Policy(privacy_level=2, delta=0), seed=rng).reported_node_id
            for _ in range(10)
        }
        narrow_root = tree.node_for_latlng(real.lat, real.lng, 1).node_id
        narrow_range = {leaf.node_id for leaf in tree.descendant_leaves(narrow_root)}
        assert narrow <= narrow_range
        # The wide policy may (and with 10 draws usually does) leave the narrow range.
        assert len(wide) >= 1

    def test_session_over_test_checkins(self, pipeline):
        tree = pipeline["tree"]
        client = pipeline["client"]
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        session = ObfuscationSession(client, policy)
        reported = 0
        for checkin in list(pipeline["test"])[:200]:
            if not tree.contains_latlng(checkin.lat, checkin.lng):
                continue
            report = session.report(checkin.lat, checkin.lng, seed=reported)
            assert tree.contains_latlng(*report.reported_latlng)
            reported += 1
            if reported >= 5:
                break
        assert reported > 0

    def test_attacker_cannot_fully_recover(self, pipeline):
        tree = pipeline["tree"]
        server = pipeline["server"]
        forest = server.generate_privacy_forest(privacy_level=1, delta=1)
        root_id = forest.subtree_roots()[0]
        matrix = forest.matrix_for_subtree(root_id)
        leaves = tree.descendant_leaves(root_id)
        ids = [leaf.node_id for leaf in leaves]
        priors = tree.conditional_leaf_priors(ids)
        distances = tree.distance_matrix_km(ids)
        attacker = BayesianAttacker(matrix, priors, distances)
        assert attacker.recovery_rate() < 1.0
        assert attacker.expected_inference_error_km() > 0.0

    def test_serialized_forest_usable_by_client_side_code(self, pipeline):
        from repro.core.pruning import prune_matrix
        from repro.server.messages import ObfuscationRequest

        server = pipeline["server"]
        response = server.handle_request(ObfuscationRequest(privacy_level=1, delta=1))
        payload = response.to_dict()
        from repro.server.messages import PrivacyForestResponse

        restored = PrivacyForestResponse.from_dict(payload)
        root_id = next(iter(restored.matrices))
        matrix = restored.matrices[root_id]
        matrix.validate()
        pruned = prune_matrix(matrix, [matrix.node_ids[0]])
        assert pruned.size == matrix.size - 1

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing attribute {name}"
