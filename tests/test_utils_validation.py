"""Tests for repro.utils.validation and repro.utils.timing."""

import time

import numpy as np
import pytest

from repro.utils.timing import Stopwatch, Timer, format_seconds, summarize_times, time_call
from repro.utils.validation import (
    ensure_in_range,
    ensure_index_subset,
    ensure_positive,
    ensure_probability_vector,
    ensure_square,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never shown")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestEnsurePositive:
    def test_positive_ok(self):
        assert ensure_positive(2.5, "x") == 2.5

    def test_zero_rejected_when_strict(self):
        with pytest.raises(ValueError):
            ensure_positive(0.0, "x")

    def test_zero_ok_when_not_strict(self):
        assert ensure_positive(0.0, "x", strict=False) == 0.0

    def test_negative_always_rejected(self):
        with pytest.raises(ValueError):
            ensure_positive(-1.0, "x", strict=False)


class TestEnsureInRange:
    def test_inside(self):
        assert ensure_in_range(0.5, "x", 0.0, 1.0) == 0.5

    def test_below_low(self):
        with pytest.raises(ValueError):
            ensure_in_range(-0.1, "x", 0.0, 1.0)

    def test_above_high(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.1, "x", 0.0, 1.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            ensure_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_only_low_bound(self):
        assert ensure_in_range(10.0, "x", low=0.0) == 10.0


class TestEnsureProbabilityVector:
    def test_valid_vector(self):
        result = ensure_probability_vector([0.25, 0.75])
        assert result.sum() == pytest.approx(1.0)

    def test_normalize_option(self):
        result = ensure_probability_vector([2.0, 2.0], normalize=True)
        assert np.allclose(result, [0.5, 0.5])

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([0.2, 0.2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([-0.5, 1.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            ensure_probability_vector(np.ones((2, 2)))

    def test_zero_sum_rejected_even_with_normalize(self):
        with pytest.raises(ValueError):
            ensure_probability_vector([0.0, 0.0], normalize=True)


class TestEnsureSquare:
    def test_square_ok(self):
        assert ensure_square(np.zeros((3, 3))).shape == (3, 3)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            ensure_square(np.zeros((2, 3)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            ensure_square(np.zeros(4))


class TestEnsureIndexSubset:
    def test_valid_subset(self):
        assert ensure_index_subset([0, 2], 3) == [0, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ensure_index_subset([3], 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ensure_index_subset([-1], 3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ensure_index_subset([1, 1], 3)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first


class TestStopwatch:
    def test_accumulates_segments(self):
        watch = Stopwatch()
        watch.start("a")
        time.sleep(0.005)
        watch.stop("a")
        watch.start("a")
        watch.stop("a")
        assert watch.segments["a"] > 0
        assert watch.total() == pytest.approx(sum(watch.as_dict().values()))

    def test_stop_unknown_segment(self):
        with pytest.raises(KeyError):
            Stopwatch().stop("missing")


class TestTimeCall:
    def test_returns_result_and_time(self):
        result, elapsed = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_best_of_repeats(self):
        _, elapsed = time_call(time.sleep, 0.002, repeats=3)
        assert elapsed < 0.1


class TestFormatting:
    def test_format_microseconds(self):
        assert "us" in format_seconds(5e-6)

    def test_format_milliseconds(self):
        assert "ms" in format_seconds(5e-3)

    def test_format_seconds(self):
        assert format_seconds(2.0).endswith("s")

    def test_format_minutes(self):
        assert "min" in format_seconds(300.0)

    def test_summarize_times_empty(self):
        assert summarize_times([])["count"] == 0

    def test_summarize_times_values(self):
        stats = summarize_times([1.0, 3.0])
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == 2.0
