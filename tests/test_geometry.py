"""Tests for the geometry subpackage (haversine, projection, hexagon)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.haversine import (
    EARTH_RADIUS_KM,
    LatLng,
    destination_point,
    haversine_km,
    haversine_matrix_km,
    initial_bearing_deg,
    pairwise_haversine_km,
)
from repro.geometry.hexagon import (
    hexagon_apothem,
    hexagon_area,
    hexagon_vertices,
    point_in_hexagon,
    polygon_area,
    polygon_centroid,
)
from repro.geometry.projection import BoundingBox, LocalProjection

SF = (37.7749, -122.4194)
NYC = (40.7128, -74.0060)

lat_strategy = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
lng_strategy = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


class TestLatLng:
    def test_valid(self):
        point = LatLng(37.0, -122.0)
        assert point.as_tuple() == (37.0, -122.0)
        assert list(point) == [37.0, -122.0]

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            LatLng(91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            LatLng(0.0, 200.0)

    def test_hashable(self):
        assert len({LatLng(1.0, 2.0), LatLng(1.0, 2.0)}) == 1

    def test_distance_method(self):
        assert LatLng(*SF).distance_km(LatLng(*SF)) == 0.0


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(*SF, *SF) == 0.0

    def test_known_distance_sf_nyc(self):
        # Great-circle distance SF-NYC is about 4,130 km.
        distance = haversine_km(*SF, *NYC)
        assert 4000 < distance < 4250

    def test_symmetry(self):
        assert haversine_km(*SF, *NYC) == pytest.approx(haversine_km(*NYC, *SF))

    def test_one_degree_latitude(self):
        distance = haversine_km(0.0, 0.0, 1.0, 0.0)
        assert distance == pytest.approx(math.radians(1.0) * EARTH_RADIUS_KM, rel=1e-6)

    @given(lat_strategy, lng_strategy, lat_strategy, lng_strategy)
    @settings(max_examples=60, deadline=None)
    def test_non_negative_and_symmetric(self, lat1, lng1, lat2, lng2):
        d12 = haversine_km(lat1, lng1, lat2, lng2)
        d21 = haversine_km(lat2, lng2, lat1, lng1)
        assert d12 >= 0.0
        assert d12 == pytest.approx(d21, abs=1e-9)
        assert d12 <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(lat_strategy, lng_strategy, lat_strategy, lng_strategy, lat_strategy, lng_strategy)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, lat1, lng1, lat2, lng2, lat3, lng3):
        d12 = haversine_km(lat1, lng1, lat2, lng2)
        d23 = haversine_km(lat2, lng2, lat3, lng3)
        d13 = haversine_km(lat1, lng1, lat3, lng3)
        assert d13 <= d12 + d23 + 1e-6


class TestHaversineMatrix:
    def test_matrix_matches_scalar(self):
        points = [SF, NYC, (37.8, -122.3)]
        matrix = haversine_matrix_km(points, points)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == pytest.approx(haversine_km(*a, *b), rel=1e-9)

    def test_pairwise_symmetric_zero_diagonal(self):
        points = [SF, NYC, (10.0, 10.0), (0.0, 0.0)]
        matrix = pairwise_haversine_km(points)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_empty_inputs(self):
        assert haversine_matrix_km([], []).shape == (0, 0)

    def test_accepts_latlng_objects(self):
        matrix = haversine_matrix_km([LatLng(*SF)], [LatLng(*NYC)])
        assert matrix.shape == (1, 1)


class TestBearingAndDestination:
    def test_bearing_due_north(self):
        assert initial_bearing_deg(0.0, 0.0, 1.0, 0.0) == pytest.approx(0.0, abs=1e-6)

    def test_bearing_due_east(self):
        assert initial_bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0, abs=1e-6)

    def test_destination_roundtrip(self):
        lat, lng = destination_point(*SF, bearing_deg=45.0, distance_km=10.0)
        assert haversine_km(*SF, lat, lng) == pytest.approx(10.0, rel=1e-4)

    def test_destination_zero_distance(self):
        assert destination_point(*SF, 123.0, 0.0) == pytest.approx(SF)

    def test_destination_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            destination_point(*SF, 0.0, -1.0)

    @given(lat_strategy, lng_strategy, st.floats(0, 359.9), st.floats(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_destination_distance_consistent(self, lat, lng, bearing, distance):
        new_lat, new_lng = destination_point(lat, lng, bearing, distance)
        assert haversine_km(lat, lng, new_lat, new_lng) == pytest.approx(distance, rel=1e-3, abs=1e-6)


class TestBoundingBox:
    def test_contains(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.5, 0.5)
        assert not box.contains(2.0, 0.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        assert box.center.as_tuple() == (1.0, 2.0)

    def test_extent_positive(self):
        box = BoundingBox(37.7, -122.5, 37.8, -122.4)
        assert box.width_km() > 0
        assert box.height_km() > 0

    def test_expand_contains_original(self):
        box = BoundingBox(37.7, -122.5, 37.8, -122.4)
        bigger = box.expand(5.0)
        assert bigger.min_lat < box.min_lat
        assert bigger.max_lng > box.max_lng

    def test_from_points(self):
        box = BoundingBox.from_points([(0.0, 0.0), (1.0, 2.0), (-1.0, 1.0)])
        assert box.min_lat == -1.0
        assert box.max_lng == 2.0

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_sample_point_inside(self):
        box = BoundingBox(10.0, 20.0, 11.0, 21.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            point = box.sample_point(rng)
            assert box.contains(point.lat, point.lng)


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        projection = LocalProjection(LatLng(*SF))
        assert projection.to_xy(*SF) == pytest.approx((0.0, 0.0), abs=1e-9)

    def test_roundtrip(self):
        projection = LocalProjection(LatLng(*SF))
        x, y = projection.to_xy(37.80, -122.40)
        point = projection.to_latlng(x, y)
        assert point.lat == pytest.approx(37.80, abs=1e-9)
        assert point.lng == pytest.approx(-122.40, abs=1e-9)

    def test_distance_close_to_haversine(self):
        projection = LocalProjection(LatLng(*SF))
        a, b = (37.76, -122.45), (37.79, -122.40)
        planar = projection.planar_distance_km(a, b)
        great_circle = haversine_km(*a, *b)
        assert planar == pytest.approx(great_circle, rel=5e-3)

    def test_polar_origin_rejected(self):
        with pytest.raises(ValueError):
            LocalProjection(LatLng(90.0, 0.0))

    def test_array_projection(self):
        projection = LocalProjection(LatLng(*SF))
        array = projection.to_xy_array([SF, (37.8, -122.4)])
        assert array.shape == (2, 2)

    def test_for_region(self):
        box = BoundingBox(37.7, -122.5, 37.8, -122.4)
        projection = LocalProjection.for_region(box)
        assert projection.origin.lat == pytest.approx(box.center.lat)

    @given(st.floats(-0.1, 0.1), st.floats(-0.1, 0.1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, dlat, dlng):
        projection = LocalProjection(LatLng(*SF))
        lat, lng = SF[0] + dlat, SF[1] + dlng
        x, y = projection.to_xy(lat, lng)
        point = projection.to_latlng(x, y)
        assert point.lat == pytest.approx(lat, abs=1e-9)
        assert point.lng == pytest.approx(lng, abs=1e-9)


class TestHexagonGeometry:
    def test_six_vertices_at_circumradius(self):
        vertices = hexagon_vertices(0.0, 0.0, 2.0)
        assert len(vertices) == 6
        for x, y in vertices:
            assert math.hypot(x, y) == pytest.approx(2.0)

    def test_area_formula(self):
        assert hexagon_area(1.0) == pytest.approx(3.0 * math.sqrt(3.0) / 2.0)

    def test_area_matches_polygon_area(self):
        vertices = hexagon_vertices(3.0, -1.0, 1.5)
        assert polygon_area(vertices) == pytest.approx(hexagon_area(1.5), rel=1e-9)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            hexagon_vertices(0, 0, 0)
        with pytest.raises(ValueError):
            hexagon_area(-1)

    def test_center_inside(self):
        assert point_in_hexagon(0.0, 0.0, 0.0, 0.0, 1.0)

    def test_far_point_outside(self):
        assert not point_in_hexagon(5.0, 5.0, 0.0, 0.0, 1.0)

    def test_apothem_boundary(self):
        apothem = hexagon_apothem(1.0)
        assert point_in_hexagon(apothem, 0.0, 0.0, 0.0, 1.0)
        assert not point_in_hexagon(apothem + 0.01, 0.0, 0.0, 0.0, 1.0)

    def test_centroid_of_hexagon_is_center(self):
        vertices = hexagon_vertices(2.0, 3.0, 1.0)
        assert polygon_centroid(vertices) == pytest.approx((2.0, 3.0))

    def test_polygon_area_triangle(self):
        assert polygon_area([(0, 0), (1, 0), (0, 1)]) == pytest.approx(0.5)

    def test_polygon_needs_three_vertices(self):
        with pytest.raises(ValueError):
            polygon_area([(0, 0), (1, 1)])

    @given(st.floats(-0.99, 0.99), st.floats(-0.99, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_vertices_of_containing_hexagon(self, fx, fy):
        # Any point within the inscribed circle (radius = apothem) is inside.
        apothem = hexagon_apothem(1.0)
        x, y = fx * apothem * 0.99, fy * apothem * 0.99
        if math.hypot(x, y) <= apothem * 0.99:
            assert point_in_hexagon(x, y, 0.0, 0.0, 1.0)
