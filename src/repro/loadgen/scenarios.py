"""First-class scenario matrix: named workload shapes with declared SLOs.

Each :class:`Scenario` is a complete, self-describing replay configuration:
the fleet (size, key skew, mobility), the arrival process, the serving
topology (in-process engine vs a sharded :class:`~repro.service.pool.EnginePool`),
mid-replay fault-injection ops, and — crucially — the SLOs the scenario
*promises*.  :func:`run_scenario` builds the whole stack, replays the
trace, and returns a :class:`~repro.loadgen.report.ScenarioReport` whose
``passed`` flag is the scenario's verdict, so CI can gate on it directly.

The shipped matrix covers the four production-shaped situations the
roadmap names:

* ``flash_crowd`` — zipf-skew 2.5, bursty arrivals: a hot ``(level, δ, ε)``
  key flash-crowds the coalescing path.
* ``shard_drain`` — a two-shard pool loses a shard to a *graceful* drain
  mid-burst; the warm hand-off must keep serving.
* ``priors_under_load`` — a live priors publish lands mid-replay; every
  matrix served afterwards must reflect the new priors, and the online
  adversary audits both generations.
* ``region_failover`` — a shard worker is SIGKILLed mid-replay (the
  region-loss shape); the pool's crash-retry path must lose no requests.

Ops are synchronous barriers keyed by *event-index fraction*, so the same
seed always injects the fault at the same point of the trace and the
report counters stay deterministic (the acceptance gate).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.objective import TargetDistribution
from repro.datasets.checkin import CheckInDataset
from repro.datasets.synthetic import GowallaLikeGenerator, SyntheticConfig
from repro.geometry.haversine import LatLng
from repro.loadgen.adversary import OnlineAdversary
from repro.loadgen.replay import GatewayForestTransport, ReplayOp, TraceReplayer
from repro.loadgen.report import ScenarioReport, SLOSpec
from repro.loadgen.trace import ArrivalConfig, FleetConfig, TraceGenerator
from repro.server.engine import ForestEngine, ServerConfig
from repro.service.service import CORGIService
from repro.tree.builder import tree_for_point
from repro.tree.location_tree import LocationTree
from repro.tree.priors import priors_from_checkins
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioEnvironment",
    "ScenarioOp",
    "build_environment",
    "resolve_scenario",
    "run_scenario",
    "soak_factor",
]

#: Environment knob the nightly CI soak sets; multiplies events and fleet.
SOAK_FACTOR_ENV = "SCENARIO_SOAK_FACTOR"
DEFAULT_SOAK_FACTOR = 20

#: The tree anchor every scenario serves (central San Francisco, as in the
#: paper's sample region).
_SF_CENTER = (37.77, -122.42)


def soak_factor() -> int:
    """The long-soak multiplier (``SCENARIO_SOAK_FACTOR``, default 20)."""
    try:
        return max(1, int(os.environ.get(SOAK_FACTOR_ENV, DEFAULT_SOAK_FACTOR)))
    except ValueError:
        return DEFAULT_SOAK_FACTOR


@dataclass(frozen=True)
class ScenarioOp:
    """One fault-injection barrier.

    ``at_fraction`` positions the barrier at that fraction of the event
    stream (0.5 = after half the events drained).  ``action`` is one of
    ``drain`` / ``kill`` / ``publish_priors`` / ``invalidate``.
    """

    at_fraction: float
    action: str
    payload: Mapping[str, object] = field(default_factory=dict)

    def validate(self) -> None:
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError(f"at_fraction must be in (0, 1), got {self.at_fraction}")
        if self.action not in ("drain", "kill", "publish_priors", "invalidate"):
            raise ValueError(f"unknown scenario op action {self.action!r}")


@dataclass(frozen=True)
class Scenario:
    """A named, fully declared replay scenario."""

    name: str
    title: str
    description: str
    num_events: int
    fleet: FleetConfig
    arrival: ArrivalConfig
    slos: SLOSpec
    tree_height: int = 2
    shards: int = 1
    concurrency: int = 8
    ops: Tuple[ScenarioOp, ...] = ()
    #: Server-side default ε (km⁻¹); sized to the leaf spacing of the tree.
    epsilon: float = 2.0
    robust_iterations: int = 2
    num_targets: int = 5

    def validate(self) -> None:
        if self.num_events <= 0:
            raise ValueError("num_events must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        self.fleet.validate()
        self.arrival.validate()
        fractions = set()
        for op in self.ops:
            op.validate()
            if op.action in ("drain", "kill") and self.shards < 2:
                raise ValueError(
                    f"op {op.action!r} needs a pool of >= 2 shards (scenario has {self.shards})"
                )
            if op.at_fraction in fractions:
                raise ValueError(f"two ops share at_fraction {op.at_fraction}")
            fractions.add(op.at_fraction)

    def scaled(self, factor: int) -> "Scenario":
        """The long-soak variant: *factor*× the events and fleet size."""
        if factor <= 1:
            return self
        return replace(
            self,
            num_events=self.num_events * factor,
            fleet=replace(self.fleet, num_users=self.fleet.num_users * factor),
        )


#: Shared key space: three zipf-ranked ``(level, δ, ε)`` profiles — the hot
#: non-robust key, the robust δ=1 key, and a per-request ε override.
_KEYS: Tuple[Tuple[int, int, Optional[float]], ...] = ((1, 0, None), (1, 1, None), (1, 0, 2.5))

#: Privacy/utility bounds shared by the whole matrix.  The served matrices
#: are LP-feasible by construction, so the violation bound is a solver
#: tolerance allowance, not a behavioural budget; the recovery bound says
#: the optimal Bayesian attacker may at most double its prior-only top-1
#: hit rate; the utility bound is ~3 leaf pitches of the level-9 lattice.
_BASE_SLOS = dict(
    max_violation_pct=1.0,
    max_recovery_ratio=2.0,
    max_utility_loss_km=3.0,
    max_error_rate=0.0,
    max_latency_p50_s=5.0,
    max_latency_p99_s=60.0,
)


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="flash_crowd",
            title="Hot-spot flash crowd",
            description=(
                "Heavily zipf-skewed keys (exponent 2.5) under bursty arrivals: "
                "one hot key flash-crowds the single-flight coalescing path."
            ),
            num_events=240,
            fleet=FleetConfig(num_users=60, key_profiles=_KEYS, zipf_exponent=2.5, mobility=0.15),
            arrival=ArrivalConfig(process="bursty", rate_per_s=400.0, burst_factor=10.0),
            slos=SLOSpec(**_BASE_SLOS),
            shards=1,
            concurrency=16,
        ),
        Scenario(
            name="shard_drain",
            title="Mid-burst shard drain",
            description=(
                "A two-shard pool gracefully drains shard 0 halfway through the "
                "replay; the warm ring hand-off must keep every request served."
            ),
            num_events=200,
            fleet=FleetConfig(num_users=50, key_profiles=_KEYS, zipf_exponent=1.2, mobility=0.2),
            arrival=ArrivalConfig(process="poisson", rate_per_s=300.0),
            slos=SLOSpec(**_BASE_SLOS),
            shards=2,
            concurrency=12,
            ops=(ScenarioOp(at_fraction=0.5, action="drain", payload={"slot": 0}),),
        ),
        Scenario(
            name="priors_under_load",
            title="Priors update under load",
            description=(
                "A live leaf-priors publish lands mid-replay; post-update "
                "requests must serve matrices rebuilt against the new priors "
                "while the adversary audits both generations."
            ),
            num_events=200,
            fleet=FleetConfig(num_users=50, key_profiles=_KEYS, zipf_exponent=1.2, mobility=0.2),
            arrival=ArrivalConfig(process="poisson", rate_per_s=300.0),
            slos=SLOSpec(**_BASE_SLOS),
            shards=1,
            concurrency=12,
            ops=(ScenarioOp(at_fraction=0.5, action="publish_priors"),),
        ),
        Scenario(
            name="region_failover",
            title="Region failover (SIGKILL a shard mid-replay)",
            description=(
                "A shard worker process is SIGKILLed halfway through the replay "
                "(the region-loss shape); crash detection, in-flight retry on "
                "the ring sibling and respawn must lose no requests."
            ),
            num_events=200,
            fleet=FleetConfig(num_users=50, key_profiles=_KEYS, zipf_exponent=1.2, mobility=0.2),
            arrival=ArrivalConfig(process="poisson", rate_per_s=300.0),
            slos=SLOSpec(**_BASE_SLOS),
            shards=2,
            concurrency=12,
            ops=(ScenarioOp(at_fraction=0.5, action="kill", payload={"slot": 0}),),
        ),
    )
}


# --------------------------------------------------------------------- #
# Environment construction
# --------------------------------------------------------------------- #


@dataclass
class ScenarioEnvironment:
    """The serving stack one scenario runs against (owns its cleanup)."""

    scenario: Scenario
    tree: LocationTree
    dataset: CheckInDataset
    service: CORGIService
    transport: object
    pool: Optional[object] = None
    _closers: Tuple[Callable[[], None], ...] = ()

    def close(self) -> None:
        for closer in self._closers:
            try:
                closer()
            except Exception:  # noqa: BLE001 - best-effort teardown
                logger.warning("scenario environment closer failed", exc_info=True)

    def __enter__(self) -> "ScenarioEnvironment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def build_environment(
    scenario: Scenario, *, seed: int = 0, transport: str = "inprocess"
) -> ScenarioEnvironment:
    """Build the tree, dataset, engine/pool, service and client transport."""
    scenario.validate()
    dataset = GowallaLikeGenerator(
        SyntheticConfig(num_checkins=1_200, num_users=48, num_venues=96),
        seed=seed + 101,
    ).generate()
    tree = tree_for_point(
        LatLng(*_SF_CENTER),
        height=scenario.tree_height,
        root_resolution=9 - scenario.tree_height,
    )
    priors_from_checkins(tree, dataset)
    leaf_centers = [leaf.center.as_tuple() for leaf in tree.leaves()]
    targets = TargetDistribution.sample_from_centers(
        leaf_centers, min(scenario.num_targets, len(leaf_centers)), seed=seed + 1
    )
    server_config = ServerConfig(
        epsilon=scenario.epsilon,
        num_targets=scenario.num_targets,
        robust_iterations=scenario.robust_iterations,
    )
    closers = []
    pool = None
    if scenario.shards > 1:
        from repro.service.pool import EnginePool

        pool = EnginePool(tree, server_config, targets=targets, num_shards=scenario.shards)
        pool.wait_ready()
        closers.append(pool.close)
        engine = pool
    else:
        engine = ForestEngine(tree, server_config, targets=targets)
    service = CORGIService(engine)

    if transport == "inprocess":
        from repro.client.transport import InProcessTransport

        client_transport: object = InProcessTransport(service)
    elif transport == "http":
        from repro.client.transport import HTTPTransport
        from repro.service.http import CORGIHTTPServer

        server = CORGIHTTPServer(service, host="127.0.0.1", port=0).start()
        closers.append(server.shutdown)
        client_transport = HTTPTransport(server.url, timeout_s=120.0)
    elif transport == "gateway":
        from repro.client.gateway import GatewayClient
        from repro.service.gateway import GatewayServer

        gateway = GatewayServer(service, host="127.0.0.1", port=0).start()
        closers.append(gateway.close)
        client = GatewayClient("127.0.0.1", gateway.port)
        closers.append(client.close)
        client_transport = GatewayForestTransport(client)
    else:
        raise ValueError(f"unknown transport {transport!r} (inprocess | http | gateway)")
    return ScenarioEnvironment(
        scenario=scenario,
        tree=tree,
        dataset=dataset,
        service=service,
        transport=client_transport,
        pool=pool,
        _closers=tuple(reversed(closers)),
    )


# --------------------------------------------------------------------- #
# Fault-injection ops
# --------------------------------------------------------------------- #


def _make_op(environment: ScenarioEnvironment, op: ScenarioOp) -> ReplayOp:
    if op.action == "drain":
        slot = int(op.payload.get("slot", 0))

        def do_drain() -> Mapping[str, object]:
            outcome = environment.service.drain(slot)
            return {
                "action": "drain",
                "slot": slot,
                "handoff_keys": int(outcome.get("handoff_keys", 0)),
            }

        return do_drain
    if op.action == "kill":
        slot = int(op.payload.get("slot", 0))

        def do_kill() -> Mapping[str, object]:
            if environment.pool is None:
                raise RuntimeError("kill op requires an EnginePool environment")
            shard = environment.pool._shards[slot]
            process = shard.process
            if process is not None:
                # The pid is deliberately not recorded: op descriptions land
                # in the deterministic counters, and pids vary run to run.
                process.kill()
            return {"action": "kill", "slot": slot, "killed": process is not None}

        return do_kill
    if op.action == "publish_priors":

        def do_publish() -> Mapping[str, object]:
            # Deterministic perturbation: mix every leaf's mass with its
            # tree-order neighbour's — a real redistribution (hot leaves
            # cool, cold leaves warm) with no randomness to leak into the
            # determinism gate.
            leaves = environment.tree.leaves()
            masses = environment.tree.leaf_priors()
            mixed = 0.5 * masses + 0.5 * np.roll(masses, 1) + 1e-6
            payload = {leaf.node_id: float(mass) for leaf, mass in zip(leaves, mixed)}
            flushed = environment.service.publish_priors(payload)
            return {"action": "publish_priors", "flushed": int(flushed)}

        return do_publish
    if op.action == "invalidate":

        def do_invalidate() -> Mapping[str, object]:
            return {"action": "invalidate", "invalidated": int(environment.service.invalidate())}

        return do_invalidate
    raise ValueError(f"unknown scenario op action {op.action!r}")


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #


def resolve_scenario(name_or_scenario) -> Scenario:
    """Accept a scenario name or an already-built :class:`Scenario`."""
    if isinstance(name_or_scenario, Scenario):
        return name_or_scenario
    try:
        return SCENARIOS[str(name_or_scenario)]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name_or_scenario!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None


def run_scenario(
    name_or_scenario,
    *,
    seed: int = 0,
    transport: str = "inprocess",
    soak: bool = False,
    num_events: Optional[int] = None,
    replay_speed: Optional[float] = None,
    on_replayer: Optional[Callable[[TraceReplayer], None]] = None,
) -> ScenarioReport:
    """Run one scenario end to end and return its report.

    Parameters
    ----------
    name_or_scenario:
        A registry name (``flash_crowd`` ...) or a custom :class:`Scenario`.
    seed:
        Replay seed: fixes the dataset, the schedule and every sampled
        report, so two runs with the same seed produce identical
        deterministic counters (``ScenarioReport.deterministic_view``).
    transport:
        ``inprocess`` (default), ``http`` or ``gateway``.
    soak:
        Scale to the nightly long-soak variant (``SCENARIO_SOAK_FACTOR``×
        events and fleet, default 20×).
    num_events:
        Optional override of the scenario's event count (tests use small
        counts; op barriers reposition proportionally).
    on_replayer:
        Hook receiving the :class:`TraceReplayer` before the run starts —
        the live dashboard attaches here.
    """
    scenario = resolve_scenario(name_or_scenario)
    if soak:
        scenario = scenario.scaled(soak_factor())
    if num_events is not None:
        scenario = replace(scenario, num_events=int(num_events))
    scenario.validate()
    with build_environment(scenario, seed=seed, transport=transport) as environment:
        generator = TraceGenerator(
            environment.tree,
            scenario.fleet,
            scenario.arrival,
            seed=seed,
            dataset=environment.dataset,
        )
        schedule = generator.generate(scenario.num_events)
        ops = {
            max(1, int(op.at_fraction * len(schedule))): _make_op(environment, op)
            for op in scenario.ops
        }
        adversary = OnlineAdversary(environment.tree)
        replayer = TraceReplayer(
            environment.transport,
            environment.tree,
            schedule,
            adversary=adversary,
            concurrency=scenario.concurrency,
            ops=ops,
            replay_speed=replay_speed,
        )
        if on_replayer is not None:
            on_replayer(replayer)
        outcome = replayer.run()
        counters = outcome.counters()
        counters["ops"] = outcome.ops_applied
        timing = outcome.timing()
        if environment.pool is not None:
            # Pool supervision counters are wall-clock-shaped (retry counts
            # vary with timing), so they ride in the timing bucket.
            timing["pool"] = dict(environment.pool.pool_stats())
        checks = scenario.slos.evaluate(counters, timing)
        return ScenarioReport(
            scenario=scenario.name,
            seed=int(seed),
            schedule_digest=schedule.digest(),
            counters=counters,
            timing=timing,
            slo_checks=checks,
        )
