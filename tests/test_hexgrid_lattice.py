"""Tests for the axial hexagonal lattice math and cell identifiers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.hexgrid.cell import HexCell, parse_cell_id
from repro.hexgrid.lattice import (
    AXIAL_DIRECTIONS,
    DIAGONAL_DIRECTIONS,
    are_diagonal_neighbors,
    are_neighbors,
    axial_add,
    axial_distance,
    axial_neighbors,
    axial_ring,
    axial_round,
    axial_subtract,
    axial_to_cube,
    axial_to_xy,
    connected,
    cube_to_axial,
    diagonal_neighbors,
    disk,
    extended_neighbors,
    xy_to_axial,
)

axial_coord = st.tuples(st.integers(-50, 50), st.integers(-50, 50))


class TestDirections:
    def test_six_unique_immediate_directions(self):
        assert len(set(AXIAL_DIRECTIONS)) == 6
        for direction in AXIAL_DIRECTIONS:
            assert axial_distance((0, 0), direction) == 1

    def test_six_unique_diagonal_directions(self):
        assert len(set(DIAGONAL_DIRECTIONS)) == 6
        for direction in DIAGONAL_DIRECTIONS:
            assert axial_distance((0, 0), direction) == 2

    def test_diagonal_physical_distance_is_sqrt3(self):
        for direction in DIAGONAL_DIRECTIONS:
            x, y = axial_to_xy(direction, circumradius=1.0)
            assert math.hypot(x, y) == pytest.approx(math.sqrt(3.0) * math.sqrt(3.0), rel=1e-9)

    def test_immediate_physical_distance(self):
        for direction in AXIAL_DIRECTIONS:
            x, y = axial_to_xy(direction, circumradius=1.0)
            assert math.hypot(x, y) == pytest.approx(math.sqrt(3.0), rel=1e-9)


class TestBasicOps:
    def test_add_subtract(self):
        assert axial_add((1, 2), (3, -1)) == (4, 1)
        assert axial_subtract((4, 1), (3, -1)) == (1, 2)

    def test_cube_conversion_roundtrip(self):
        for axial in [(0, 0), (3, -2), (-5, 1)]:
            cube = axial_to_cube(axial)
            assert sum(cube) == 0
            assert cube_to_axial(cube) == axial

    def test_distance_examples(self):
        assert axial_distance((0, 0), (0, 0)) == 0
        assert axial_distance((0, 0), (1, 0)) == 1
        assert axial_distance((0, 0), (1, 1)) == 2
        assert axial_distance((0, 0), (3, -1)) == 3

    @given(axial_coord, axial_coord)
    @settings(max_examples=60, deadline=None)
    def test_distance_symmetric_nonnegative(self, a, b):
        assert axial_distance(a, b) == axial_distance(b, a) >= 0

    @given(axial_coord, axial_coord, axial_coord)
    @settings(max_examples=60, deadline=None)
    def test_distance_triangle_inequality(self, a, b, c):
        assert axial_distance(a, c) <= axial_distance(a, b) + axial_distance(b, c)


class TestRounding:
    def test_exact_coordinates_unchanged(self):
        assert axial_round(2.0, -3.0) == (2, -3)

    def test_rounding_near_center(self):
        assert axial_round(0.1, -0.05) == (0, 0)

    @given(axial_coord)
    @settings(max_examples=60, deadline=None)
    def test_xy_roundtrip(self, axial):
        x, y = axial_to_xy(axial, circumradius=0.7)
        assert xy_to_axial(x, y, circumradius=0.7) == axial

    def test_xy_to_axial_invalid_radius(self):
        with pytest.raises(ValueError):
            xy_to_axial(0.0, 0.0, circumradius=0.0)


class TestNeighbors:
    def test_immediate_neighbors_count(self):
        neighbors = axial_neighbors((2, -1))
        assert len(neighbors) == 6
        assert all(axial_distance((2, -1), n) == 1 for n in neighbors)

    def test_diagonal_neighbors_count(self):
        diagonals = diagonal_neighbors((2, -1))
        assert len(diagonals) == 6
        assert all(axial_distance((2, -1), n) == 2 for n in diagonals)

    def test_extended_neighbors_are_twelve_unique(self):
        extended = extended_neighbors((0, 0))
        assert len(set(extended)) == 12

    def test_are_neighbors(self):
        assert are_neighbors((0, 0), (1, 0))
        assert not are_neighbors((0, 0), (2, 0))

    def test_are_diagonal_neighbors(self):
        assert are_diagonal_neighbors((0, 0), (1, 1))
        assert not are_diagonal_neighbors((0, 0), (1, 0))


class TestRingsAndDisks:
    def test_ring_zero(self):
        assert axial_ring((3, 3), 0) == [(3, 3)]

    def test_ring_sizes(self):
        for radius in (1, 2, 3):
            ring = axial_ring((0, 0), radius)
            assert len(ring) == 6 * radius
            assert all(axial_distance((0, 0), cell) == radius for cell in ring)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            axial_ring((0, 0), -1)
        with pytest.raises(ValueError):
            disk((0, 0), -2)

    def test_disk_sizes(self):
        assert len(disk((0, 0), 0)) == 1
        assert len(disk((0, 0), 1)) == 7
        assert len(disk((0, 0), 2)) == 19
        assert len(disk((5, -3), 3)) == 37

    def test_disk_is_union_of_rings(self):
        cells = set(disk((1, 1), 2))
        rings = set(axial_ring((1, 1), 0)) | set(axial_ring((1, 1), 1)) | set(axial_ring((1, 1), 2))
        assert cells == rings

    def test_connected_disk(self):
        assert connected(disk((0, 0), 2))

    def test_disconnected_set(self):
        assert not connected([(0, 0), (5, 5)])

    def test_empty_set_is_connected(self):
        assert connected([])


class TestHexCell:
    def test_cell_id_roundtrip(self):
        cell = HexCell(7, 12, -3)
        assert parse_cell_id(cell.cell_id) == cell

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            HexCell(-1, 0, 0)
        with pytest.raises(ValueError):
            HexCell(16, 0, 0)

    def test_cube_coordinate(self):
        assert HexCell(3, 2, -5).s == 3

    def test_ordering_and_hashing(self):
        cells = {HexCell(5, 1, 1), HexCell(5, 1, 1), HexCell(5, 2, 0)}
        assert len(cells) == 2
        assert sorted(cells)[0].resolution == 5

    def test_with_axial(self):
        assert HexCell(4, 0, 0).with_axial(3, -1) == HexCell(4, 3, -1)

    def test_parse_rejects_garbage(self):
        for text in ("", "x", "h7:1", "h7:a:b", "7:1:2", "hx:1:2"):
            with pytest.raises(ValueError):
                parse_cell_id(text)

    def test_str_and_repr(self):
        cell = HexCell(2, -1, 4)
        assert str(cell) == "h2:-1:4"
        assert "HexCell" in repr(cell)

    @given(st.integers(0, 15), st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_id_roundtrip_property(self, resolution, q, r):
        cell = HexCell(resolution, q, r)
        assert parse_cell_id(cell.cell_id) == cell
