"""Linear-programming formulation of obfuscation-matrix generation.

The non-robust matrix of Eq. (8) minimises the expected quality loss Δ(Z)
subject to (a) the probability unit measure per row (Eq. 5) and (b) the
ε-Geo-Ind inequality per constrained location pair and matrix column
(Eq. 4).  The robust matrix of Eq. (16) keeps the same objective and
equality constraints but tightens every inequality with the reserved
privacy budget ε'_{i,j} (Eq. 15).  Both are instances of the same LP; the
only difference is the effective ε used per pair, so one builder serves
both, taking an optional reserved-privacy-budget matrix.

The LP is solved through a pluggable :class:`~repro.core.solver.SolverSession`
(scipy ``linprog`` fallback, or the warm-started native HiGHS backend when
:mod:`highspy` is installed — see :mod:`repro.core.solver`).  Constraints are
assembled as sparse matrices: with the graph approximation the problem has
``K²`` variables, ``K`` equality rows and ``~24·K·K`` inequality rows — a few
tens of thousands of rows for the paper's K = 49, well within HiGHS territory.

Constraint assembly is split into a one-time *structural* part and a cheap
per-iteration *coefficient refresh* (:class:`ConstraintStructure`).  The
sparse row/column index pattern, the equality block and the objective
vector depend only on the location set and the constraint pairs; between
the ``t`` solves of Algorithm 1 (and across an ε/δ sweep over the same
location set) only the ``e^{ε_eff·d}`` coefficients change, so the CSC
matrix is built once and its data vector is rewritten in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np
from scipy.sparse import coo_matrix

from repro.core.exceptions import InfeasibleMatrixError
from repro.core.geoind import GeoIndConstraintSet, all_pairs_constraints
from repro.core.matrix import ObfuscationMatrix
from repro.core.objective import QualityLossModel
from repro.core.solver import SolverSession, create_session
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

logger = get_logger(__name__)

#: Effective ε (km⁻¹) is clamped to at least this value so that a reserved
#: budget larger than ε cannot flip the constraint direction.
MIN_EFFECTIVE_EPSILON = 1e-6


class ConstraintStructure:
    """Reusable structural part of the obfuscation-LP constraint system.

    The sparsity pattern of ``A_ub`` (one ``+1`` entry on ``z_{i,k}`` and one
    ``-e^{ε_eff d}`` entry on ``z_{j,k}`` per pair/column), the equality
    block ``A_eq`` and the right-hand sides depend only on ``(K,
    constraint_set)`` — not on ε, δ or the reserved budget.  Building the
    index arrays and the CSC conversion is the dominant cost of a cold
    ``A_ub`` assembly, so this class does it exactly once;
    :meth:`inequality_matrix` then refreshes only the coefficient data in
    place.

    One structure can be shared by every :class:`ObfuscationLP` over the
    same location set — all ``t`` robust iterations of Algorithm 1 and all
    points of an ε/δ sweep.
    """

    def __init__(self, size: int, constraint_set: GeoIndConstraintSet) -> None:
        self.size = int(size)
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.constraint_set = constraint_set
        pairs = constraint_set.pairs
        self.num_pairs = int(pairs.shape[0])
        self.num_inequality_rows = self.num_pairs * self.size
        size = self.size
        with Timer() as timer:
            columns = np.tile(np.arange(size), self.num_pairs)
            row_indices = np.arange(self.num_inequality_rows)
            i_vars = np.repeat(pairs[:, 0], size) * size + columns
            j_vars = np.repeat(pairs[:, 1], size) * size + columns
            rows = np.concatenate([row_indices, row_indices])
            cols = np.concatenate([i_vars, j_vars])
            nnz = rows.shape[0]
            # Build the CSC matrix once with 1-based entry numbers as data so
            # the conversion tells us where each COO entry landed; afterwards
            # only `.data` is rewritten.  (i ≠ j for every pair, so no two
            # entries share a (row, col) slot and the conversion never merges.)
            template = coo_matrix(
                (np.arange(1, nnz + 1, dtype=float), (rows, cols)),
                shape=(self.num_inequality_rows, size * size),
            ).tocsc()
            self._csc_positions = template.data.astype(np.int64) - 1
            self._a_ub = template
            self._coo_rows = rows
            self._coo_cols = cols
            self._ones = np.ones(self.num_inequality_rows)
            self._scratch = np.empty(nnz)
            eq_rows = np.repeat(np.arange(size), size)
            eq_cols = np.arange(size * size)
            self.a_eq = coo_matrix(
                (np.ones(size * size), (eq_rows, eq_cols)), shape=(size, size * size)
            ).tocsr()
            self.b_ub = np.zeros(self.num_inequality_rows)
            self.b_eq = np.ones(size)
        self.build_time_s = timer.elapsed
        self.refresh_count = 0

    def compatible_with(self, size: int, constraint_set: GeoIndConstraintSet) -> bool:
        """Whether this structure was built for the given problem geometry."""
        if size != self.size:
            return False
        if constraint_set is self.constraint_set:
            return True
        return bool(
            constraint_set.pairs.shape == self.constraint_set.pairs.shape
            and np.array_equal(constraint_set.pairs, self.constraint_set.pairs)
        )

    def inequality_matrix(self, factors: np.ndarray):
        """``A_ub`` with the per-pair factors ``e^{ε_eff d}`` written in place.

        The returned CSC matrix is owned by the structure and is overwritten
        by the next refresh; callers that need to retain it must copy.
        """
        factors = np.asarray(factors, dtype=float)
        if factors.shape != (self.num_pairs,):
            raise ValueError(
                f"expected {self.num_pairs} per-pair factors, got shape {factors.shape}"
            )
        scratch = self._scratch
        half = self._ones.shape[0]
        scratch[:half] = self._ones
        np.negative(np.repeat(factors, self.size), out=scratch[half:])
        self._a_ub.data[:] = scratch[self._csc_positions]
        self.refresh_count += 1
        return self._a_ub


@dataclass
class LPSolution:
    """Outcome of one LP solve.

    Attributes
    ----------
    matrix:
        The optimal obfuscation matrix.
    objective_value:
        The minimised expected quality loss Δ(Z), in km.
    status:
        Solver status string (``"optimal"`` on success).
    solve_time_s:
        Wall-clock seconds spent inside the backend's solve call (the
        ``solve`` stage of ``diagnostics["solve_breakdown_s"]``).
    num_variables, num_inequality_constraints, num_equality_constraints:
        Problem dimensions, used by the Fig. 10 experiments.
    """

    matrix: ObfuscationMatrix
    objective_value: float
    status: str
    solve_time_s: float
    num_variables: int
    num_inequality_constraints: int
    num_equality_constraints: int
    diagnostics: Dict[str, object] = field(default_factory=dict)


class ObfuscationLP:
    """Builder/solver for the obfuscation-matrix linear program.

    Parameters
    ----------
    node_ids:
        Identifiers of the K locations, in matrix order.
    distance_matrix_km:
        ``(K, K)`` distances ``d_{i,j}`` used in the Geo-Ind constraints when
        the constraint set does not carry its own distances.
    quality_model:
        Pre-computed quality-loss model providing the LP objective.
    epsilon:
        Privacy budget ε in km⁻¹.
    constraint_set:
        Which ordered pairs to constrain.  Defaults to every ordered pair
        (the O(K³) formulation); pass the result of
        :meth:`repro.core.graphapprox.HexNeighborhoodGraph.constraint_set`
        for the O(K²) graph approximation.
    level:
        Tree level recorded on the produced matrices.
    structure:
        Optional pre-built :class:`ConstraintStructure` to reuse (e.g. one
        structure shared across every point of an ε/δ sweep over the same
        location set).  When omitted, a structure is built lazily on the
        first solve and reused by later solves of this instance.
    solver_backend:
        ``"auto"`` (default), ``"scipy"`` or ``"highs-native"`` — see
        :mod:`repro.core.solver`.  ``auto`` uses the warm-started native
        HiGHS backend when :mod:`highspy` is installed and the solver
        method is simplex-class, falling back to scipy otherwise.
    session:
        Optional pre-built :class:`~repro.core.solver.SolverSession` to
        reuse (e.g. one per worker process, shared with the structure
        across every point of a sweep).  When omitted, a session is
        created lazily on the first solve and reused by later solves of
        this instance — which is what warm-starts Algorithm 1.
    """

    def __init__(
        self,
        node_ids: Sequence[str],
        distance_matrix_km: np.ndarray,
        quality_model: QualityLossModel,
        epsilon: float,
        *,
        constraint_set: Optional[GeoIndConstraintSet] = None,
        level: int = 0,
        structure: Optional[ConstraintStructure] = None,
        solver_backend: str = "auto",
        session: Optional[SolverSession] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.node_ids = [str(node_id) for node_id in node_ids]
        self.size = len(self.node_ids)
        if self.size == 0:
            raise ValueError("node_ids must not be empty")
        self.distance_matrix_km = np.asarray(distance_matrix_km, dtype=float)
        if self.distance_matrix_km.shape != (self.size, self.size):
            raise ValueError(
                f"distance matrix shape {self.distance_matrix_km.shape} does not match {self.size} nodes"
            )
        if quality_model.size != self.size:
            raise ValueError(
                f"quality model covers {quality_model.size} locations but {self.size} node ids were given"
            )
        self.quality_model = quality_model
        self.epsilon = float(epsilon)
        if constraint_set is None and structure is not None:
            constraint_set = structure.constraint_set
        self.constraint_set = constraint_set or all_pairs_constraints(self.distance_matrix_km)
        self.level = level
        self._structure: Optional[ConstraintStructure] = None
        self._structure_shared = False
        if structure is not None:
            if not structure.compatible_with(self.size, self.constraint_set):
                raise ValueError(
                    "shared ConstraintStructure was built for a different location set "
                    f"(size {structure.size}, {structure.num_pairs} pairs)"
                )
            self._structure = structure
            self._structure_shared = True
        self.solver_backend = str(solver_backend)
        self._session: Optional[SolverSession] = session
        self._session_shared = session is not None

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #

    @property
    def num_variables(self) -> int:
        """Number of LP variables (K²)."""
        return self.size * self.size

    @property
    def num_inequality_constraints(self) -> int:
        """Number of Geo-Ind inequality rows (pairs × columns)."""
        return self.constraint_set.num_pairs * self.size

    @property
    def structure(self) -> ConstraintStructure:
        """The (lazily built) structural part of the constraint system."""
        if self._structure is None:
            self._structure = ConstraintStructure(self.size, self.constraint_set)
        return self._structure

    def session(self, solver_method: str = "highs") -> SolverSession:
        """The (lazily built) solver session carrying warm state across solves."""
        if self._session is None:
            self._session = create_session(self.solver_backend, solver_method=solver_method)
        return self._session

    def effective_epsilons(self, reserved_budget: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-pair effective ε after subtracting the reserved budget ε'_{i,j}.

        Values are clamped to :data:`MIN_EFFECTIVE_EPSILON`; clamping is
        logged because it signals that δ is too aggressive for the requested
        ε (Section 5.3's infeasible-customization discussion).
        """
        pairs = self.constraint_set.pairs
        epsilons = np.full(pairs.shape[0], self.epsilon)
        if reserved_budget is not None:
            budget = np.asarray(reserved_budget, dtype=float)
            if budget.shape != (self.size, self.size):
                raise ValueError(
                    f"reserved budget must have shape {(self.size, self.size)}, got {budget.shape}"
                )
            epsilons = self.epsilon - budget[pairs[:, 0], pairs[:, 1]]
        clamped = np.maximum(epsilons, MIN_EFFECTIVE_EPSILON)
        num_clamped = int((epsilons < MIN_EFFECTIVE_EPSILON).sum())
        if num_clamped:
            logger.warning(
                "%d of %d pair budgets exceeded epsilon and were clamped; "
                "consider a smaller delta or a larger epsilon",
                num_clamped,
                epsilons.shape[0],
            )
        return clamped

    def build_inequalities(self, reserved_budget: Optional[np.ndarray] = None):
        """Sparse ``A_ub`` for ``z_{i,k} - e^{ε_eff d_{i,j}} z_{j,k} <= 0``.

        Row ``t = p * size + k`` corresponds to pair ``p``, column ``k``.  The
        index pattern comes from the cached :attr:`structure`; only the
        ``e^{ε_eff d}`` coefficients are recomputed.  The returned CSC matrix
        is shared with the structure and overwritten by the next call.
        """
        distances = self.constraint_set.distances_km
        factors = np.exp(self.effective_epsilons(reserved_budget) * distances)
        return self.structure.inequality_matrix(factors)

    def build_equalities(self):
        """Sparse ``A_eq`` for the row-stochasticity constraints (Eq. 5)."""
        return self.structure.a_eq

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(
        self,
        reserved_budget: Optional[np.ndarray] = None,
        *,
        delta: int = 0,
        solver_method: str = "highs",
    ) -> LPSolution:
        """Solve the LP and return the optimal obfuscation matrix.

        Parameters
        ----------
        reserved_budget:
            Optional ``(K, K)`` reserved-privacy-budget matrix ε'_{i,j}
            (Eq. 14).  ``None`` solves the plain non-robust problem of
            Eq. (8).
        delta:
            Recorded on the produced matrix (provenance only).
        solver_method:
            scipy ``linprog`` method, used verbatim by the scipy backend
            and ignored by the native backend (which always runs dual
            simplex — the warm-startable algorithm).

        Raises
        ------
        InfeasibleMatrixError
            If the solver reports infeasibility or fails to converge, or if
            it returns a degenerate all-zero probability row (which would
            turn into NaNs under row normalization).
        """
        objective = self.quality_model.objective_vector()
        structure = self.structure
        structure_was_fresh = structure.refresh_count == 0
        session = self.session(solver_method)
        with Timer() as refresh_timer:
            a_ub = self.build_inequalities(reserved_budget)
        raw = session.solve(
            objective,
            a_ub,
            structure.b_ub,
            structure.a_eq,
            structure.b_eq,
            bounds=(0.0, 1.0),
            solver_method=solver_method,
        )
        if not raw.ok:
            raise InfeasibleMatrixError(
                f"LP solve failed with status {raw.status}: {raw.message}",
                solver_status=raw.status,
            )
        with Timer() as extract_timer:
            values = np.asarray(raw.x, dtype=float).reshape(self.size, self.size)
            # Clean up tiny numerical noise so downstream validation is strict.
            values = np.clip(values, 0.0, None)
            row_sums = values.sum(axis=1, keepdims=True)
            zero_rows = np.flatnonzero(row_sums[:, 0] <= 0.0)
            if zero_rows.size:
                raise InfeasibleMatrixError(
                    f"solver returned an all-zero probability row after clipping "
                    f"(row {int(zero_rows[0])} of {self.size}; {zero_rows.size} such "
                    "rows); refusing to normalize into a NaN matrix",
                    solver_status=raw.status,
                )
            values = values / row_sums
        matrix = ObfuscationMatrix(
            values=values,
            node_ids=self.node_ids,
            level=self.level,
            epsilon=self.epsilon,
            delta=delta,
            metadata={
                "objective_value": float(raw.objective_value),
                "constraint_description": self.constraint_set.description,
                "robust": reserved_budget is not None,
            },
        )
        breakdown = dict(raw.timings_s)
        breakdown["refresh"] = refresh_timer.elapsed
        breakdown["extract"] = breakdown.get("extract", 0.0) + extract_timer.elapsed
        return LPSolution(
            matrix=matrix,
            objective_value=float(raw.objective_value),
            status="optimal",
            solve_time_s=breakdown["solve"],
            num_variables=self.num_variables,
            num_inequality_constraints=a_ub.shape[0],
            num_equality_constraints=self.size,
            diagnostics={
                "solver_backend": session.backend,
                "solver_status": raw.status,
                "scipy_status": _int_or_none(raw.status),
                "iterations": raw.iterations,
                "warm_start": raw.warm,
                "basis_reused": raw.basis_reused,
                "cold_retry": raw.cold_retry,
                "solve_breakdown_s": breakdown,
                "matrix_build_time_s": refresh_timer.elapsed,
                "structure_build_time_s": structure.build_time_s,
                "structure_refresh_count": structure.refresh_count,
                "structure_reused": not structure_was_fresh,
                "structure_shared": self._structure_shared,
                "session_shared": self._session_shared,
            },
        )

    def solve_nonrobust(self, *, solver_method: str = "highs") -> LPSolution:
        """Solve the plain Eq. (8) problem (the paper's non-robust baseline)."""
        return self.solve(reserved_budget=None, delta=0, solver_method=solver_method)


def _int_or_none(status: str) -> Optional[int]:
    """Numeric scipy status when the backend reports one (kept for dashboards)."""
    try:
        return int(status)
    except (TypeError, ValueError):
        return None
