"""CI bench-regression gate: exit codes, step-summary table, tamper detection.

Runs ``benchmarks/ci_gate.py`` the way the workflow does — as a subprocess
with ``$GITHUB_STEP_SUMMARY`` pointing at a file — and asserts the three
contracts the scenario-matrix acceptance criteria pin down:

* a clean fresh/baseline pair gates green and writes the full per-metric
  markdown table to the step summary;
* deleting the ``replication`` section from fresh ``BENCH_service.json``
  (a benchmark section silently disappearing) exits non-zero;
* an injected p50 regression beyond threshold + slack exits non-zero and
  shows up as a ❌ REGRESSION row.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GATE_SCRIPT = REPO_ROOT / "benchmarks" / "ci_gate.py"
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"


def run_gate(tmp_path, fresh_dir):
    """Run ci_gate.py against ``fresh_dir`` with a step-summary sink."""
    summary_path = tmp_path / "step_summary.md"
    summary_path.write_text("", encoding="utf-8")
    completed = subprocess.run(
        [sys.executable, str(GATE_SCRIPT), "--fresh-dir", str(fresh_dir)],
        capture_output=True,
        text=True,
        timeout=60,
        env={"GITHUB_STEP_SUMMARY": str(summary_path), "PATH": "/usr/bin:/bin"},
    )
    return completed, summary_path.read_text(encoding="utf-8")


def make_fresh_dir(tmp_path) -> Path:
    """A fresh-results dir that is byte-identical to the committed baselines."""
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    for name in ("BENCH_service.json", "BENCH_pipeline.json"):
        shutil.copy(BASELINE_DIR / name, fresh_dir / name)
    return fresh_dir


def test_clean_run_gates_green_and_writes_summary_table(tmp_path):
    completed, summary = run_gate(tmp_path, make_fresh_dir(tmp_path))
    assert completed.returncode == 0, completed.stderr
    assert "all gated metrics within threshold" in completed.stdout
    # The step summary carries the per-metric markdown table.
    assert "## Bench regression gate — ✅ passed" in summary
    assert "| file | metric | baseline (s) | fresh (s) | ratio | verdict |" in summary
    assert "`replication.propagation_s.p50`" in summary
    assert "`gateway.push_latency_s.p50`" in summary
    assert "1.00x | ✅ ok" in summary
    assert "❌" not in summary


def test_deleting_replication_section_fails_the_gate(tmp_path):
    """Acceptance criterion: a vanished benchmark section exits non-zero."""
    fresh_dir = make_fresh_dir(tmp_path)
    service_path = fresh_dir / "BENCH_service.json"
    document = json.loads(service_path.read_text(encoding="utf-8"))
    del document["replication"]
    service_path.write_text(json.dumps(document), encoding="utf-8")

    completed, summary = run_gate(tmp_path, fresh_dir)
    assert completed.returncode == 1
    assert "replication.propagation_s.p50 missing from fresh results" in completed.stderr
    assert "## Bench regression gate — ❌ FAILED" in summary
    assert "❌ MISSING" in summary
    assert "### Failures" in summary


def test_injected_regression_fails_with_table_row(tmp_path):
    fresh_dir = make_fresh_dir(tmp_path)
    service_path = fresh_dir / "BENCH_service.json"
    document = json.loads(service_path.read_text(encoding="utf-8"))
    # 10x the replication p50 and push it past the 50 ms absolute slack.
    document["replication"]["propagation_s"]["p50"] = (
        document["replication"]["propagation_s"]["p50"] * 10.0 + 0.1
    )
    service_path.write_text(json.dumps(document), encoding="utf-8")

    completed, summary = run_gate(tmp_path, fresh_dir)
    assert completed.returncode == 1
    assert "replication.propagation_s.p50 regressed" in completed.stderr
    assert "❌ REGRESSION" in summary


def test_missing_fresh_file_fails_and_marks_every_metric(tmp_path):
    fresh_dir = make_fresh_dir(tmp_path)
    (fresh_dir / "BENCH_pipeline.json").unlink()
    completed, summary = run_gate(tmp_path, fresh_dir)
    assert completed.returncode == 1
    assert "fresh results missing" in completed.stderr
    assert "`forest_generation_s.cold`" in summary
    assert summary.count("❌ MISSING") == 5  # every BENCH_pipeline gate


def test_no_summary_env_still_gates(tmp_path):
    """Without $GITHUB_STEP_SUMMARY (local runs) the gate works unchanged."""
    completed = subprocess.run(
        [sys.executable, str(GATE_SCRIPT), "--fresh-dir", str(make_fresh_dir(tmp_path))],
        capture_output=True,
        text=True,
        timeout=60,
        env={"PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
