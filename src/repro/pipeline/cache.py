"""Content-addressed cache for generated obfuscation matrices.

The cache is keyed by the canonical problem fingerprints of
:mod:`repro.pipeline.fingerprint`, so two requests hit the same entry iff
every result-affecting input (geometry, ε, δ, weighting, basis row,
quality model, iteration count, solver) is identical — the fix for the
stale-forest bug the old ``(privacy_level, delta, epsilon)`` key had.

Eviction is LRU with a configurable entry bound; statistics (hits, misses,
evictions) are kept so the server and the perf harness can report cache
effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache, in [0, 1]."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class MatrixCache:
    """LRU cache mapping problem fingerprints to generation results.

    Parameters
    ----------
    max_entries:
        Maximum number of entries kept; the least recently used entry is
        evicted when the bound is exceeded.  ``0`` disables storage (every
        lookup misses), which is how ``ServerConfig`` switches caching off
        without a second code path.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: str, default: Optional[T] = None) -> Optional[T]:
        """Look up *key*, counting a hit or miss and refreshing recency."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: str, value: object) -> None:
        """Store *value* under *key*, evicting the LRU entry if over bound."""
        if self.max_entries == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: str, factory: Callable[[], T]) -> T:
        """Return the cached value for *key*, computing and storing it on miss."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value  # type: ignore[return-value]
        self.stats.misses += 1
        computed = factory()
        self.put(key, computed)
        return computed

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(self._entries.items())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.stats = CacheStats()
