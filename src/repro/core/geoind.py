"""ε-Geo-Indistinguishability constraints and violation checking.

Definition 2.1 of the paper states Geo-Ind in terms of posteriors and
priors; by Bayes' rule the prior terms cancel and the condition on the
obfuscation matrix itself is the classic mechanism-side form

    z_{i,k}  <=  exp(ε * d_{i,j}) * z_{j,k}        for all i, j, k,

which is what Eq. (4) enforces and what this module checks.  Two constraint
sets are provided:

* :func:`all_pairs_constraints` — every ordered pair of distinct locations
  (the original O(K³) formulation once the K columns are counted);
* :func:`neighbor_constraints` — only pairs adjacent in the 12-neighbour
  graph approximation of Section 4.2, which by Theorem 4.1 is sufficient
  (and reduces the constraint count to O(K²)).

:func:`check_geo_ind` is the violation counter behind Fig. 12 and the
headline "14.28 % pruned → 3.07 % violations" numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix import ObfuscationMatrix

#: Tolerances used when deciding whether a constraint is violated.  They sit
#: comfortably above the LP solver's feasibility tolerance (~1e-7) so that a
#: freshly solved matrix never reports spurious violations, yet far below the
#: violation magnitudes produced by actual pruning (which are O(z) itself).
DEFAULT_VIOLATION_RTOL = 1e-6
DEFAULT_VIOLATION_ATOL = 1e-6


@dataclass
class GeoIndConstraintSet:
    """A set of ordered location pairs whose Geo-Ind constraints are enforced.

    Attributes
    ----------
    pairs:
        Array of shape ``(P, 2)`` with ordered index pairs ``(i, j)``.
    distances_km:
        Distance ``d_{i,j}`` used in each pair's constraint; shape ``(P,)``.
        For the graph approximation these are the graph shortest-path
        distances, which by Lemma 4.1 never exceed the Euclidean distances.
    description:
        Human-readable provenance ("all-pairs", "12-neighbour graph", ...).
    """

    pairs: np.ndarray
    distances_km: np.ndarray
    description: str = "custom"

    def __post_init__(self) -> None:
        self.pairs = np.asarray(self.pairs, dtype=int)
        self.distances_km = np.asarray(self.distances_km, dtype=float)
        if self.pairs.ndim != 2 or self.pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (P, 2), got {self.pairs.shape}")
        if self.distances_km.shape != (self.pairs.shape[0],):
            raise ValueError("distances_km must have one entry per pair")
        if np.any(self.distances_km < 0):
            raise ValueError("distances must be non-negative")

    @property
    def num_pairs(self) -> int:
        """Number of ordered pairs."""
        return int(self.pairs.shape[0])

    def num_constraints(self, num_locations: int) -> int:
        """Total number of scalar Geo-Ind constraints (pairs × columns)."""
        return self.num_pairs * int(num_locations)

    def __iter__(self):
        for (i, j), distance in zip(self.pairs, self.distances_km):
            yield int(i), int(j), float(distance)


def all_pairs_constraints(distance_matrix: np.ndarray) -> GeoIndConstraintSet:
    """Constraint set over every ordered pair of distinct locations.

    Parameters
    ----------
    distance_matrix:
        Symmetric ``(K, K)`` matrix of distances ``d_{i,j}`` in km.
    """
    distances = np.asarray(distance_matrix, dtype=float)
    size = distances.shape[0]
    if distances.shape != (size, size):
        raise ValueError(f"distance_matrix must be square, got {distances.shape}")
    rows, cols = np.where(~np.eye(size, dtype=bool))
    pairs = np.stack([rows, cols], axis=1)
    return GeoIndConstraintSet(
        pairs=pairs,
        distances_km=distances[rows, cols],
        description="all-pairs",
    )


def neighbor_constraints(
    pairs: Sequence[Tuple[int, int]],
    distances_km: Sequence[float],
    *,
    description: str = "12-neighbour graph",
) -> GeoIndConstraintSet:
    """Constraint set restricted to (ordered) neighbouring pairs.

    The caller (normally :class:`repro.core.graphapprox.HexNeighborhoodGraph`)
    supplies the pairs and the distances to use; both orientations of every
    undirected edge must be present for the transitivity argument of
    Theorem 4.1 to apply.
    """
    return GeoIndConstraintSet(
        pairs=np.asarray(list(pairs), dtype=int),
        distances_km=np.asarray(list(distances_km), dtype=float),
        description=description,
    )


def count_constraints(num_locations: int, constraint_set: GeoIndConstraintSet) -> int:
    """Convenience wrapper mirroring Fig. 10(b): pairs × columns."""
    return constraint_set.num_constraints(num_locations)


@dataclass
class GeoIndViolationReport:
    """Outcome of checking a matrix against a constraint set.

    Attributes
    ----------
    total_constraints:
        Number of scalar constraints checked (pairs × columns).
    violated_constraints:
        Number of constraints where ``z_{i,k} > e^{ε d_{i,j}} z_{j,k}`` beyond
        tolerance.
    max_excess:
        Largest violation magnitude ``z_{i,k} - e^{ε d_{i,j}} z_{j,k}`` found
        (0 when there is no violation).
    violated_pairs:
        Ordered pairs ``(i, j)`` with at least one violated column (indices
        into the matrix checked).
    """

    total_constraints: int
    violated_constraints: int
    max_excess: float
    violated_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def violation_fraction(self) -> float:
        """Fraction of violated constraints in [0, 1]."""
        if self.total_constraints == 0:
            return 0.0
        return self.violated_constraints / self.total_constraints

    @property
    def violation_percentage(self) -> float:
        """Percentage of violated constraints (the y-axis of Fig. 12)."""
        return 100.0 * self.violation_fraction

    @property
    def satisfied(self) -> bool:
        """Whether the matrix satisfies every constraint."""
        return self.violated_constraints == 0


def check_geo_ind(
    matrix: ObfuscationMatrix | np.ndarray,
    distance_matrix: np.ndarray,
    epsilon: float,
    *,
    constraint_set: Optional[GeoIndConstraintSet] = None,
    rtol: float = DEFAULT_VIOLATION_RTOL,
    atol: float = DEFAULT_VIOLATION_ATOL,
) -> GeoIndViolationReport:
    """Count violated ε-Geo-Ind constraints of a (possibly customized) matrix.

    Parameters
    ----------
    matrix:
        Obfuscation matrix (or raw array) of shape ``(K, K)``.
    distance_matrix:
        Distances ``d_{i,j}`` in km between the K locations, same order as
        the matrix rows.
    epsilon:
        Privacy budget ε in km⁻¹.
    constraint_set:
        Pairs to check; defaults to all ordered pairs (the definition).
    rtol, atol:
        Violation tolerance: a constraint counts as violated when
        ``z_{i,k} - e^{ε d} z_{j,k} > atol + rtol * e^{ε d} z_{j,k}``.

    Returns
    -------
    GeoIndViolationReport
    """
    values = matrix.values if isinstance(matrix, ObfuscationMatrix) else np.asarray(matrix, dtype=float)
    distances = np.asarray(distance_matrix, dtype=float)
    size = values.shape[0]
    if values.shape != (size, size):
        raise ValueError(f"matrix must be square, got shape {values.shape}")
    if distances.shape != (size, size):
        raise ValueError(
            f"distance_matrix shape {distances.shape} does not match matrix size {size}"
        )
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if constraint_set is None:
        constraint_set = all_pairs_constraints(distances)
    rows = constraint_set.pairs[:, 0]
    cols = constraint_set.pairs[:, 1]
    # factors has shape (P, 1); broadcasting against (P, K) row slices below.
    factors = np.exp(epsilon * constraint_set.distances_km)[:, None]
    lhs = values[rows, :]
    rhs = factors * values[cols, :]
    excess = lhs - rhs
    tolerance = atol + rtol * np.abs(rhs)
    violated_mask = excess > tolerance
    violated_constraints = int(violated_mask.sum())
    max_excess = float(excess[violated_mask].max()) if violated_constraints else 0.0
    violated_pair_indices = np.where(violated_mask.any(axis=1))[0]
    violated_pairs = [
        (int(rows[index]), int(cols[index])) for index in violated_pair_indices
    ]
    return GeoIndViolationReport(
        total_constraints=constraint_set.num_constraints(size),
        violated_constraints=violated_constraints,
        max_excess=max_excess,
        violated_pairs=violated_pairs,
    )


def satisfies_geo_ind(
    matrix: ObfuscationMatrix | np.ndarray,
    distance_matrix: np.ndarray,
    epsilon: float,
    *,
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> bool:
    """Boolean convenience wrapper around :func:`check_geo_ind` (all pairs)."""
    report = check_geo_ind(matrix, distance_matrix, epsilon, rtol=rtol, atol=atol)
    return report.satisfied


def epsilon_lower_bound(
    matrix: ObfuscationMatrix | np.ndarray,
    distance_matrix: np.ndarray,
) -> float:
    """Smallest ε for which the matrix satisfies ε-Geo-Ind on all pairs.

    Computed as ``max over i,j,k of ln(z_{i,k} / z_{j,k}) / d_{i,j}`` over
    entries where both probabilities are positive; returns ``inf`` when some
    pair has ``z_{i,k} > 0`` while ``z_{j,k} = 0`` (no finite ε works).
    """
    values = matrix.values if isinstance(matrix, ObfuscationMatrix) else np.asarray(matrix, dtype=float)
    distances = np.asarray(distance_matrix, dtype=float)
    size = values.shape[0]
    worst = 0.0
    for i in range(size):
        for j in range(size):
            if i == j or distances[i, j] <= 0:
                continue
            zi = values[i]
            zj = values[j]
            positive_i = zi > 0
            if np.any(positive_i & (zj <= 0)):
                return float("inf")
            mask = positive_i & (zj > 0)
            if not np.any(mask):
                continue
            ratio = np.max(np.log(zi[mask] / zj[mask])) / distances[i, j]
            worst = max(worst, float(ratio))
    return worst
