"""CORGI client: generate an obfuscated location from a policy (Algorithm 4).

The client-side pipeline is:

1. find the sub-tree ``T_i`` rooted at the policy's privacy level containing
   the user's real location;
2. evaluate the user preferences over that sub-tree's leaves to obtain the
   prune set ``S`` (the user's private attributes and the distance to the
   real location are available only here);
3. send ``(privacy level, |S|)`` to the server and receive the privacy
   forest;
4. select the matrix of the user's sub-tree, prune ``S`` from it, reduce it
   to the policy's precision level;
5. sample the obfuscated location from the row of the real location's
   ancestor at the precision level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.client.transport import as_forest_provider
from repro.core.matrix import ObfuscationMatrix
from repro.core.precision import ancestor_row_for, precision_reduction
from repro.core.pruning import prune_matrix
from repro.datasets.checkin import CheckInDataset
from repro.geometry.haversine import LatLng
from repro.policy.attributes import LocationAttributeExtractor
from repro.policy.evaluation import DeltaOverflowStrategy, PreferenceEvaluation, evaluate_preferences
from repro.policy.policy import Policy
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, as_rng

logger = get_logger(__name__)


@dataclass
class ObfuscationOutcome:
    """Everything the client produced while obfuscating one location report.

    Attributes
    ----------
    reported_node_id:
        Id of the node reported to the application (at the policy's
        precision level).
    reported_center:
        Geographic centre of the reported node — what an application
        actually receives.
    real_leaf_id:
        Leaf containing the real location (never leaves the device; kept
        here for analysis and tests).
    subtree_root_id:
        Root of the sub-tree used as the obfuscation range.
    pruned_ids:
        Locations removed during customization.
    evaluation:
        Full preference-evaluation result (which predicates each pruned
        location failed, overflow handling, ...).
    precision_level:
        Level the reported node lives at.
    matrix / customized_matrix:
        The server matrix for the sub-tree and the matrix actually sampled
        from after pruning + precision reduction.
    """

    reported_node_id: str
    reported_center: LatLng
    real_leaf_id: str
    subtree_root_id: str
    pruned_ids: List[str]
    evaluation: PreferenceEvaluation
    precision_level: int
    matrix: ObfuscationMatrix
    customized_matrix: ObfuscationMatrix
    metadata: Dict[str, object] = field(default_factory=dict)


class CORGIClient:
    """User-side orchestration of the CORGI pipeline.

    Parameters
    ----------
    tree:
        The shared location tree (steps 2-3 of Figure 1: the server
        publishes it, the user uses it to express preferences).
    server:
        Where privacy forests come from: a
        :class:`~repro.server.server.CORGIServer`, a
        :class:`~repro.server.engine.ForestEngine`, a coalescing
        :class:`~repro.service.service.CORGIService`, a client transport
        (:class:`~repro.client.transport.InProcessTransport` /
        :class:`~repro.client.transport.HTTPTransport`), or any object with
        a compatible ``generate_privacy_forest``.  Transports are adapted
        via :func:`~repro.client.transport.as_forest_provider`, so the
        client pipeline is identical in-process and over the wire.
    user_id / history:
        Optional identity and check-in history of the user; when provided,
        per-user attributes (home / office / outlier) are derived locally so
        preferences may refer to them.
    overflow_strategy:
        What to do when the preferences require pruning more than δ
        locations (Section 5.3).
    """

    def __init__(
        self,
        tree: LocationTree,
        server: object,
        *,
        user_id: Optional[str] = None,
        history: Optional[CheckInDataset] = None,
        overflow_strategy: DeltaOverflowStrategy = DeltaOverflowStrategy.FAVOR_PREFERENCES,
    ) -> None:
        self.tree = tree
        self.server = as_forest_provider(server)
        self.user_id = user_id
        self.history = history
        self.overflow_strategy = overflow_strategy
        self._user_attributes: Optional[Dict[str, Dict[str, object]]] = None

    # ------------------------------------------------------------------ #
    # Private attribute handling
    # ------------------------------------------------------------------ #

    def user_attributes(self) -> Optional[Mapping[str, Mapping[str, object]]]:
        """Per-leaf private attributes of the user (computed lazily, cached)."""
        if self.history is None or self.user_id is None:
            return None
        if self._user_attributes is None:
            extractor = LocationAttributeExtractor(self.tree, self.history)
            self._user_attributes = extractor.user_profile(self.user_id)
        return self._user_attributes

    # ------------------------------------------------------------------ #
    # Algorithm 4
    # ------------------------------------------------------------------ #

    def obfuscate(
        self,
        lat: float,
        lng: float,
        policy: Policy,
        *,
        seed: RandomState = None,
        epsilon: Optional[float] = None,
    ) -> ObfuscationOutcome:
        """Produce an obfuscated location report for the real position ``(lat, lng)``.

        Raises
        ------
        KeyError
            If the real location is outside the tree's area of interest.
        repro.policy.evaluation.DeltaOverflowError
            In strict overflow mode, when the preferences require pruning
            more locations than the policy's δ allows.
        """
        rng = as_rng(seed)
        real_leaf = self.tree.leaf_for_latlng(lat, lng)
        subtree_root = self.tree.ancestor_at_level(real_leaf.node_id, policy.privacy_level)

        # Step 2-3: evaluate preferences locally to find the prune set S.
        evaluation = evaluate_preferences(
            self.tree,
            subtree_root.node_id,
            policy,
            user_attributes=self.user_attributes(),
            real_location=(lat, lng),
            delta=policy.delta,
            overflow_strategy=self.overflow_strategy,
            protect_leaf_id=real_leaf.node_id,
        )
        delta = policy.delta if policy.delta is not None else evaluation.num_pruned

        # Step 4-5: ask the server for the privacy forest and pick our sub-tree.
        forest = self.server.generate_privacy_forest(
            policy.privacy_level, delta, epsilon=epsilon
        )
        matrix = forest.matrix_for_subtree(subtree_root.node_id)

        # Step 6: matrix pruning.
        customized = prune_matrix(matrix, evaluation.prune_ids)

        # Step 7: precision reduction to the requested granularity.
        if policy.precision_level > 0:
            customized = precision_reduction(customized, self.tree, policy.precision_level)

        # Step 8: sample from the row of the real location's ancestor.
        row_id = (
            ancestor_row_for(self.tree, customized, real_leaf.node_id)
            if policy.precision_level > 0
            else real_leaf.node_id
        )
        reported_id = customized.sample(row_id, seed=rng)
        reported_center = self.tree.node(reported_id).center

        logger.debug(
            "obfuscated (%.5f, %.5f) -> %s (pruned %d, precision level %d)",
            lat,
            lng,
            reported_id,
            len(evaluation.prune_ids),
            policy.precision_level,
        )
        return ObfuscationOutcome(
            reported_node_id=reported_id,
            reported_center=reported_center,
            real_leaf_id=real_leaf.node_id,
            subtree_root_id=subtree_root.node_id,
            pruned_ids=list(evaluation.prune_ids),
            evaluation=evaluation,
            precision_level=policy.precision_level,
            matrix=matrix,
            customized_matrix=customized,
            metadata={
                "delta": delta,
                "epsilon": forest.epsilon,
                "privacy_level": policy.privacy_level,
            },
        )

    def report_latlng(
        self,
        lat: float,
        lng: float,
        policy: Policy,
        *,
        seed: RandomState = None,
    ) -> Tuple[float, float]:
        """Convenience wrapper returning only the reported coordinates."""
        outcome = self.obfuscate(lat, lng, policy, seed=seed)
        return outcome.reported_center.as_tuple()
