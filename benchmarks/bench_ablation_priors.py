"""Ablation — empirical check-in priors vs uniform priors.

The paper estimates leaf priors from Gowalla check-in counts (Section 6.1).
This ablation quantifies what the prior buys: the LP weights the quality
loss by the prior, so an informative prior concentrates utility where users
actually are, and the Bayesian adversary's baseline knowledge changes.
"""

import numpy as np

from repro.attacks.bayesian import BayesianAttacker
from repro.core.lp import ObfuscationLP
from repro.core.objective import QualityLossModel


def test_ablation_priors(benchmark, config, workload):
    location_set = workload.subtree_location_set()
    uniform_priors = np.full(location_set.size, 1.0 / location_set.size)
    epsilon = config.epsilon

    def run():
        results = {}
        for label, priors in (("empirical", location_set.priors), ("uniform", uniform_priors)):
            model = QualityLossModel(location_set.centers, workload.targets, priors)
            solution = ObfuscationLP(
                location_set.node_ids,
                location_set.distance_matrix_km,
                model,
                epsilon,
                constraint_set=location_set.constraint_set,
            ).solve_nonrobust()
            attacker = BayesianAttacker(solution.matrix, priors, location_set.distance_matrix_km)
            results[label] = {
                "expected_loss_km": solution.objective_value,
                "attacker_error_km": attacker.expected_inference_error_km(),
                "recovery_rate": attacker.recovery_rate(),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nprior ablation (49-location range):")
    for label, values in results.items():
        print(f"  {label:10s} -> { {k: round(v, 5) for k, v in values.items()} }")

    for values in results.values():
        assert values["expected_loss_km"] >= 0
        assert 0 <= values["recovery_rate"] <= 1
