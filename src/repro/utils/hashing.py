"""Canonical content hashing shared by the quality model and the pipeline.

One rule for hashing numpy arrays (dtype + shape + raw bytes, SHA-256)
lives here so the quality-model digest and the pipeline fingerprints can
never drift apart; :data:`repro.pipeline.fingerprint.FINGERPRINT_VERSION`
versions the composite encodings built on top.
"""

from __future__ import annotations

import hashlib

import numpy as np


def array_digest(*arrays: np.ndarray) -> str:
    """SHA-256 of the dtype, shape and raw bytes of one or more arrays."""
    hasher = hashlib.sha256()
    for array in arrays:
        data = np.ascontiguousarray(array)
        hasher.update(str(data.dtype).encode())
        hasher.update(str(data.shape).encode())
        hasher.update(data.tobytes())
    return hasher.hexdigest()
