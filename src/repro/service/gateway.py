"""Async push gateway: one held connection per client, refreshes are pushed.

The thread-per-request HTTP transport answers exactly one forest per
exchange, so after every ``/admin/invalidate`` or ``/admin/priors`` each
mobile client re-polls for a fresh obfuscation matrix — at millions of
users that is a reconnect storm per configuration change.  The gateway
inverts the flow, following the store-and-forward delivery model of the
MSMQ multi-branch synchronization design (PAPERS.md): a client holds
**one** long-lived connection, subscribes to the ``(privacy_level, δ, ε)``
keys it cares about, and the server *pushes* refreshed matrices when the
admin surface fires — queued per connection, tagged with a generation so a
client can never install a matrix older than the one it holds.

Layering (the sync HTTP transport stays a thin adapter over the same
core)::

    held TCP connections (asyncio)          POST /forest (ThreadingHTTPServer)
              │                                       │
              ▼                                       │
        GatewayServer  ── subscriptions,              │
              │           generations, queues         │
              ▼                                       ▼
      AsyncCORGIService ── async single-flight ──► CORGIService (sync core)
              │   (ticket rendezvous, as in the shard layer)
              ▼
        bounded ThreadPoolExecutor ──► engine builds (blocking)

* **Wire protocol** — newline-delimited JSON frames (one object per line),
  strict both ways: :func:`decode_gateway_frame` raises
  :class:`GatewayProtocolError` on garbage, and a malformed client frame is
  *answered* with an ``error`` frame (and counted), never a server death —
  the property suite in ``tests/test_wire_properties.py`` fuzzes this.
* **Async single-flight** — :class:`AsyncCORGIService` reuses the ticket
  rendezvous idiom of the shard layer: one leader awaits the blocking
  build in a bounded executor, followers await its event with the same
  config-derived deadline (:class:`ServiceBuildTimeoutError`, never a
  hang) and re-raise per-follower wrapped copies of a leader error.
* **Subscription registry** — per-connection bounded frame queues; a
  consumer that stops reading fills its queue and is *evicted* (counted as
  ``gateway_evicted_slow``) instead of growing server memory; idle
  connections get heartbeat frames so NATs stay open and dead peers
  surface as queue growth.
* **Generation tags** — every subscribed key carries a monotonic
  generation, bumped per invalidate/priors event.  Refresh pushes are
  coalesced per key (a storm of invalidations converges to one rebuild +
  one push of the final generation) and a rebuild that raced an update is
  re-run, so no subscriber is pushed a stale generation.

Counters flow into :class:`~repro.service.metrics.ServiceMetrics` (the
``gateway_*`` family) and connection/subscription gauges into
``GET /admin/diagnostics`` via
:meth:`CORGIService.attach_gateway_diagnostics`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.service.service import (
    CORGIService,
    RequestKey,
    ServiceBuildTimeoutError,
    rewrap_for_follower,
)
from repro.server.messages import ObfuscationRequest
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "AsyncCORGIService",
    "GatewayConfig",
    "GatewayProtocolError",
    "GatewayServer",
    "MAX_FRAME_BYTES",
    "decode_gateway_frame",
    "encode_gateway_frame",
    "key_from_wire",
    "key_to_wire",
    "serve_gateway",
]

#: Upper bound on one frame (bytes, newline included).  Push frames carry a
#: whole forest response; at paper scale (49-leaf sub-trees) that is a few
#: hundred KiB of JSON, so the bound is generous — but it *is* a bound, on
#: both directions.
MAX_FRAME_BYTES = 4 << 20

#: Protocol identifier announced in the hello frame.
GATEWAY_SERVER_ID = "corgi-gateway/1.0"


class GatewayProtocolError(ValueError):
    """A gateway frame violates the wire protocol (garbage, oversize, non-object).

    A ``ValueError`` subclass so transport-agnostic error mapping treats it
    as a client fault (HTTP-400 class), mirroring
    :class:`~repro.service.netshard.FrameFormatError`.
    """


def encode_gateway_frame(payload: Mapping[str, object]) -> bytes:
    """Encode one frame: compact JSON object plus a newline terminator."""
    if not isinstance(payload, Mapping):
        raise GatewayProtocolError(
            f"frame payload must be a mapping, got {type(payload).__name__}"
        )
    try:
        body = json.dumps(dict(payload), allow_nan=False, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise GatewayProtocolError(f"frame payload is not JSON-encodable: {error}") from None
    if len(body) + 1 > MAX_FRAME_BYTES:
        raise GatewayProtocolError(
            f"frame of {len(body) + 1} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return body + b"\n"


def decode_gateway_frame(data: bytes) -> Dict[str, object]:
    """Decode one frame (a line as read off the wire); strict inverse of encode.

    Raises :class:`GatewayProtocolError` for anything that is not one
    newline-terminated JSON object within the size bound — empty lines,
    truncated JSON, arrays, scalars, binary garbage.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    if not isinstance(data, (bytes, bytearray)):
        raise GatewayProtocolError(f"frame must be bytes, got {type(data).__name__}")
    if len(data) > MAX_FRAME_BYTES:
        raise GatewayProtocolError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    line = bytes(data).rstrip(b"\r\n")
    if not line.strip():
        raise GatewayProtocolError("empty frame")
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise GatewayProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise GatewayProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def key_to_wire(key: RequestKey) -> Dict[str, object]:
    """The JSON shape of a normalized request key."""
    privacy_level, delta, epsilon = key
    return {"privacy_level": privacy_level, "delta": delta, "epsilon": epsilon}


def key_from_wire(payload: Mapping[str, object]) -> RequestKey:
    """Inverse of :func:`key_to_wire` (used by clients to index pushes)."""
    try:
        return (
            int(payload["privacy_level"]),  # type: ignore[arg-type]
            int(payload["delta"]),  # type: ignore[arg-type]
            float(payload["epsilon"]),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError, OverflowError) as error:
        raise GatewayProtocolError(f"malformed key payload: {error}") from None


@dataclass
class GatewayConfig:
    """Gateway knobs (the service core keeps its own :class:`ServiceConfig`).

    Attributes
    ----------
    queue_limit:
        Outbound frames buffered per connection before the consumer is
        declared slow and evicted.
    heartbeat_interval_s:
        Period of the idle-connection heartbeat frames.
    max_subscriptions:
        Distinct keys one connection may subscribe to.
    executor_workers:
        Threads in the blocking-build executor; defaults to the service's
        ``max_in_flight`` so the gateway can never demand more concurrent
        engine builds than the sync core admits.
    build_wait_timeout_s:
        Async follower deadline; defaults to the service's
        ``build_wait_timeout_s``.
    write_buffer_high:
        When set, clamp the per-connection transport write buffer (and the
        kernel send buffer) to roughly this many bytes, so a peer that
        stops reading blocks the writer — and therefore fills the frame
        queue and gets evicted — after *bounded* buffering instead of
        after megabytes of kernel buffers.  ``None`` keeps the asyncio and
        OS defaults.
    """

    queue_limit: int = 64
    heartbeat_interval_s: float = 10.0
    max_subscriptions: int = 64
    executor_workers: Optional[int] = None
    build_wait_timeout_s: Optional[float] = None
    write_buffer_high: Optional[int] = None

    def validate(self) -> None:
        """Raise :class:`ValueError` for inconsistent settings."""
        if self.queue_limit < 2:
            raise ValueError("queue_limit must be >= 2 (one push + one heartbeat)")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.max_subscriptions < 1:
            raise ValueError("max_subscriptions must be >= 1")
        if self.executor_workers is not None and self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1 when given")
        if self.build_wait_timeout_s is not None and self.build_wait_timeout_s <= 0:
            raise ValueError("build_wait_timeout_s must be positive when given")
        if self.write_buffer_high is not None and self.write_buffer_high < 0:
            raise ValueError("write_buffer_high must be >= 0 when given")


class _AsyncBuild:
    """Rendezvous for one in-progress async build (ticket idiom, loop-confined)."""

    __slots__ = ("event", "response", "error", "followers", "generation")

    def __init__(self, generation: int = 0) -> None:
        self.event = asyncio.Event()
        self.response: Optional[Dict[str, object]] = None
        self.error: Optional[BaseException] = None
        self.followers = 0
        self.generation = generation


class AsyncCORGIService:
    """Awaitable adapter over the sync :class:`CORGIService` core.

    Blocking engine builds run in a bounded :class:`ThreadPoolExecutor`;
    concurrent identical keys share one executor ticket through an async
    single-flight rendezvous (the same leader/follower shape the shard
    layer's ticket map uses), so N held connections refreshing the same key
    cost one executor slot, not N.  All coroutine methods are loop-confined
    (call them from one event loop); the executor threads only touch the
    thread-safe sync service.
    """

    def __init__(
        self,
        service: CORGIService,
        *,
        max_workers: Optional[int] = None,
        build_wait_timeout_s: Optional[float] = None,
    ) -> None:
        if not isinstance(service, CORGIService):
            service = CORGIService(service)  # type: ignore[arg-type]
        self.service = service
        workers = max_workers if max_workers is not None else service.config.max_in_flight
        self._executor = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="gateway-build"
        )
        self.build_wait_timeout_s = float(
            build_wait_timeout_s
            if build_wait_timeout_s is not None
            else service.config.build_wait_timeout_s
        )
        self._inflight: Dict[RequestKey, _AsyncBuild] = {}

    def normalize(self, privacy_level, delta, epsilon=None) -> RequestKey:
        """Validate raw wire fields into a normalized request key.

        Raises ``ValueError`` / ``TypeError`` for malformed fields — the
        same client-fault class the HTTP transport maps to 400.
        """
        request = ObfuscationRequest(
            privacy_level=int(privacy_level),
            delta=int(delta),
            epsilon=None if epsilon is None else float(epsilon),
        )
        return self.service.normalize(request)

    async def forest_response(
        self, key: RequestKey, *, generation: Optional[int] = None
    ) -> Dict[str, object]:
        """The wire response dict for *key*, built at most once concurrently.

        ``generation`` is the caller's freshness requirement: an in-flight
        build that started under an older generation may carry data from
        before the triggering update, so instead of joining it the caller
        waits it out and then leads a fresh build.  Callers without a
        freshness requirement (initial subscribe snapshots) join whatever
        is in flight.
        """
        while True:
            entry = self._inflight.get(key)
            if entry is None:
                break
            if generation is not None and entry.generation < generation:
                # Joining would risk serving pre-update data under a fresh
                # tag; drain the stale build (outcome irrelevant) and lead.
                await self._await_entry(entry)
                continue
            entry.followers += 1
            await self._await_entry(entry)
            if entry.error is not None:
                raise rewrap_for_follower(entry.error) from entry.error
            assert entry.response is not None
            return entry.response

        entry = _AsyncBuild(generation if generation is not None else 0)
        self._inflight[key] = entry
        loop = asyncio.get_running_loop()
        try:
            entry.response = await loop.run_in_executor(
                self._executor, self._build_sync, key
            )
            return entry.response
        except BaseException as error:
            entry.error = error
            raise
        finally:
            self._inflight.pop(key, None)
            entry.event.set()

    async def _await_entry(self, entry: _AsyncBuild) -> None:
        try:
            await asyncio.wait_for(entry.event.wait(), timeout=self.build_wait_timeout_s)
        except asyncio.TimeoutError:
            self.service.metrics.increment("build_timeouts")
            raise ServiceBuildTimeoutError(
                f"async follower waited {self.build_wait_timeout_s:.1f}s for the "
                "build leader; retry to start a fresh build"
            ) from None

    def _build_sync(self, key: RequestKey) -> Dict[str, object]:
        """Executor-thread body: sync single-flight build, packaged for the wire."""
        forest = self.service._forest_for(key)
        return CORGIService._package(forest).to_dict()

    def close(self) -> None:
        """Shut the executor down (queued builds are abandoned)."""
        self._executor.shutdown(wait=False, cancel_futures=True)


class _GatewayConnection:
    """One held client connection: bounded outbound queue plus subscriptions."""

    _next_id = 0

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue_limit: int,
    ) -> None:
        _GatewayConnection._next_id += 1
        self.connection_id = _GatewayConnection._next_id
        self.reader = reader
        self.writer = writer
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue(maxsize=queue_limit)
        self.subscriptions: Set[RequestKey] = set()
        self.closing = False
        self.dropped = False
        self.evicted = False
        self.writer_task: Optional["asyncio.Task"] = None

    def try_push(self, frame: bytes) -> bool:
        """Queue one outbound frame; False means the queue is full (slow peer)."""
        if self.closing:
            return False
        try:
            self.queue.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            return False

    def abort(self) -> None:
        """Drop the connection immediately (pending queue data is discarded)."""
        self.closing = True
        transport = self.writer.transport
        if transport is not None:
            try:
                transport.abort()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    async def writer_loop(self) -> None:
        """Drain the queue onto the socket until cancelled or the peer dies."""
        while True:
            frame = await self.queue.get()
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                return  # transport aborted (eviction) or peer went away


class GatewayServer:
    """The asyncio push front-end for one :class:`CORGIService`.

    Runs its own event loop on a background thread (``start()`` /
    ``close()``, also usable as a context manager), so it composes with the
    sync :class:`~repro.service.http.CORGIHTTPServer` serving the same
    service object — the two fronts share the single-flight gate, the
    caches, the metrics and the admin surface.

    Parameters
    ----------
    service:
        The service to push for.  An engine / server / pool is accepted and
        wrapped, exactly like the HTTP transport.
    config:
        Gateway knobs; see :class:`GatewayConfig`.
    host / port:
        Bind address; ``port=0`` selects an ephemeral port, available as
        :attr:`port` after ``start()``.
    """

    def __init__(
        self,
        service: CORGIService,
        config: Optional[GatewayConfig] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not isinstance(service, CORGIService):
            service = CORGIService(service)  # type: ignore[arg-type]
        self.service = service
        self.config = config or GatewayConfig()
        self.config.validate()
        self._host = host
        self._requested_port = int(port)
        self._port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._async: Optional[AsyncCORGIService] = None
        # Loop-confined registries (touched only on the gateway loop).
        self._connections: Set[_GatewayConnection] = set()
        self._subscribers: Dict[RequestKey, Set[_GatewayConnection]] = {}
        self._generations: Dict[RequestKey, int] = {}
        self._refreshing: Dict[RequestKey, asyncio.Task] = {}
        self._snapshot_tasks: Set[asyncio.Task] = set()
        self._handler_tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # Address
    # ------------------------------------------------------------------ #

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("gateway not started")
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self.port

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "GatewayServer":
        """Serve on a background thread; returns once the port is bound."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(
            target=self._run, name="corgi-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("gateway event loop failed to start within 30s")
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            self._thread = None
            raise RuntimeError(f"gateway failed to start: {error}") from error
        self.service.add_update_listener(self._on_update)
        self.service.attach_gateway_diagnostics(self.diagnostics)
        logger.info("CORGI push gateway listening on %s:%d", self._host, self._port)
        return self

    def close(self) -> None:
        """Stop the loop, drop held connections, join the thread (idempotent).

        Like the HTTP transport's ``shutdown``, a serving thread that fails
        to stop raises instead of silently leaking.
        """
        if self._thread is None:
            return
        self.service.remove_update_listener(self._on_update)
        self.service.detach_gateway_diagnostics(self.diagnostics)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._request_stop)
            except RuntimeError:
                pass  # loop already shutting down
        self._thread.join(timeout=10.0)
        if self._thread.is_alive():
            raise RuntimeError("gateway thread did not stop within 10s of close()")
        self._thread = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - reported via start()
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()
            else:
                logger.exception("gateway loop died")

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._async = AsyncCORGIService(
            self.service,
            max_workers=self.config.executor_workers,
            build_wait_timeout_s=self.config.build_wait_timeout_s,
        )
        try:
            server = await asyncio.start_server(
                self._handle_connection,
                self._host,
                self._requested_port,
                limit=MAX_FRAME_BYTES + 2,
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._port = server.sockets[0].getsockname()[1]
        heartbeat = asyncio.create_task(self._heartbeat_loop())
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            heartbeat.cancel()
            server.close()
            await server.wait_closed()
            for task in list(self._refreshing.values()) + list(self._snapshot_tasks):
                task.cancel()
            for connection in list(self._connections):
                connection.abort()
            # Aborted transports EOF the reader loops; draining the handler
            # tasks here (instead of letting asyncio.run cancel them) keeps
            # per-connection cleanup deterministic and the logs quiet.
            if self._handler_tasks:
                await asyncio.wait(set(self._handler_tasks), timeout=5.0)
            self._async.close()

    # ------------------------------------------------------------------ #
    # Update fan-out (invalidate / priors → push)
    # ------------------------------------------------------------------ #

    def _on_update(self, kind: str, privacy_level: Optional[int]) -> None:
        """Service update listener — called on the admin caller's thread."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._mark_updated, kind, privacy_level)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _mark_updated(self, kind: str, privacy_level: Optional[int]) -> None:
        """Bump generations of affected subscribed keys and schedule refreshes."""
        for key in list(self._subscribers):
            if privacy_level is not None and key[0] != privacy_level:
                continue
            self._generations[key] = self._generations.get(key, 1) + 1
            if key not in self._refreshing:
                self._refreshing[key] = asyncio.create_task(self._refresh(key, kind))

    async def _refresh(self, key: RequestKey, reason: str) -> None:
        """Rebuild *key* and fan the result out — once per settled generation.

        A storm of updates while the build runs keeps bumping the key's
        generation; the loop rebuilds until the generation it built under
        is still current, then pushes exactly one frame per subscriber.
        """
        try:
            while True:
                if key not in self._subscribers:
                    return  # last subscriber left mid-storm; nothing to push
                generation = self._generations.get(key, 1)
                try:
                    response = await self._async.forest_response(key, generation=generation)
                except asyncio.CancelledError:
                    raise
                except BaseException as error:  # noqa: BLE001 - answered, not fatal
                    logger.warning("gateway refresh for %s failed: %s", key, error)
                    frame = encode_gateway_frame(
                        {
                            "type": "error",
                            "error": "refresh_failed",
                            "key": key_to_wire(key),
                            "generation": generation,
                            "detail": str(error),
                        }
                    )
                    self._fan_out(key, frame, count_as=None)
                    if self._generations.get(key, 1) != generation:
                        # An update raced the failed build.  _mark_updated
                        # skipped scheduling while this task held the key,
                        # so returning here would strand subscribers on
                        # stale data — go again for the newer generation.
                        continue
                    return
                if self._generations.get(key, 1) != generation:
                    continue  # superseded mid-build — go again
                frame = encode_gateway_frame(
                    {
                        "type": "forest",
                        "key": key_to_wire(key),
                        "generation": generation,
                        "reason": reason,
                        "response": response,
                    }
                )
                self._fan_out(key, frame, count_as="gateway_pushes")
                return
        finally:
            # Guarded: a task cancelled by key release may only unwind after
            # a re-subscribe installed a successor task under the same key.
            if self._refreshing.get(key) is asyncio.current_task():
                del self._refreshing[key]

    def _fan_out(self, key: RequestKey, frame: bytes, *, count_as: Optional[str]) -> None:
        """Push one pre-encoded frame to every subscriber of *key*."""
        pushed = 0
        for connection in list(self._subscribers.get(key, ())):
            if connection.try_push(frame):
                pushed += 1
            else:
                self._evict_slow(connection)
        if pushed and count_as:
            self.service.metrics.increment(count_as, pushed)

    def _push_or_evict(self, connection: _GatewayConnection, frame: bytes) -> bool:
        """Queue one reply frame; a full queue means a slow peer, so evict."""
        if connection.try_push(frame):
            return True
        self._evict_slow(connection)
        return False

    def _evict_slow(self, connection: _GatewayConnection) -> None:
        """Drop a consumer whose queue is full instead of buffering unboundedly."""
        if connection.evicted or connection.dropped:
            return
        connection.evicted = True
        self.service.metrics.increment("gateway_evicted_slow")
        logger.warning(
            "evicting slow gateway consumer #%d (%d frames queued, limit %d)",
            connection.connection_id,
            connection.queue.qsize(),
            self.config.queue_limit,
        )
        connection.abort()
        if connection.writer_task is not None:
            connection.writer_task.cancel()
        self._drop_connection(connection)

    async def _heartbeat_loop(self) -> None:
        """Periodic heartbeat to every held connection (keeps NATs open; a
        peer that stopped reading accumulates these until eviction)."""
        sequence = 0
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            sequence += 1
            frame = encode_gateway_frame({"type": "heartbeat", "seq": sequence})
            pushed = 0
            for connection in list(self._connections):
                if connection.try_push(frame):
                    pushed += 1
                else:
                    self._evict_slow(connection)
            if pushed:
                self.service.metrics.increment("gateway_heartbeats", pushed)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        if self.config.write_buffer_high is not None:
            raw_socket = writer.get_extra_info("socket")
            if raw_socket is not None:
                try:
                    raw_socket.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_SNDBUF,
                        max(4096, self.config.write_buffer_high),
                    )
                except OSError:
                    pass  # platform refused; the transport clamp still applies
            writer.transport.set_write_buffer_limits(high=self.config.write_buffer_high)
        connection = _GatewayConnection(reader, writer, self.config.queue_limit)
        self._connections.add(connection)
        self.service.metrics.increment("gateway_connections")
        connection.try_push(
            encode_gateway_frame(
                {
                    "type": "hello",
                    "server": GATEWAY_SERVER_ID,
                    "heartbeat_interval_s": self.config.heartbeat_interval_s,
                    "queue_limit": self.config.queue_limit,
                }
            )
        )
        writer_task = asyncio.create_task(connection.writer_loop())
        connection.writer_task = writer_task
        try:
            await self._reader_loop(connection)
        finally:
            self._drop_connection(connection)
            writer_task.cancel()
            connection.closing = True
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - transport may already be gone
                pass
            if task is not None:
                self._handler_tasks.discard(task)

    async def _reader_loop(self, connection: _GatewayConnection) -> None:
        while True:
            try:
                line = await connection.reader.readline()
            except (ConnectionResetError, asyncio.IncompleteReadError, BrokenPipeError):
                return
            except ValueError:
                # Line exceeded the stream limit: framing is lost for good.
                self.service.metrics.increment("gateway_rejected_frames")
                connection.try_push(
                    encode_gateway_frame(
                        {
                            "type": "error",
                            "error": "frame_too_large",
                            "detail": f"frames are bounded at {MAX_FRAME_BYTES} bytes",
                        }
                    )
                )
                return
            if not line:
                return  # EOF — orderly disconnect
            if not line.strip():
                continue  # tolerate bare keep-alive newlines
            try:
                frame = decode_gateway_frame(line)
            except GatewayProtocolError as error:
                # Garbage is answered, never fatal to the server: count it,
                # tell the client, keep reading (framing is line-based, so
                # the stream resynchronizes at the next newline).
                self.service.metrics.increment("gateway_rejected_frames")
                if not connection.try_push(
                    encode_gateway_frame(
                        {"type": "error", "error": "bad_frame", "detail": str(error)}
                    )
                ):
                    self._evict_slow(connection)
                    return
                continue
            self._dispatch(connection, frame)

    def _dispatch(self, connection: _GatewayConnection, frame: Dict[str, object]) -> None:
        op = frame.get("op")
        if op == "ping":
            self._push_or_evict(
                connection,
                encode_gateway_frame({"type": "pong", "nonce": frame.get("nonce")}),
            )
        elif op == "subscribe":
            self._handle_subscribe(connection, frame)
        elif op == "unsubscribe":
            self._handle_unsubscribe(connection, frame)
        else:
            self.service.metrics.increment("gateway_rejected_frames")
            self._push_or_evict(
                connection,
                encode_gateway_frame(
                    {
                        "type": "error",
                        "error": "unknown_op",
                        "detail": f"unknown op {op!r}; expected subscribe/unsubscribe/ping",
                    }
                ),
            )

    def _handle_subscribe(
        self, connection: _GatewayConnection, frame: Dict[str, object]
    ) -> None:
        try:
            key = self._async.normalize(
                frame.get("privacy_level"), frame.get("delta"), frame.get("epsilon")
            )
        except (ValueError, TypeError, OverflowError) as error:
            self.service.metrics.increment("gateway_rejected_frames")
            self._push_or_evict(
                connection,
                encode_gateway_frame(
                    {"type": "error", "error": "bad_request", "detail": str(error)}
                ),
            )
            return
        if (
            key not in connection.subscriptions
            and len(connection.subscriptions) >= self.config.max_subscriptions
        ):
            self._push_or_evict(
                connection,
                encode_gateway_frame(
                    {
                        "type": "error",
                        "error": "too_many_subscriptions",
                        "detail": f"at most {self.config.max_subscriptions} keys per connection",
                    }
                ),
            )
            return
        generation = self._generations.setdefault(key, 1)
        self._subscribers.setdefault(key, set()).add(connection)
        if key not in connection.subscriptions:
            connection.subscriptions.add(key)
            self.service.metrics.increment("gateway_subscriptions")
        self._push_or_evict(
            connection,
            encode_gateway_frame(
                {"type": "subscribed", "key": key_to_wire(key), "generation": generation}
            ),
        )
        task = asyncio.create_task(self._push_snapshot(connection, key, generation))
        self._snapshot_tasks.add(task)
        task.add_done_callback(self._snapshot_tasks.discard)

    def _handle_unsubscribe(
        self, connection: _GatewayConnection, frame: Dict[str, object]
    ) -> None:
        try:
            key = self._async.normalize(
                frame.get("privacy_level"), frame.get("delta"), frame.get("epsilon")
            )
        except (ValueError, TypeError, OverflowError) as error:
            self.service.metrics.increment("gateway_rejected_frames")
            self._push_or_evict(
                connection,
                encode_gateway_frame(
                    {"type": "error", "error": "bad_request", "detail": str(error)}
                ),
            )
            return
        connection.subscriptions.discard(key)
        holders = self._subscribers.get(key)
        if holders is not None:
            holders.discard(connection)
            self._release_if_unwatched(key)
        self._push_or_evict(
            connection,
            encode_gateway_frame({"type": "unsubscribed", "key": key_to_wire(key)}),
        )

    async def _push_snapshot(
        self, connection: _GatewayConnection, key: RequestKey, generation: int
    ) -> None:
        """Push the current forest to one fresh subscriber.

        *generation* is the key's generation at subscribe time — both the
        freshness floor for the build (a stale in-flight build is waited
        out, never joined) and the frame's label.  An update that lands
        mid-build bumps the key past *generation* and its refresh task
        pushes the newer frame separately; this frame keeps the older tag,
        so the client's generation guard orders the two correctly instead
        of dropping the genuine refresh because a stale payload usurped
        its tag.
        """
        try:
            response = await self._async.forest_response(key, generation=generation)
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 - answered, not fatal
            connection.try_push(
                encode_gateway_frame(
                    {
                        "type": "error",
                        "error": "build_failed",
                        "key": key_to_wire(key),
                        "detail": str(error),
                    }
                )
            )
            return
        delivered = connection.try_push(
            encode_gateway_frame(
                {
                    "type": "forest",
                    "key": key_to_wire(key),
                    "generation": generation,
                    "reason": "subscribe",
                    "response": response,
                }
            )
        )
        if delivered:
            self.service.metrics.increment("gateway_pushes")
        elif not connection.dropped:
            self._evict_slow(connection)

    def _drop_connection(self, connection: _GatewayConnection) -> None:
        if connection.dropped:
            return
        connection.dropped = True
        connection.closing = True
        self._connections.discard(connection)
        for key in connection.subscriptions:
            holders = self._subscribers.get(key)
            if holders is not None:
                holders.discard(connection)
                self._release_if_unwatched(key)
        connection.subscriptions.clear()
        self.service.metrics.increment("gateway_disconnects")

    def _release_if_unwatched(self, key: RequestKey) -> None:
        """Forget a key's gateway state once its last subscriber is gone.

        Keys embed a client-chosen epsilon, so without pruning a long-lived
        server accrues an unbounded ``_generations`` dict.  The generation
        restarts at 1 on re-subscribe; the client store treats a subscribe
        ack announcing a lower generation than it holds as a new server
        epoch and clears the held entry, so the per-key guard cannot wedge
        on the restart.
        """
        if self._subscribers.get(key):
            return
        self._subscribers.pop(key, None)
        self._generations.pop(key, None)
        task = self._refreshing.pop(key, None)
        if task is not None:
            task.cancel()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def diagnostics(self) -> Dict[str, object]:
        """Connection/subscription gauges, read consistently on the loop.

        Safe from any thread; a gateway that is not (or no longer) running
        reports ``{"running": False}`` instead of erroring — like the
        durability endpoint, this is a probe, not a capability check.
        """
        loop = self._loop
        thread = self._thread
        if loop is None or loop.is_closed() or thread is None or not thread.is_alive():
            return {"running": False, "port": self._port}
        future = asyncio.run_coroutine_threadsafe(self._diagnostics_on_loop(), loop)
        try:
            return future.result(timeout=5.0)
        except Exception:  # noqa: BLE001 - probe must not raise
            return {"running": False, "port": self._port}

    async def _diagnostics_on_loop(self) -> Dict[str, object]:
        keys = [
            {
                **key_to_wire(key),
                "generation": self._generations.get(key, 1),
                "subscribers": len(holders),
            }
            for key, holders in sorted(self._subscribers.items())
        ]
        return {
            "running": True,
            "port": self._port,
            "connections": len(self._connections),
            "subscribed_keys": len(self._subscribers),
            "subscriptions": sum(len(holders) for holders in self._subscribers.values()),
            "refreshing": len(self._refreshing),
            "queue_limit": self.config.queue_limit,
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
            "keys": keys,
        }


def serve_gateway(
    service: CORGIService,
    config: Optional[GatewayConfig] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
) -> GatewayServer:
    """Start a background push gateway for *service* and return it."""
    return GatewayServer(service, config, host=host, port=port).start()
