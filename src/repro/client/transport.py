"""Client transports: one protocol, in-process and HTTP implementations.

Figure 1's protocol is two messages — a request carrying ``(privacy_level,
δ)`` (optionally ε) and a response carrying the privacy forest.  A
:class:`ForestTransport` is anything that can run that exchange:

* :class:`InProcessTransport` — calls a
  :class:`~repro.service.service.CORGIService` directly (no serialization;
  still benefits from coalescing/metrics);
* :class:`HTTPTransport` — speaks the JSON protocol of
  :mod:`repro.service.http` over ``urllib`` (stdlib only).

:class:`TransportForestProvider` adapts any transport to the
``generate_privacy_forest`` duck type the :class:`~repro.client.client.CORGIClient`
and :class:`~repro.client.session.ObfuscationSession` consume, returning a
:class:`ResponseForest` — the client-side view of the wire response with
the same lookup surface as a server-side
:class:`~repro.server.privacy_forest.PrivacyForest`.  The
:func:`as_forest_provider` helper is what lets ``CORGIClient`` accept a
server, an engine, a service or a transport interchangeably.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.exceptions import CORGIError
from repro.core.matrix import ObfuscationMatrix
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "ForestTransport",
    "HTTPTransport",
    "InProcessTransport",
    "ResponseForest",
    "TransportError",
    "TransportForestProvider",
    "as_forest_provider",
]


class TransportError(CORGIError):
    """A transport-level failure (connection refused, non-2xx status, bad body).

    ``status`` carries the HTTP status code when one was received, and
    ``detail`` the server's error payload, so callers can distinguish
    overload (503, retry later) from request errors (4xx, don't retry).
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.detail = detail


@runtime_checkable
class ForestTransport(Protocol):
    """The two-message exchange of Figure 1, behind any transport."""

    def fetch_forest(self, request: ObfuscationRequest) -> PrivacyForestResponse:
        """Run one request/response exchange."""
        ...


class InProcessTransport:
    """Transport that calls a :class:`CORGIService` in the same process.

    Accepts a service, or a :class:`~repro.server.server.CORGIServer` /
    :class:`~repro.server.engine.ForestEngine` (wrapped in a
    default-configured service), so tests and single-process deployments
    exercise the exact request path of the HTTP transport minus the wire.
    """

    def __init__(self, target: object) -> None:
        from repro.service.service import CORGIService

        if isinstance(target, CORGIService):
            self.service = target
        else:
            self.service = CORGIService(target)  # type: ignore[arg-type]

    def fetch_forest(self, request: ObfuscationRequest) -> PrivacyForestResponse:
        return self.service.handle(request)

    def fetch_forests(
        self, requests: Sequence[ObfuscationRequest]
    ) -> List[PrivacyForestResponse]:
        """Batch exchange (mirrors ``POST /forest/batch``)."""
        return self.service.handle_batch(requests)


class HTTPTransport:
    """Transport speaking the JSON protocol of :mod:`repro.service.http`.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``http://127.0.0.1:8350`` (a
        :attr:`CORGIHTTPServer.url`).  Trailing slashes are tolerated.
    timeout_s:
        Socket timeout per exchange.  Forest builds can be slow cold; size
        this to the engine, not to network latency.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #

    def fetch_forest(self, request: ObfuscationRequest) -> PrivacyForestResponse:
        payload = self._post("/forest", request.to_dict())
        return PrivacyForestResponse.from_dict(payload)

    def fetch_forests(
        self, requests: Sequence[ObfuscationRequest]
    ) -> List[PrivacyForestResponse]:
        """Batch exchange over ``POST /forest/batch`` (order-aligned)."""
        payload = self._post(
            "/forest/batch", {"requests": [request.to_dict() for request in requests]}
        )
        responses = payload.get("responses")
        if not isinstance(responses, list):
            raise TransportError("malformed batch response: missing 'responses' list")
        return [PrivacyForestResponse.from_dict(entry) for entry in responses]

    def metrics(self) -> Dict[str, object]:
        """The server's ``GET /metrics`` snapshot."""
        return self._get("/metrics")

    def health(self) -> Dict[str, object]:
        """The server's ``GET /healthz`` liveness answer."""
        return self._get("/healthz")

    def diagnostics(self) -> Dict[str, object]:
        """``GET /admin/diagnostics``: engine cache + LP-solver diagnostics.

        The ``"solver"`` block carries the aggregate warm-start counters
        (backend, warm vs cold solves, basis-reuse hits, per-stage time
        totals), summed across shards when the server runs a pool.
        """
        return self._get("/admin/diagnostics")

    def durability(self) -> Dict[str, object]:
        """``GET /admin/durability``: durable state tier diagnostics."""
        return self._get("/admin/durability")

    # ------------------------------------------------------------------ #
    # Admin surface (cache lifecycle)
    # ------------------------------------------------------------------ #

    def invalidate(self, privacy_level: Optional[int] = None) -> int:
        """``POST /admin/invalidate``: drop the server's cached forests.

        Returns the number of forests dropped (summed across shards when
        the server runs an :class:`~repro.service.pool.EnginePool`).
        """
        payload = self._post(
            "/admin/invalidate",
            {"privacy_level": None if privacy_level is None else int(privacy_level)},
        )
        return int(payload.get("invalidated", 0))  # type: ignore[arg-type]

    def publish_priors(
        self, priors: Dict[str, float], *, normalize: bool = True
    ) -> int:
        """``POST /admin/priors``: install new leaf priors (live update).

        Returns the number of cached forests the update flushed server-side.
        """
        payload = self._post(
            "/admin/priors", {"priors": dict(priors), "normalize": bool(normalize)}
        )
        return int(payload.get("invalidated", 0))  # type: ignore[arg-type]

    def drain(self, slot: int) -> Dict[str, object]:
        """``POST /admin/drain``: gracefully drain one shard slot.

        Returns the server's drain report (``{"slot", "exported",
        "handoff_keys", "imported", "prewarmed", ...}``).  Errors are typed
        like :meth:`invalidate`: a bad slot id, an undrainable slot or a
        server without a pool raises :class:`TransportError` with
        ``status=400`` and the server's ``detail``, so callers can
        distinguish their own fault from a transport failure.
        """
        return self._post("/admin/drain", {"slot": slot})

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    def _post(self, path: str, payload: object) -> Dict[str, object]:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._exchange(request)

    def _get(self, path: str) -> Dict[str, object]:
        request = urllib.request.Request(self.base_url + path, method="GET")
        return self._exchange(request)

    def _exchange(self, request: urllib.request.Request) -> Dict[str, object]:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            detail = self._error_detail(error)
            raise TransportError(
                f"{request.get_method()} {request.full_url} failed with HTTP {error.code}"
                + (f": {detail}" if detail else ""),
                status=error.code,
                detail=detail,
            ) from error
        except urllib.error.URLError as error:
            raise TransportError(
                f"cannot reach {request.full_url}: {error.reason}"
            ) from error
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise TransportError(
                f"non-JSON response from {request.full_url}"
            ) from error
        if not isinstance(payload, dict):
            raise TransportError(f"unexpected response shape from {request.full_url}")
        return payload

    @staticmethod
    def _error_detail(error: urllib.error.HTTPError) -> Optional[str]:
        try:
            payload = json.loads(error.read())
        except (json.JSONDecodeError, OSError, ValueError):
            return None
        if isinstance(payload, dict):
            detail = payload.get("detail")
            return str(detail) if detail is not None else None
        return None


@dataclass
class ResponseForest:
    """Client-side privacy forest reconstructed from a wire response.

    Offers the lookup surface :class:`~repro.client.client.CORGIClient`
    needs (``matrix_for_subtree`` and the generation parameters) without
    requiring the server-side tree handle a
    :class:`~repro.server.privacy_forest.PrivacyForest` carries.
    """

    privacy_level: int
    delta: int
    epsilon: float
    matrices: Dict[str, ObfuscationMatrix] = field(default_factory=dict)

    @classmethod
    def from_response(cls, response: PrivacyForestResponse) -> "ResponseForest":
        return cls(
            privacy_level=response.privacy_level,
            delta=response.delta,
            epsilon=response.epsilon,
            matrices=dict(response.matrices),
        )

    def matrix_for_subtree(self, subtree_root_id: str) -> ObfuscationMatrix:
        """Matrix over the leaves of the given sub-tree root."""
        try:
            return self.matrices[subtree_root_id]
        except KeyError:
            raise KeyError(
                f"no matrix for sub-tree {subtree_root_id!r}; available roots: "
                f"{sorted(self.matrices)[:5]}"
            ) from None

    def subtree_roots(self) -> List[str]:
        """Ids of the sub-tree roots covered by the forest."""
        return list(self.matrices.keys())

    def __len__(self) -> int:
        return len(self.matrices)

    def __contains__(self, subtree_root_id: str) -> bool:
        return subtree_root_id in self.matrices

    def __iter__(self) -> Iterator[Tuple[str, ObfuscationMatrix]]:
        return iter(self.matrices.items())


class TransportForestProvider:
    """Adapts a :class:`ForestTransport` to the forest-provider duck type.

    ``CORGIClient`` and ``ObfuscationSession`` call
    ``generate_privacy_forest(privacy_level, delta, epsilon=...)``; this
    adapter turns that call into a request/response exchange, so the client
    pipeline is byte-for-byte identical whether the forest came from an
    in-process engine or over the network.
    """

    def __init__(self, transport: ForestTransport) -> None:
        self.transport = transport

    def generate_privacy_forest(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> ResponseForest:
        del use_cache  # cache policy is the server's; see CORGIService
        request = ObfuscationRequest(
            privacy_level=int(privacy_level),
            delta=int(delta),
            epsilon=None if epsilon is None else float(epsilon),
        )
        response = self.transport.fetch_forest(request)
        return ResponseForest.from_response(response)

    generate_forest = generate_privacy_forest


def as_forest_provider(target: object):
    """Normalize anything forest-shaped into a ``generate_privacy_forest`` provider.

    Accepts (in resolution order):

    1. an object already exposing ``generate_privacy_forest`` —
       :class:`~repro.server.server.CORGIServer`,
       :class:`~repro.server.engine.ForestEngine`,
       :class:`~repro.service.service.CORGIService`, or anything
       duck-compatible — returned unchanged;
    2. a :class:`ForestTransport` (``fetch_forest``) — wrapped in a
       :class:`TransportForestProvider`.
    """
    if callable(getattr(target, "generate_privacy_forest", None)):
        return target
    if callable(getattr(target, "fetch_forest", None)):
        return TransportForestProvider(target)  # type: ignore[arg-type]
    raise TypeError(
        f"{type(target).__name__} is neither a forest provider "
        "(generate_privacy_forest) nor a transport (fetch_forest)"
    )
