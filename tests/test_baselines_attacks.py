"""Tests for the baseline mechanisms and the Bayesian adversary."""

import numpy as np
import pytest

from repro.attacks.bayesian import BayesianAttacker
from repro.attacks.metrics import expected_inference_error_km, posterior_gain, top1_recovery_rate
from repro.baselines.nonrobust import NonRobustLPMechanism
from repro.baselines.planar_laplace import PlanarLaplaceMechanism, planar_laplace_radius
from repro.baselines.uniform import UniformMechanism
from repro.core.geoind import check_geo_ind
from repro.core.matrix import ObfuscationMatrix

from tests.conftest import TEST_EPSILON


class TestUniformMechanism:
    def test_matrix_is_uniform(self, small_location_set):
        mechanism = UniformMechanism(small_location_set["node_ids"])
        assert np.allclose(mechanism.matrix.values, 1.0 / 7.0)
        assert np.allclose(mechanism.to_matrix().values, 1.0 / 7.0)

    def test_obfuscate_validates_input(self, small_location_set):
        mechanism = UniformMechanism(small_location_set["node_ids"])
        with pytest.raises(KeyError):
            mechanism.obfuscate("unknown")

    def test_obfuscate_covers_range(self, small_location_set):
        mechanism = UniformMechanism(small_location_set["node_ids"])
        rng = np.random.default_rng(0)
        samples = {mechanism.obfuscate(small_location_set["node_ids"][0], rng) for _ in range(200)}
        assert samples == set(small_location_set["node_ids"])

    def test_satisfies_geo_ind_for_any_epsilon(self, small_location_set):
        mechanism = UniformMechanism(small_location_set["node_ids"])
        report = check_geo_ind(mechanism.matrix, small_location_set["distance_matrix"], 0.01)
        assert report.satisfied

    def test_base_class_validation(self):
        with pytest.raises(ValueError):
            UniformMechanism([])
        with pytest.raises(ValueError):
            UniformMechanism(["a", "a"])


class TestNonRobustLPMechanism:
    def test_lazy_solution_and_matrix(self, small_location_set):
        mechanism = NonRobustLPMechanism(
            small_location_set["node_ids"],
            small_location_set["distance_matrix"],
            small_location_set["quality_model"],
            TEST_EPSILON,
            constraint_set=small_location_set["graph"].constraint_set(),
        )
        assert mechanism._solution is None
        matrix = mechanism.matrix
        assert mechanism._solution is not None
        matrix.validate()
        assert mechanism.objective_value >= 0
        assert mechanism.to_matrix() is matrix

    def test_obfuscate_returns_known_id(self, small_location_set):
        mechanism = NonRobustLPMechanism(
            small_location_set["node_ids"],
            small_location_set["distance_matrix"],
            small_location_set["quality_model"],
            TEST_EPSILON,
            constraint_set=small_location_set["graph"].constraint_set(),
        )
        reported = mechanism.obfuscate(small_location_set["node_ids"][0], seed=1)
        assert reported in small_location_set["node_ids"]

    def test_better_utility_than_uniform(self, small_location_set):
        mechanism = NonRobustLPMechanism(
            small_location_set["node_ids"],
            small_location_set["distance_matrix"],
            small_location_set["quality_model"],
            TEST_EPSILON,
            constraint_set=small_location_set["graph"].constraint_set(),
        )
        uniform_loss = small_location_set["quality_model"].expected_loss(
            UniformMechanism(small_location_set["node_ids"]).matrix
        )
        assert mechanism.objective_value <= uniform_loss + 1e-9


class TestPlanarLaplace:
    def test_radius_inverse_cdf_monotone(self):
        radii = [planar_laplace_radius(p, 2.0) for p in (0.0, 0.3, 0.6, 0.9)]
        assert radii[0] == 0.0
        assert all(radii[i] < radii[i + 1] for i in range(len(radii) - 1))

    def test_radius_scales_inversely_with_epsilon(self):
        assert planar_laplace_radius(0.5, 1.0) == pytest.approx(2 * planar_laplace_radius(0.5, 2.0))

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            planar_laplace_radius(1.0, 1.0)
        with pytest.raises(ValueError):
            planar_laplace_radius(0.5, 0.0)

    def test_mean_radius_close_to_theory(self):
        # E[r] = 2 / epsilon for the planar Laplace radial distribution.
        rng = np.random.default_rng(0)
        epsilon = 3.0
        draws = [planar_laplace_radius(float(rng.random()), epsilon) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(2.0 / epsilon, rel=0.1)

    def _mechanism(self, small_location_set, **kwargs):
        return PlanarLaplaceMechanism(
            small_location_set["node_ids"],
            small_location_set["centers"],
            epsilon=TEST_EPSILON,
            grid=small_location_set["tree"].grid,
            leaf_resolution=small_location_set["tree"].leaf_resolution,
            **kwargs,
        )

    def test_obfuscate_returns_in_range_ids(self, small_location_set):
        mechanism = self._mechanism(small_location_set)
        rng = np.random.default_rng(1)
        for node_id in small_location_set["node_ids"]:
            assert mechanism.obfuscate(node_id, rng) in small_location_set["node_ids"]

    def test_empirical_matrix_is_stochastic(self, small_location_set):
        mechanism = self._mechanism(small_location_set)
        matrix = mechanism.to_matrix(num_samples=80, seed=2)
        assert np.allclose(matrix.values.sum(axis=1), 1.0)
        assert matrix.metadata["empirical"] is True

    def test_empirical_matrix_requires_samples(self, small_location_set):
        mechanism = self._mechanism(small_location_set)
        with pytest.raises(NotImplementedError):
            mechanism.to_matrix()

    def test_reports_concentrate_near_real_location(self, small_location_set):
        # With a large epsilon the mean noise radius (2/eps = 0.1 km) is well
        # inside one leaf cell, so most reports stay at the real location.
        mechanism = PlanarLaplaceMechanism(
            small_location_set["node_ids"],
            small_location_set["centers"],
            epsilon=20.0,
            grid=small_location_set["tree"].grid,
            leaf_resolution=small_location_set["tree"].leaf_resolution,
        )
        real = small_location_set["node_ids"][0]
        samples = mechanism.obfuscate_many(real, 150, seed=3)
        assert samples.count(real) > len(samples) * 0.4

    def test_expected_radius(self, small_location_set):
        mechanism = self._mechanism(small_location_set)
        assert mechanism.expected_radius_km() == pytest.approx(2.0 / TEST_EPSILON)

    def test_validation(self, small_location_set):
        with pytest.raises(ValueError):
            PlanarLaplaceMechanism(small_location_set["node_ids"], small_location_set["centers"][:2], 1.0)
        with pytest.raises(ValueError):
            PlanarLaplaceMechanism(small_location_set["node_ids"], small_location_set["centers"], 0.0)
        with pytest.raises(ValueError):
            PlanarLaplaceMechanism(
                small_location_set["node_ids"], small_location_set["centers"], 1.0, max_radius_km=-1
            )


class TestBayesianAttacker:
    def _attacker(self, matrix, small_location_set, priors=None):
        return BayesianAttacker(
            matrix,
            priors if priors is not None else small_location_set["priors"],
            small_location_set["distance_matrix"],
        )

    def test_identity_matrix_fully_recovered(self, small_location_set):
        matrix = ObfuscationMatrix.identity(small_location_set["node_ids"])
        attacker = self._attacker(matrix, small_location_set)
        assert attacker.recovery_rate() == pytest.approx(1.0)
        assert attacker.expected_inference_error_km() == pytest.approx(0.0, abs=1e-9)

    def test_uniform_matrix_gives_prior_error(self, small_location_set):
        matrix = ObfuscationMatrix.uniform(small_location_set["node_ids"])
        attacker = self._attacker(matrix, small_location_set)
        assert attacker.expected_inference_error_km() == pytest.approx(
            attacker.prior_expected_error_km(), rel=1e-9
        )

    def test_posterior_is_distribution(self, nonrobust_solution, small_location_set):
        attacker = self._attacker(nonrobust_solution.matrix, small_location_set)
        for node_id in small_location_set["node_ids"]:
            posterior = attacker.posterior(node_id)
            assert posterior.sum() == pytest.approx(1.0)
            assert (posterior >= 0).all()

    def test_attack_result_fields(self, nonrobust_solution, small_location_set):
        attacker = self._attacker(nonrobust_solution.matrix, small_location_set)
        result = attacker.attack(small_location_set["node_ids"][0])
        assert result.map_estimate in small_location_set["node_ids"]
        assert result.bayes_estimate in small_location_set["node_ids"]
        assert result.expected_error_km >= 0

    def test_obfuscation_reduces_attacker_accuracy(self, nonrobust_solution, small_location_set):
        identity = ObfuscationMatrix.identity(small_location_set["node_ids"])
        attacker_identity = self._attacker(identity, small_location_set)
        attacker_obfuscated = self._attacker(nonrobust_solution.matrix, small_location_set)
        assert (
            attacker_obfuscated.expected_inference_error_km()
            >= attacker_identity.expected_inference_error_km()
        )

    def test_posterior_table_shape(self, nonrobust_solution, small_location_set):
        attacker = self._attacker(nonrobust_solution.matrix, small_location_set)
        table = attacker.posterior_table()
        assert table.shape == (7, 7)
        assert np.allclose(table.sum(axis=1), 1.0)

    def test_validation(self, small_location_set):
        matrix = ObfuscationMatrix.uniform(small_location_set["node_ids"])
        with pytest.raises(ValueError):
            BayesianAttacker(matrix, [0.5, 0.5], small_location_set["distance_matrix"])
        with pytest.raises(ValueError):
            BayesianAttacker(matrix, small_location_set["priors"], np.zeros((2, 2)))

    def test_metric_wrappers(self, nonrobust_solution, small_location_set):
        matrix = nonrobust_solution.matrix
        priors = small_location_set["priors"]
        distances = small_location_set["distance_matrix"]
        assert expected_inference_error_km(matrix, priors, distances) >= 0
        assert 0 <= top1_recovery_rate(matrix, priors, distances) <= 1
        assert posterior_gain(matrix, priors, distances) >= 1.0 - 1e-9

    def test_posterior_gain_uniform_is_one(self, small_location_set):
        matrix = ObfuscationMatrix.uniform(small_location_set["node_ids"])
        gain = posterior_gain(matrix, small_location_set["priors"], small_location_set["distance_matrix"])
        assert gain == pytest.approx(1.0, rel=1e-6)
