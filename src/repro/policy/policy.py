"""Customization policy objects.

A :class:`Policy` is the user-side triple of Section 3.2.  It stays on the
user device; only the non-sensitive :class:`CustomizationRequest` (privacy
level and the *number* of locations to prune, never which ones) is sent to
the server, reflecting the trust model of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from repro.policy.predicates import Predicate, parse_predicate


@dataclass
class Policy:
    """A user's customization policy ``<Privacy_l, Precision_l, User_Preferences>``.

    Parameters
    ----------
    privacy_level:
        Tree level whose sub-trees define the obfuscation range (the privacy
        forest).  Higher levels mean a wider range of candidate obfuscated
        locations.
    precision_level:
        Tree level at which the obfuscated location is reported.  Must not
        exceed the privacy level (the privacy level is the maximum possible
        granularity of the range).
    preferences:
        Boolean predicates a location must satisfy to stay in the
        obfuscation range.  May be given as :class:`Predicate` objects or as
        strings such as ``"popular = True"``.
    delta:
        Optional explicit robustness budget δ (maximum number of locations
        the user expects to prune).  When omitted the framework derives δ
        from the preference evaluation.
    """

    privacy_level: int
    precision_level: int = 0
    preferences: List[Predicate] = field(default_factory=list)
    delta: Optional[int] = None

    def __post_init__(self) -> None:
        if self.privacy_level < 0:
            raise ValueError(f"privacy_level must be non-negative, got {self.privacy_level}")
        if self.precision_level < 0:
            raise ValueError(f"precision_level must be non-negative, got {self.precision_level}")
        if self.precision_level > self.privacy_level:
            raise ValueError(
                "precision_level must not exceed privacy_level "
                f"(got precision {self.precision_level} > privacy {self.privacy_level}); "
                "the privacy level bounds the granularity of the obfuscation range"
            )
        if self.delta is not None and self.delta < 0:
            raise ValueError(f"delta must be non-negative, got {self.delta}")
        normalized: List[Predicate] = []
        for preference in self.preferences:
            if isinstance(preference, Predicate):
                normalized.append(preference)
            elif isinstance(preference, str):
                normalized.append(parse_predicate(preference))
            else:
                raise TypeError(
                    f"preferences must be Predicate objects or strings, got {type(preference).__name__}"
                )
        self.preferences = normalized

    @classmethod
    def from_strings(
        cls,
        privacy_level: int,
        precision_level: int = 0,
        preferences: Sequence[str] = (),
        delta: Optional[int] = None,
    ) -> "Policy":
        """Build a policy parsing every preference from text."""
        return cls(
            privacy_level=privacy_level,
            precision_level=precision_level,
            preferences=[parse_predicate(text) for text in preferences],
            delta=delta,
        )

    def describe(self) -> str:
        """Human-readable, single-line rendering of the policy."""
        preferences = ", ".join(str(p) for p in self.preferences) or "(none)"
        delta = "auto" if self.delta is None else str(self.delta)
        return (
            f"privacy_l={self.privacy_level}, precision_l={self.precision_level}, "
            f"delta={delta}, user_preferences=[{preferences}]"
        )

    def to_request(self, delta: Optional[int] = None) -> "CustomizationRequest":
        """Derive the server-visible request from this policy.

        Only the privacy level and the prune *count* are shared; the
        predicates themselves (which reveal, e.g., where the user's home is)
        never leave the device.
        """
        effective = delta if delta is not None else (self.delta or 0)
        return CustomizationRequest(privacy_level=self.privacy_level, delta=int(effective))


@dataclass(frozen=True)
class CustomizationRequest:
    """The non-sensitive customization parameters shared with the server.

    Carries the privacy level (needed to build the privacy forest) and δ,
    the number of locations the user may prune (needed to reserve privacy
    budget), exactly the two quantities step 4 of Figure 1 transmits.
    """

    privacy_level: int
    delta: int

    def __post_init__(self) -> None:
        if self.privacy_level < 0:
            raise ValueError(f"privacy_level must be non-negative, got {self.privacy_level}")
        if self.delta < 0:
            raise ValueError(f"delta must be non-negative, got {self.delta}")


def preferences_from_mapping(mapping: Iterable[Union[str, Predicate]]) -> List[Predicate]:
    """Normalise a mixed iterable of strings/predicates into predicate objects."""
    result: List[Predicate] = []
    for item in mapping:
        result.append(item if isinstance(item, Predicate) else parse_predicate(str(item)))
    return result
