"""Wire-format messages exchanged between the user device and the server.

The trust model of Figure 1 constrains what the messages may carry: the
request exposes only the privacy level and the prune count δ (never the
user's location, sub-tree or preferences); the response carries one matrix
per sub-tree at the requested level, so the server cannot tell which one the
user actually uses.  Both messages are plain dataclasses with dictionary
(de)serialisation so they can cross any transport (HTTP, files, queues).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.matrix import ObfuscationMatrix


@dataclass(frozen=True)
class ObfuscationRequest:
    """Request for a privacy forest.

    Attributes
    ----------
    privacy_level:
        Tree level whose sub-trees form the obfuscation ranges.
    delta:
        Number of locations the user may prune (robustness budget δ).
    epsilon:
        Optional per-request privacy budget override; the server default is
        used when omitted.
    """

    privacy_level: int
    delta: int
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.privacy_level < 0:
            raise ValueError(f"privacy_level must be non-negative, got {self.privacy_level}")
        if self.delta < 0:
            raise ValueError(f"delta must be non-negative, got {self.delta}")
        if self.epsilon is not None and not (
            math.isfinite(self.epsilon) and self.epsilon > 0
        ):
            # The finiteness check matters on the wire: Python's json module
            # happily parses ``NaN``, and ``nan <= 0`` is False — without it a
            # NaN ε would sail through into the LP layer.
            raise ValueError(f"epsilon must be positive and finite when given, got {self.epsilon}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {"privacy_level": self.privacy_level, "delta": self.delta, "epsilon": self.epsilon}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ObfuscationRequest":
        """Inverse of :meth:`to_dict`.

        Every field is coerced to its declared type before construction —
        notably ``epsilon`` to ``float`` (a JSON producer may well send
        ``"epsilon": "1.5"``), so ``__post_init__`` validation always runs
        against a number and a malformed value fails loudly here rather
        than deep inside the LP layer.  A missing required field raises
        :class:`ValueError` (not ``KeyError``): it is a malformed payload,
        and transports map ``ValueError`` to a client error (HTTP 400).
        """
        try:
            privacy_level = payload["privacy_level"]
            delta = payload["delta"]
        except KeyError as error:
            raise ValueError(f"missing required request field {error.args[0]!r}") from None
        epsilon = payload.get("epsilon")
        try:
            return cls(
                privacy_level=int(privacy_level),  # type: ignore[arg-type]
                delta=int(delta),  # type: ignore[arg-type]
                epsilon=None if epsilon is None else float(epsilon),  # type: ignore[arg-type]
            )
        except OverflowError as error:
            # json.loads accepts ``Infinity``; int(inf) raises OverflowError,
            # which is still a malformed payload, not a server fault.
            raise ValueError(f"non-finite value in request payload: {error}") from None


@dataclass
class PrivacyForestResponse:
    """Response carrying one leaf-level obfuscation matrix per sub-tree.

    Attributes
    ----------
    privacy_level, delta, epsilon:
        Parameters the forest was generated for (echoed for provenance).
    matrices:
        Mapping from sub-tree root node id to the matrix over its leaves.
    """

    privacy_level: int
    delta: int
    epsilon: float
    matrices: Dict[str, ObfuscationMatrix] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (matrices serialised via their own ``to_dict``)."""
        return {
            "privacy_level": self.privacy_level,
            "delta": self.delta,
            "epsilon": self.epsilon,
            "matrices": {root_id: matrix.to_dict() for root_id, matrix in self.matrices.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PrivacyForestResponse":
        """Inverse of :meth:`to_dict`."""
        matrices = {
            str(root_id): ObfuscationMatrix.from_dict(matrix_payload)
            for root_id, matrix_payload in dict(payload["matrices"]).items()  # type: ignore[arg-type]
        }
        return cls(
            privacy_level=int(payload["privacy_level"]),  # type: ignore[arg-type]
            delta=int(payload["delta"]),  # type: ignore[arg-type]
            epsilon=float(payload["epsilon"]),  # type: ignore[arg-type]
            matrices=matrices,
        )
