"""City-scale trace-replay harness: fleets, adversary, SLOs, scenarios.

``repro.loadgen`` replays check-in traces as simulated user fleets against
any :class:`~repro.client.transport.ForestTransport` (in-process, HTTP, or
the push gateway), feeds every served matrix to an online Bayesian
adversary, and reduces each run to a :class:`ScenarioReport` with
pass/fail SLO verdicts.  A first-class scenario matrix
(:data:`SCENARIOS`) covers flash crowds, shard drains, live priors
publishes and region failover; ``python -m repro.loadgen`` is the CLI and
the CI ``scenario-matrix`` job's entry point.
"""

from repro.loadgen.adversary import AdversarySummary, MatrixAudit, OnlineAdversary, matrix_digest
from repro.loadgen.dashboard import DashboardLoop, render_snapshot
from repro.loadgen.replay import GatewayForestTransport, ReplayOutcome, TraceReplayer
from repro.loadgen.report import ScenarioReport, SLOCheck, SLOSpec, latency_percentiles
from repro.loadgen.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioEnvironment,
    ScenarioOp,
    build_environment,
    run_scenario,
    soak_factor,
)
from repro.loadgen.trace import (
    ArrivalConfig,
    FleetConfig,
    ReplayEvent,
    TraceGenerator,
    TraceSchedule,
    fleet_from_dataset,
)

__all__ = [
    "SCENARIOS",
    "AdversarySummary",
    "ArrivalConfig",
    "DashboardLoop",
    "FleetConfig",
    "GatewayForestTransport",
    "MatrixAudit",
    "OnlineAdversary",
    "ReplayEvent",
    "ReplayOutcome",
    "SLOCheck",
    "SLOSpec",
    "Scenario",
    "ScenarioEnvironment",
    "ScenarioOp",
    "ScenarioReport",
    "TraceGenerator",
    "TraceReplayer",
    "TraceSchedule",
    "build_environment",
    "fleet_from_dataset",
    "latency_percentiles",
    "matrix_digest",
    "render_snapshot",
    "run_scenario",
    "soak_factor",
]
