"""Cross-host shard transport: engine replicas behind TCP sockets.

:mod:`repro.service.pool` scales serving across worker *processes* on one
host; this module moves shards off ``multiprocessing`` queues and onto
sockets, so one :class:`~repro.service.pool.EnginePool` can route over the
same consistent-hash ring to replicas running in other processes on other
hosts.  The groundwork was laid deliberately host-agnostic — the ring
hashes semantic request keys, the op vocabulary ships plain data
(:class:`~repro.service.shard.ShardOpExecutor`), and the hand-off snapshot
format (:mod:`repro.service.handoff`) carries relative TTLs and priors
versions instead of local state — so the socket transport adds *framing,
liveness and reconnection*, not new semantics:

* **Framing** — every message is one length-prefixed frame: a 4-byte magic
  (``CRGF``, or ``CRGZ`` for a zlib-compressed payload), a 4-byte
  big-endian payload length, then a UTF-8 JSON object.  Payloads past
  ``FRAME_COMPRESS_MIN_BYTES`` are deflated at encode time — hand-off and
  store pre-warm snapshots are multi-megabyte JSON, which compresses
  several-fold — and inflated with a zip-bomb guard (``MAX_FRAME_BYTES``
  bounds the *decompressed* size too).  Decoding is strict: wrong magic,
  oversized, truncated or undecompressable frames and non-object payloads
  raise :class:`FrameFormatError` (a ``ValueError``, so transports map it
  to the 400 class) — a malformed peer can never crash a server or a pool.
  Matrices cross the wire via the existing
  :meth:`~repro.core.matrix.ObfuscationMatrix.to_dict` encoding (exact
  float64 round-trip — pooled-over-socket forests stay byte-identical to
  single-process builds), and hand-off snapshots ride as the exact blob
  :func:`~repro.service.handoff.encode_snapshot` produces.
* **Liveness** — the parent heartbeats every ``heartbeat_interval_s`` and
  the server echoes from its *reader* thread (never behind a long engine
  build), so a dead or frozen peer is detected within
  ``liveness_timeout_s`` (default 1 s) even mid-LP-campaign.
* **Reconnection** — a lost connection fails the in-flight tickets (the
  pool retries them on the next ring sibling, exactly like a local worker
  crash) and the handle redials with exponential backoff, bounded by the
  pool's ``respawn_limit``.  The server keeps its engine — and therefore
  its hot forest cache — across client reconnects, so a transient network
  blip costs a redial, not a cold rebuild.

Server entry point::

    python -m repro.service.netshard --port 9400 [--scale small] ...

hosts one :class:`~repro.server.engine.ForestEngine` replica; the head node
then serves with ``python -m repro.experiments.runner --serve
--shard-hosts hostA:9400,hostB:9400``.  Both sides must be built over the
same workload tree and engine config — the same requirement every replica
of the pool already obeys.
"""

from __future__ import annotations

import argparse
import json
import os
import queue as queue_module
import random
import select
import socket
import struct
import sys
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import CORGIError, MatrixValidationError
from repro.core.matrix import ObfuscationMatrix
from repro.service.handoff import SnapshotFormatError
from repro.service.shard import (
    ShardHandle,
    ShardOpExecutor,
    ShardSpec,
    ShardState,
    ShardUnavailableError,
)
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "FRAME_MAGIC",
    "FRAME_MAGIC_DEFLATE",
    "FRAME_COMPRESS_MIN_BYTES",
    "MAX_FRAME_BYTES",
    "next_backoff_delay",
    "FrameFormatError",
    "RemoteShardError",
    "FrameAssembler",
    "encode_frame",
    "decode_frame",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "NetShardServer",
    "NetShardHandle",
    "serve_netshard",
    "main",
]

#: Frame magic: identifies a byte stream as CORGI shard frames.  A peer
#: speaking anything else (HTTP, TLS, line noise) is rejected on the first
#: eight bytes instead of being buffered until some bogus length arrives.
FRAME_MAGIC = b"CRGF"

#: Magic of a frame whose payload is zlib-compressed JSON.  Same header
#: shape (the length counts the *compressed* bytes); decoders inflate
#: under a decompressed-size bound so a hostile frame cannot zip-bomb the
#: receiver.
FRAME_MAGIC_DEFLATE = b"CRGZ"

#: Payloads at or above this size are deflated at encode time.  Tuned for
#: snapshot traffic: request/response chatter stays uncompressed (zlib
#: latency would dominate), while multi-megabyte hand-off and store
#: pre-warm snapshots — highly redundant JSON-encoded float arrays —
#: shrink several-fold on the socket.
FRAME_COMPRESS_MIN_BYTES = 64 << 10

#: Upper bound on one frame's payload.  Large enough for a hand-off
#: snapshot at the default payload budget (JSON inflates matrix bytes
#: roughly threefold), small enough that a garbage length prefix is
#: rejected immediately instead of stalling the stream for gigabytes.
MAX_FRAME_BYTES = 128 << 20

_HEADER = struct.Struct(">4sI")

#: How often the parent pings a remote shard (seconds).
HEARTBEAT_INTERVAL_S = 0.25

#: Silence threshold after which a remote shard is declared dead.  Any
#: frame — response, heartbeat echo, ready — counts as life; the server
#: echoes heartbeats from its reader thread so long engine builds never
#: look like death.
LIVENESS_TIMEOUT_S = 1.0

#: Redial backoff bounds for one connection attempt window (seconds); the
#: window is bounded by ``connect_timeout_s`` overall and the pool's
#: ``respawn_limit`` across windows.  Delays are *decorrelated-jittered*
#: between these bounds (see :func:`next_backoff_delay`) so a whole fleet
#: redialing one restarted server spreads out instead of thundering in
#: lockstep.
CONNECT_BACKOFF_BASE_S = 0.05
CONNECT_BACKOFF_CAP_S = 0.8

#: Server-side read deadline: a client that has not sent *anything* (the
#: parent heartbeats every 0.25 s) for this long is presumed gone and the
#: server returns to accepting, instead of blocking on a half-open socket.
CLIENT_IDLE_TIMEOUT_S = 10.0


class FrameFormatError(CORGIError, ValueError):
    """The byte stream is not a well-formed CORGI shard frame.

    Subclasses :class:`ValueError` so transports classify it with the other
    client faults (the 400 class); raised for wrong magic, oversized
    lengths, truncated payloads and non-object JSON.
    """


class RemoteShardError(CORGIError, RuntimeError):
    """A remote shard reported an error type this build cannot reconstruct."""


def next_backoff_delay(
    previous: float,
    *,
    base: float = CONNECT_BACKOFF_BASE_S,
    cap: float = CONNECT_BACKOFF_CAP_S,
    rng: Optional[random.Random] = None,
) -> float:
    """Decorrelated-jitter reconnect delay: ``min(cap, U(base, previous*3))``.

    The first call (``previous`` = 0) returns exactly ``base``; later calls
    draw uniformly between ``base`` and three times the last delay, capped.
    Unlike a fixed schedule, two clients that lost the same server at the
    same instant decorrelate after one round — the property that prevents a
    whole fleet from redialing a restarted server in lockstep.  Pure (pass
    a seeded ``rng``) so the bounds are directly property-testable.
    """
    pick = (rng or random).uniform
    upper = max(float(base), float(previous) * 3.0)
    return min(float(cap), pick(float(base), upper))


# --------------------------------------------------------------------- #
# Frame codec
# --------------------------------------------------------------------- #


def encode_frame(
    message: Dict[str, object],
    *,
    compress_min_bytes: Optional[int] = FRAME_COMPRESS_MIN_BYTES,
) -> bytes:
    """Serialize one message dict to its framed wire form.

    Payloads at or above *compress_min_bytes* are zlib-deflated and framed
    under :data:`FRAME_MAGIC_DEFLATE` — but only when compression actually
    wins, so already-dense payloads never inflate on the wire.  Pass
    ``compress_min_bytes=None`` to force plain frames.
    """
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameFormatError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    magic = FRAME_MAGIC
    if compress_min_bytes is not None and len(payload) >= compress_min_bytes:
        compressed = zlib.compress(payload, 6)
        if len(compressed) < len(payload):
            magic = FRAME_MAGIC_DEFLATE
            payload = compressed
    return _HEADER.pack(magic, len(payload)) + payload


def _inflate_payload(payload: bytes) -> bytes:
    """Inflate a CRGZ payload under the frame size bound (zip-bomb guard)."""
    inflater = zlib.decompressobj()
    try:
        raw = inflater.decompress(payload, MAX_FRAME_BYTES + 1)
    except zlib.error as error:
        raise FrameFormatError(f"corrupt compressed frame payload: {error}") from error
    if len(raw) > MAX_FRAME_BYTES:
        raise FrameFormatError(
            f"compressed frame inflates past MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    if not inflater.eof or inflater.unused_data:
        raise FrameFormatError(
            "compressed frame payload is not a single complete zlib stream"
        )
    return raw


class FrameAssembler:
    """Incremental frame parser over an untrusted byte stream.

    Feed raw socket bytes with :meth:`feed`; :meth:`next_message` yields
    complete decoded messages one at a time (``None`` while incomplete).
    Pure and socket-free, so the strict-rejection properties — garbage
    prefix, oversized length, truncation, non-JSON payload — are directly
    property-testable.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise FrameFormatError(f"frame data must be bytes, got {type(data).__name__}")
        self._buffer.extend(data)

    def next_message(self) -> Optional[Dict[str, object]]:
        """The next complete message, or ``None`` until more bytes arrive.

        Raises :class:`FrameFormatError` as soon as the stream is provably
        corrupt — callers must drop the connection, because a desynced
        length-prefixed stream cannot be re-synchronized.
        """
        if len(self._buffer) < _HEADER.size:
            return None
        magic, length = _HEADER.unpack_from(self._buffer)
        if magic not in (FRAME_MAGIC, FRAME_MAGIC_DEFLATE):
            raise FrameFormatError(
                f"bad frame magic {bytes(magic)!r} "
                f"(expected {FRAME_MAGIC!r} or {FRAME_MAGIC_DEFLATE!r})"
            )
        if length > MAX_FRAME_BYTES:
            raise FrameFormatError(
                f"frame length {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
            )
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[_HEADER.size : end])
        del self._buffer[:end]
        if magic == FRAME_MAGIC_DEFLATE:
            payload = _inflate_payload(payload)
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FrameFormatError(f"frame payload is not valid JSON: {error}") from error
        if not isinstance(message, dict):
            raise FrameFormatError(
                f"frame payload must be a JSON object, got {type(message).__name__}"
            )
        return message

    def expect_end(self) -> None:
        """Assert the stream ended on a frame boundary (EOF hygiene)."""
        if self._buffer:
            raise FrameFormatError(
                f"stream ended mid-frame with {len(self._buffer)} buffered byte(s)"
            )


def decode_frame(blob: bytes) -> Dict[str, object]:
    """Strictly decode exactly one frame from *blob* (no trailing bytes).

    The whole-blob counterpart of :class:`FrameAssembler` used by tests and
    tools; any prefix garbage, truncation or trailing junk raises
    :class:`FrameFormatError`.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise FrameFormatError(f"frame blob must be bytes, got {type(blob).__name__}")
    assembler = FrameAssembler()
    assembler.feed(bytes(blob))
    message = assembler.next_message()
    if message is None:
        raise FrameFormatError("truncated frame")
    if assembler.buffered_bytes:
        raise FrameFormatError(
            f"{assembler.buffered_bytes} trailing byte(s) after the frame"
        )
    return message


# --------------------------------------------------------------------- #
# Message codec: shard ops and results over JSON
# --------------------------------------------------------------------- #


def _encode_matrices(
    matrices: Optional[Dict[str, ObfuscationMatrix]],
) -> Optional[Dict[str, object]]:
    if matrices is None:
        return None
    return {str(root_id): matrix.to_dict() for root_id, matrix in matrices.items()}


def _decode_matrices(payload: object) -> Optional[Dict[str, ObfuscationMatrix]]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise FrameFormatError("matrices payload must be an object or null")
    decoded: Dict[str, ObfuscationMatrix] = {}
    for root_id, matrix_payload in payload.items():
        try:
            decoded[str(root_id)] = ObfuscationMatrix.from_dict(matrix_payload)
        except (KeyError, TypeError, ValueError, MatrixValidationError) as error:
            raise FrameFormatError(
                f"invalid matrix payload for {root_id!r}: {error}"
            ) from error
    return decoded


def encode_request(op: str, ticket: int, payload: object) -> Dict[str, object]:
    """One shard op as a JSON-friendly request message.

    The op vocabulary and payload shapes are exactly those of
    :class:`~repro.service.shard.ShardOpExecutor`; only the encodings that
    are not JSON-native change representation (`import_cache`'s snapshot
    blob rides as its UTF-8 text — it *is* versioned JSON already).
    """
    if op == "build":
        privacy_level, delta, epsilon, use_cache = payload
        body: object = {
            "privacy_level": int(privacy_level),
            "delta": int(delta),
            "epsilon": float(epsilon),
            "use_cache": bool(use_cache),
        }
    elif op == "set_priors":
        priors, normalize, version = payload
        body = {
            "priors": {str(node): float(mass) for node, mass in priors.items()},
            "normalize": bool(normalize),
            "version": int(version),
        }
    elif op == "import_cache":
        if not isinstance(payload, (bytes, bytearray)):
            raise FrameFormatError("import_cache payload must be a snapshot blob")
        body = {"snapshot": bytes(payload).decode("utf-8")}
    else:
        # invalidate (int | None), export_cache (int), diagnostics / ping (None)
        body = payload
    return {"kind": "request", "op": str(op), "ticket": int(ticket), "payload": body}


def decode_request(message: Dict[str, object]) -> Tuple[str, int, object]:
    """Inverse of :func:`encode_request`; strict about shapes."""
    op = message.get("op")
    ticket = message.get("ticket")
    if not isinstance(op, str):
        raise FrameFormatError(f"request op must be a string, got {op!r}")
    if isinstance(ticket, bool) or not isinstance(ticket, int):
        raise FrameFormatError(f"request ticket must be an integer, got {ticket!r}")
    body = message.get("payload")
    try:
        if op == "build":
            if not isinstance(body, dict):
                raise FrameFormatError("build payload must be an object")
            payload: object = (
                int(body["privacy_level"]),
                int(body["delta"]),
                float(body["epsilon"]),
                bool(body["use_cache"]),
            )
        elif op == "set_priors":
            if not isinstance(body, dict):
                raise FrameFormatError("set_priors payload must be an object")
            priors = body["priors"]
            if not isinstance(priors, dict):
                raise FrameFormatError("set_priors priors must be an object")
            payload = (
                {str(node): float(mass) for node, mass in priors.items()},
                bool(body["normalize"]),
                int(body["version"]),
            )
        elif op == "import_cache":
            if not isinstance(body, dict) or not isinstance(body.get("snapshot"), str):
                raise FrameFormatError("import_cache payload must carry a snapshot string")
            payload = body["snapshot"].encode("utf-8")
        else:
            payload = body
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, FrameFormatError):
            raise
        raise FrameFormatError(f"malformed {op!r} request payload: {error}") from error
    return op, ticket, payload


def encode_result(op: str, result: object) -> object:
    """Encode one op result for the wire (op-specific matrix handling)."""
    if op == "build":
        assert isinstance(result, dict)
        encoded = dict(result)
        encoded["matrices"] = _encode_matrices(result["matrices"])
        return encoded
    if op == "export_cache":
        assert isinstance(result, list)
        entries = []
        for entry in result:
            encoded_entry = dict(entry)
            encoded_entry["matrices"] = _encode_matrices(entry["matrices"])
            entries.append(encoded_entry)
        return entries
    return result


def decode_result(op: str, result: object) -> object:
    """Inverse of :func:`encode_result`."""
    try:
        if op == "build":
            if not isinstance(result, dict):
                raise FrameFormatError("build result must be an object")
            decoded = dict(result)
            decoded["matrices"] = _decode_matrices(result.get("matrices")) or {}
            return decoded
        if op == "export_cache":
            if not isinstance(result, list):
                raise FrameFormatError("export_cache result must be a list")
            entries = []
            for entry in result:
                if not isinstance(entry, dict):
                    raise FrameFormatError("export_cache entries must be objects")
                decoded_entry = dict(entry)
                decoded_entry["matrices"] = _decode_matrices(entry.get("matrices"))
                entries.append(decoded_entry)
            return entries
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, FrameFormatError):
            raise
        raise FrameFormatError(f"malformed {op!r} result: {error}") from error
    return result


#: Exception types reconstructed by name on the client side, most specific
#: first.  Everything here must be constructible from a single message
#: string; anything unlisted arrives as :class:`RemoteShardError` (the
#: pool treats it as a non-retryable request failure, like any other
#: engine-raised error).
_ERROR_REGISTRY: Tuple[Tuple[str, type], ...] = (
    ("SnapshotFormatError", SnapshotFormatError),
    ("FrameFormatError", FrameFormatError),
    ("MatrixValidationError", MatrixValidationError),
    ("ShardUnavailableError", ShardUnavailableError),
    ("ValueError", ValueError),
    ("TypeError", TypeError),
    ("KeyError", KeyError),
    ("OverflowError", OverflowError),
    ("RemoteShardError", RemoteShardError),
)


def encode_error(error: BaseException) -> Dict[str, str]:
    """Encode an exception as its closest reconstructible registry type.

    Walking the registry (most specific first) preserves the *family* of
    the error — a ``SnapshotFormatError`` subclass still arrives as a
    ``SnapshotFormatError``, an exotic ``ValueError`` subclass still maps
    to HTTP 400 on the far side — even when the exact class is unknown to
    the peer.
    """
    name = "RemoteShardError"
    for registered, cls in _ERROR_REGISTRY:
        if isinstance(error, cls):
            name = registered
            break
    return {"type": name, "message": str(error)}


def decode_error(payload: object) -> BaseException:
    """Reconstruct a wire error (unknown types become RemoteShardError)."""
    if not isinstance(payload, dict):
        return RemoteShardError(f"malformed remote error payload: {payload!r}")
    name = payload.get("type")
    message = str(payload.get("message", ""))
    for registered, cls in _ERROR_REGISTRY:
        if registered == name:
            return cls(message)
    return RemoteShardError(f"{name}: {message}")


# --------------------------------------------------------------------- #
# Server: one engine replica behind a listening socket
# --------------------------------------------------------------------- #


class NetShardServer:
    """Host one :class:`ForestEngine` replica behind a TCP listener.

    One pool connection is served at a time (the pool is the only client);
    the engine — and its warm forest cache — persists across connections,
    so a reconnecting parent finds the replica exactly as warm as it left
    it.  Two threads split the work so liveness survives long builds:

    * the **reader** parses frames, echoes heartbeats immediately, and
      queues requests;
    * the **worker** runs ops serially through the shared
      :class:`~repro.service.shard.ShardOpExecutor` and writes responses.

    Failures are answers: op-level errors ship back typed under their
    ticket, undecodable streams get a best-effort ``protocol_error`` frame
    and a dropped connection — the server never dies on client input.  A
    ``shutdown`` frame (an operator/tooling affordance — the pool itself
    only ever says ``bye``, because the remote process belongs to its
    host's supervisor) stops the
    server; a ``bye`` frame only ends the connection.
    """

    def __init__(
        self,
        spec: ShardSpec,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._spec = spec
        self._executor = ShardOpExecutor(spec)
        self._listener = socket.create_server((host, port), backlog=4)
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._work: "queue_module.Queue[Optional[Tuple[int, str, int, object]]]" = (
            queue_module.Queue()
        )
        self._conn_lock = threading.Lock()
        self._conn: Optional[socket.socket] = None
        self._conn_id = 0

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------ #
    # Sending (reader and worker threads share the connection)
    # ------------------------------------------------------------------ #

    def _send(self, conn_id: int, message: Dict[str, object]) -> None:
        """Write one frame to the connection iff it is still the current one."""
        frame = encode_frame(message)
        with self._conn_lock:
            if self._conn is None or self._conn_id != conn_id:
                return  # the client reconnected; drop the stale answer
            try:
                self._conn.sendall(frame)
            except OSError:
                pass  # the reader will notice the dead socket and move on

    # ------------------------------------------------------------------ #
    # Worker thread: serial op execution
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            conn_id, op, ticket, payload = item
            try:
                result = encode_result(op, self._executor.execute(op, payload))
            except BaseException as error:  # noqa: BLE001 - shipped to the caller
                response: Dict[str, object] = {
                    "kind": "response",
                    "op": op,
                    "ticket": ticket,
                    "status": "error",
                    "error": encode_error(error),
                }
            else:
                response = {
                    "kind": "response",
                    "op": op,
                    "ticket": ticket,
                    "status": "ok",
                    "result": result,
                }
            self._send(conn_id, response)

    # ------------------------------------------------------------------ #
    # Serving loop
    # ------------------------------------------------------------------ #

    def serve_forever(self) -> None:
        """Accept and serve pool connections until ``shutdown``/stop."""
        worker = threading.Thread(
            target=self._worker,
            name=f"netshard-{self._spec.shard_id}-worker",
            daemon=True,
        )
        worker.start()
        logger.info(
            "netshard %d serving on %s:%d (pid %d)",
            self._spec.shard_id,
            self.host,
            self.port,
            os.getpid(),
        )
        try:
            while not self._stop.is_set():
                try:
                    conn, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed by shutdown()
                self._serve_connection(conn, peer)
        finally:
            self._work.put(None)
            self.shutdown()

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Blocking socket: responses must be all-or-nothing sendalls (reads
        # are select()-gated, so they never block the loop).
        conn.settimeout(None)
        with self._conn_lock:
            self._conn_id += 1
            conn_id = self._conn_id
            self._conn = conn
        logger.debug("netshard %d: client %s connected", self._spec.shard_id, peer)
        self._send(conn_id, {"kind": "ready", "shard": self._executor.ready_announcement()})
        assembler = FrameAssembler()
        try:
            last_heard = time.monotonic()
            while not self._stop.is_set():
                readable, _, _ = select.select([conn], [], [], 0.2)
                if not readable:
                    if time.monotonic() - last_heard > CLIENT_IDLE_TIMEOUT_S:
                        logger.warning(
                            "netshard %d: client silent for %.0f s; dropping connection",
                            self._spec.shard_id,
                            CLIENT_IDLE_TIMEOUT_S,
                        )
                        return
                    continue
                try:
                    chunk = conn.recv(1 << 16)
                except OSError:
                    return
                if not chunk:
                    return  # client went away; back to accepting
                last_heard = time.monotonic()
                assembler.feed(chunk)
                while True:
                    try:
                        message = assembler.next_message()
                    except FrameFormatError as error:
                        # Strict decode: a desynced length-prefixed stream
                        # cannot be re-synchronized — answer (best effort)
                        # and drop the connection, never the server.
                        logger.warning(
                            "netshard %d: protocol error from %s: %s",
                            self._spec.shard_id,
                            peer,
                            error,
                        )
                        self._send(
                            conn_id,
                            {"kind": "protocol_error", "detail": str(error)},
                        )
                        return
                    if message is None:
                        break
                    if not self._dispatch(conn_id, message):
                        return
        finally:
            with self._conn_lock:
                if self._conn is conn:
                    self._conn = None
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, conn_id: int, message: Dict[str, object]) -> bool:
        """Route one decoded message; False ends the connection."""
        kind = message.get("kind")
        if kind == "heartbeat":
            # Echoed from the reader thread so liveness is orthogonal to
            # whatever the worker is building right now.
            self._send(conn_id, message)
            return True
        if kind == "request":
            try:
                op, ticket, payload = decode_request(message)
            except FrameFormatError as error:
                ticket_field = message.get("ticket")
                if isinstance(ticket_field, int) and not isinstance(ticket_field, bool):
                    # The envelope is intact — answer the ticket with a
                    # typed client error instead of dropping the stream.
                    self._send(
                        conn_id,
                        {
                            "kind": "response",
                            "op": str(message.get("op")),
                            "ticket": ticket_field,
                            "status": "error",
                            "error": encode_error(error),
                        },
                    )
                    return True
                self._send(conn_id, {"kind": "protocol_error", "detail": str(error)})
                return False
            self._work.put((conn_id, op, ticket, payload))
            return True
        if kind == "bye":
            logger.debug("netshard %d: client said bye", self._spec.shard_id)
            return False
        if kind == "shutdown":
            logger.info("netshard %d: shutdown requested; retiring", self._spec.shard_id)
            self._stop.set()
            return False
        self._send(
            conn_id,
            {"kind": "protocol_error", "detail": f"unknown frame kind {kind!r}"},
        )
        return False

    def shutdown(self) -> None:
        """Stop serving and release sockets (idempotent, thread-safe)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass


def serve_netshard(spec: ShardSpec, host: str, port: int, port_queue=None) -> None:
    """Process entry point: host *spec* on ``host:port`` until shutdown.

    Picklable (usable as a ``multiprocessing`` target, which is how the
    tests and benchmarks stand up socket shards).  With ``port=0`` the OS
    assigns the port; pass *port_queue* to learn the bound port — the
    race-free alternative to probing for a free port up front.
    """
    server = NetShardServer(spec, host=host, port=port)
    if port_queue is not None:
        port_queue.put(server.port)
    server.serve_forever()


# --------------------------------------------------------------------- #
# Client: the pool-side remote shard handle
# --------------------------------------------------------------------- #


class _RemoteChannel:
    """Queue-shaped sender over one socket (the remote ``request_queue``).

    Matches the surface :class:`~repro.service.shard.ShardHandle` and
    :class:`~repro.service.pool.EnginePool` use on a ``multiprocessing``
    queue — ``put`` / ``put_nowait`` / ``close`` / ``cancel_join_thread`` —
    so the pool's submit, drain and close paths work unchanged on remote
    slots.  Send failures are swallowed exactly like a put to a dead
    worker's queue: the session reader detects the dead socket within the
    liveness timeout and the crash path fails the tickets over.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()

    def send_message(self, message: Dict[str, object]) -> None:
        frame = encode_frame(message)
        with self._send_lock:
            self._sock.sendall(frame)

    def put(self, item) -> None:
        try:
            if item is None:
                # Pool close / drain retirement.  A *bye*, never a shutdown:
                # the pool does not own the remote process — its supervisor
                # does — so retiring the slot only ends the connection.  The
                # server keeps its engine (and cache) and a later respawn()/
                # rebalance() or a restarted head node redials it warm.  The
                # protocol's "shutdown" frame stays for operators and tools.
                self.send_message({"kind": "bye"})
            else:
                op, ticket, payload = item
                self.send_message(encode_request(op, ticket, payload))
        except OSError:
            pass  # dead socket: the reader notices within liveness_timeout_s

    put_nowait = put

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def cancel_join_thread(self) -> None:  # multiprocessing.Queue parity
        pass


class NetShardHandle(ShardHandle):
    """Parent-side handle for a shard living across a socket.

    Same verified lifecycle state machine, ticket rendezvous and pool
    bookkeeping as a local :class:`~repro.service.shard.ShardHandle`; what
    changes is session management — instead of a spawned worker process and
    a queue collector, a *session thread* dials the remote server (with
    backoff), heartbeats it, resolves response frames, and reports death to
    the pool's crash handler, which redials through the normal respawn
    path (bounded by ``respawn_limit``).
    """

    is_remote = True

    def __init__(
        self,
        slot: int,
        address: Tuple[str, int],
        *,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        liveness_timeout_s: float = LIVENESS_TIMEOUT_S,
        connect_timeout_s: float = 5.0,
    ) -> None:
        super().__init__(slot)
        self.address = (str(address[0]), int(address[1]))
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.liveness_timeout_s = float(liveness_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.reconnects = 0

    def info(self) -> Dict[str, object]:
        payload = super().info()
        with self.lock:
            payload["remote"] = True
            payload["address"] = f"{self.address[0]}:{self.address[1]}"
            payload["reconnects"] = self.reconnects
            # No local process to probe: a remote slot is "alive" while its
            # session holds the connection open (READY or mid-drain).
            payload["alive"] = self.state in (ShardState.READY, ShardState.DRAINING)
        return payload

    # ------------------------------------------------------------------ #
    # Session lifecycle (called by the pool)
    # ------------------------------------------------------------------ #

    def start_session(
        self,
        generation: int,
        *,
        on_ready: Callable[["NetShardHandle", int, Optional[int]], None],
        on_crash: Callable[["NetShardHandle", int], None],
    ) -> None:
        """Dial and serve one connection generation on a daemon thread."""
        threading.Thread(
            target=self._session,
            args=(generation, on_ready, on_crash),
            name=f"corgi-netshard-{self.slot}-session",
            daemon=True,
        ).start()

    def _stale(self, generation: int) -> bool:
        with self.lock:
            return self.generation != generation or self.state in (
                ShardState.STOPPED,
                ShardState.DEAD,
                ShardState.DRAINED,
            )

    def _dial(self, generation: int) -> Optional[socket.socket]:
        """Connect with decorrelated-jitter backoff, bounded by ``connect_timeout_s``."""
        deadline = time.monotonic() + self.connect_timeout_s
        attempt = 0
        delay = 0.0
        while True:
            if self._stale(generation):
                return None
            try:
                sock = socket.create_connection(self.address, timeout=1.0)
            except OSError as error:
                delay = next_backoff_delay(delay)
                attempt += 1
                if time.monotonic() + delay > deadline:
                    logger.warning(
                        "netshard slot %d: cannot reach %s:%d (%s) after %d attempt(s)",
                        self.slot,
                        self.address[0],
                        self.address[1],
                        error,
                        attempt,
                    )
                    return None
                time.sleep(delay)
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Fully blocking from here on (create_connection left the dial
            # timeout armed): sends must be all-or-nothing — a partial
            # sendall on a non-blocking or timing-out socket would leave
            # half a frame on the wire and permanently desync the
            # length-prefixed stream.  Reads never block: the session loop
            # polls with select() before every recv.
            sock.settimeout(None)
            return sock

    def _session(self, generation: int, on_ready, on_crash) -> None:
        sock = self._dial(generation)
        if sock is None:
            if not self._stale(generation):
                on_crash(self, generation)
            return
        channel = _RemoteChannel(sock)
        with self.lock:
            if self.generation != generation:
                channel.close()
                return
            self.request_queue = channel
            self.response_queue = None
            if generation > 1:
                self.reconnects += 1
        hb_stop = threading.Event()

        def heartbeat() -> None:
            seq = 0
            while not hb_stop.wait(self.heartbeat_interval_s):
                seq += 1
                try:
                    channel.send_message({"kind": "heartbeat", "seq": seq})
                except OSError:
                    return  # the reader is about to notice

        threading.Thread(
            target=heartbeat,
            name=f"corgi-netshard-{self.slot}-heartbeat",
            daemon=True,
        ).start()
        try:
            self._read_loop(sock, generation, on_ready, on_crash)
        finally:
            hb_stop.set()
            channel.close()

    def _read_loop(self, sock: socket.socket, generation: int, on_ready, on_crash) -> None:
        assembler = FrameAssembler()
        last_seen = time.monotonic()
        poll_s = min(self.heartbeat_interval_s, self.liveness_timeout_s / 4.0)
        while True:
            if self._stale(generation):
                return  # orderly end (drain, close, superseded generation)
            try:
                readable, _, _ = select.select([sock], [], [], poll_s)
            except (OSError, ValueError):
                break  # socket closed under us
            now = time.monotonic()
            if not readable:
                if now - last_seen > self.liveness_timeout_s:
                    logger.warning(
                        "netshard slot %d: no frames for %.2f s (liveness %.2f s); "
                        "declaring the remote shard dead",
                        self.slot,
                        now - last_seen,
                        self.liveness_timeout_s,
                    )
                    break
                continue
            try:
                chunk = sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                break
            if not chunk:
                break  # EOF: server went away
            last_seen = now
            try:
                assembler.feed(chunk)
                while True:
                    message = assembler.next_message()
                    if message is None:
                        break
                    self._handle_message(message, generation, on_ready)
            except FrameFormatError as error:
                logger.warning(
                    "netshard slot %d: corrupt frame stream (%s); reconnecting",
                    self.slot,
                    error,
                )
                break
        if not self._stale(generation):
            on_crash(self, generation)

    def _handle_message(self, message: Dict[str, object], generation: int, on_ready) -> None:
        kind = message.get("kind")
        if kind == "heartbeat":
            return  # any frame already refreshed last_seen
        if kind == "ready":
            shard_info = message.get("shard")
            announced = None
            if isinstance(shard_info, dict):
                version = shard_info.get("priors_version")
                if isinstance(version, int) and not isinstance(version, bool):
                    announced = version
            on_ready(self, generation, announced)
            return
        if kind == "response":
            op = message.get("op")
            ticket = message.get("ticket")
            if not isinstance(op, str) or isinstance(ticket, bool) or not isinstance(ticket, int):
                raise FrameFormatError(f"malformed response envelope: {message!r}")
            if message.get("status") == "ok":
                self.resolve(ticket, "ok", decode_result(op, message.get("result")))
            else:
                self.resolve(ticket, "error", decode_error(message.get("error")))
            return
        if kind == "protocol_error":
            raise FrameFormatError(
                f"remote shard reported a protocol error: {message.get('detail')!r}"
            )
        raise FrameFormatError(f"unknown frame kind {kind!r}")


def parse_shard_hosts(text: str) -> List[Tuple[str, int]]:
    """Parse ``host:port,host:port,...`` into address tuples (strict)."""
    addresses: List[Tuple[str, int]] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        host, separator, port_text = token.rpartition(":")
        if not separator or not host:
            raise ValueError(f"shard host {token!r} must look like host:port")
        try:
            port = int(port_text)
        except ValueError as error:
            raise ValueError(f"shard host {token!r} has a non-integer port") from error
        if not 0 < port < 65536:
            raise ValueError(f"shard host {token!r} has an out-of-range port")
        addresses.append((host, port))
    if not addresses:
        raise ValueError("no shard hosts given")
    return addresses


# --------------------------------------------------------------------- #
# CLI: python -m repro.service.netshard
# --------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    """Host one engine replica over TCP for a remote EnginePool.

    Builds the same workload tree and engine configuration the serving
    runner builds (``--scale`` must match across every replica and the
    head node — replicas of one ring serve one tree), binds the listener
    and serves until a shutdown frame or Ctrl-C.
    """
    parser = argparse.ArgumentParser(
        description="Serve one CORGI engine shard over a TCP socket"
    )
    parser.add_argument("--host", default="0.0.0.0", help="bind address")
    parser.add_argument("--port", type=int, required=True, help="bind port (0 = ephemeral)")
    parser.add_argument("--scale", default=None, help="workload scale: small (default) or paper")
    parser.add_argument(
        "--shard-id", type=int, default=0, help="shard id announced to the pool (cosmetic)"
    )
    parser.add_argument(
        "--forest-ttl",
        type=float,
        default=0.0,
        help="forest-cache TTL in seconds (0 = entries never expire); must match the head",
    )
    parser.add_argument("--verbose", action="store_true", help="enable debug logging")
    args = parser.parse_args(argv)

    # Heavy imports deferred so `--help` stays instant.
    from repro.experiments.config import get_scale
    from repro.experiments.workloads import build_workload
    from repro.server.engine import ServerConfig
    from repro.utils.logging import configure_cli_logging

    configure_cli_logging(verbose=args.verbose)
    if args.forest_ttl < 0:
        parser.error("--forest-ttl must be non-negative")
    config = get_scale(args.scale)
    workload = build_workload(config)
    server_config = ServerConfig(
        epsilon=config.epsilon,
        num_targets=config.num_targets,
        robust_iterations=config.robust_iterations,
        solver_method=config.solver_method,
        solver_backend=config.solver_backend,
        forest_ttl_s=args.forest_ttl,
    )
    spec = ShardSpec(
        shard_id=args.shard_id,
        tree=workload.tree,
        config=server_config,
        targets=workload.targets,
    )
    server = NetShardServer(spec, host=args.host, port=args.port)
    print(f"netshard {args.shard_id} serving on {server.host}:{server.port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
