"""Exception hierarchy for the core obfuscation machinery."""

from __future__ import annotations


class CORGIError(Exception):
    """Base class for all library-specific errors."""


class MatrixValidationError(CORGIError):
    """An obfuscation matrix fails a structural invariant (shape, stochasticity, labels)."""


class InfeasibleMatrixError(CORGIError):
    """The LP for an obfuscation matrix has no feasible solution.

    With plain Geo-Ind constraints the uniform matrix is always feasible, so
    this error normally indicates an over-constrained robust formulation
    (e.g. a reserved privacy budget that exceeded ε for some pair) or a
    solver failure; the message carries the solver status for diagnosis.
    """

    def __init__(self, message: str, solver_status: str | None = None) -> None:
        super().__init__(message)
        self.solver_status = solver_status


class PruningError(CORGIError):
    """Matrix pruning cannot be applied (unknown labels, pruning every location, ...)."""


class PrecisionReductionError(CORGIError):
    """Matrix precision reduction received inconsistent matrix/tree arguments."""
