"""Sharded multi-process engine pool behind the CORGI service API.

PR 2 made serving thread-safe in one process; this module makes it scale
with cores and survive worker death.  An :class:`EnginePool` hosts N shard
processes (see :mod:`repro.service.shard`), each running its own
:class:`~repro.server.engine.ForestEngine` replica over the same tree and
config, and exposes the exact forest-provider surface a
:class:`~repro.service.service.CORGIService` expects — so the whole
engine → service → transport stack gains process parallelism without any
caller changing.

Routing is a **consistent-hash ring** over the normalized request key
``(privacy_level, δ, effective ε)``: identical requests always land on the
same shard, so the service's single-flight coalescing keeps collapsing a
burst of identical requests into one build *on one process*, while distinct
keys spread across shards and run truly in parallel.  The ring also defines
each key's failover order — when a shard dies mid-request, the pool fails
the in-flight tickets, retries them on the next live shard along the ring,
and respawns the dead slot in the background (up to ``respawn_limit`` times
per slot).  Worker death is detected by per-shard collector threads that
poll ``Process.is_alive()`` whenever the response queue goes quiet.

Cache lifecycle is a broadcast concern: :meth:`EnginePool.invalidate` and
:meth:`EnginePool.publish_priors` fan out to every shard so a live prior
update flushes all replicas' caches at once (exposed on the wire as
``POST /admin/priors`` / ``POST /admin/invalidate``).

Determinism: every shard runs the same serial engine code path, so pooled
forests are byte-identical to single-process ones for every shard count.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import CORGIError
from repro.core.objective import TargetDistribution
from repro.server.engine import ServerConfig, validate_prior_masses
from repro.server.privacy_forest import PrivacyForest
from repro.service.shard import (
    CONTROL_TICKET,
    ShardCrashedError,
    ShardHandle,
    ShardSpec,
    ShardState,
    ShardUnavailableError,
    shard_worker_main,
)
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "EnginePool",
    "EnginePoolError",
    "PoolTimeoutError",
    "ShardCrashedError",
    "ShardState",
]

#: Virtual nodes per shard on the consistent-hash ring.  Plenty for even
#: spread at the shard counts a single host runs (2–64).
RING_VNODES = 32

#: How often collector threads poll ``Process.is_alive()`` while their
#: response queue is silent — the worst-case crash-detection latency.
HEALTH_POLL_INTERVAL_S = 0.1


class EnginePoolError(CORGIError):
    """The pool cannot serve the request (every shard dead, pool closed…)."""


class PoolTimeoutError(EnginePoolError):
    """A shard did not answer within ``request_timeout_s``."""


def _stable_hash(token: str) -> int:
    """64-bit stable hash (process-independent, unlike builtin ``hash``)."""
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class EnginePool:
    """N forest-engine replicas in worker processes behind one provider API.

    Parameters
    ----------
    tree:
        The location tree to serve.  The parent keeps its own handle (for
        request normalization and reattaching returned matrices); each
        worker receives a pickled replica at spawn.
    config:
        Engine configuration, shared by every shard (snapshot — mutating
        the caller's object afterwards is inert, exactly like
        :class:`~repro.server.engine.ForestEngine`).  ``max_workers`` is
        forced to 1 inside shards: the shards are the parallelism.
    targets:
        Optional explicit service-target distribution, forwarded verbatim.
    num_shards:
        Worker-process count.  Sized to cores for CPU-bound LP work.
    respawn_limit:
        How many times one slot may be respawned after a crash before it is
        declared permanently dead.
    request_timeout_s:
        Upper bound on one request's wait, including failover retries.
    chaos_build_delay_s:
        Test/chaos hook: every shard sleeps this long before each build,
        widening the in-flight window so crash injection is deterministic.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).

    The pool satisfies the forest-provider duck type
    (``generate_privacy_forest`` / ``build_forest_traced`` / ``tree`` /
    ``config`` / ``publish_leaf_priors`` / ``cache_diagnostics``), so both
    ``CORGIService(EnginePool(...))`` and ``CORGIClient(tree,
    EnginePool(...))`` work unchanged.
    """

    def __init__(
        self,
        tree: LocationTree,
        config: Optional[ServerConfig] = None,
        *,
        targets: Optional[TargetDistribution] = None,
        num_shards: int = 2,
        respawn_limit: int = 3,
        request_timeout_s: float = 600.0,
        chaos_build_delay_s: float = 0.0,
        start_method: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if respawn_limit < 0:
            raise ValueError(f"respawn_limit must be non-negative, got {respawn_limit}")
        self.tree = tree
        self.config = replace(config) if config is not None else ServerConfig()
        self.config.validate()
        self.num_shards = int(num_shards)
        self.respawn_limit = int(respawn_limit)
        self.request_timeout_s = float(request_timeout_s)
        self._chaos_build_delay_s = float(chaos_build_delay_s)
        self._targets = targets
        self._ctx = multiprocessing.get_context(start_method)
        self._lifecycle_lock = threading.Lock()
        self._ticket_lock = threading.Lock()
        # Serializes parent-tree prior mutation against parent-side prior
        # reads (publish_leaf_priors), so the admin read can never observe a
        # half-applied live update.
        self._tree_lock = threading.Lock()
        self._tickets = itertools.count(1)
        self._closed = False
        self._stats = {"respawns": 0, "retries": 0, "crash_failures": 0}
        # Live-prior-update bookkeeping: a shard spawned (and hence pickled
        # the tree) before the latest publish_priors must have the update
        # re-sent when it becomes READY — see _collect's READY handler.
        self._priors_version = 0
        self._current_priors: Optional[Tuple[Dict[str, float], bool]] = None
        self._ring: List[Tuple[int, int]] = self._build_ring()
        self._shards = [ShardHandle(slot) for slot in range(self.num_shards)]
        for shard in self._shards:
            self._spawn(shard)

    # ------------------------------------------------------------------ #
    # Consistent-hash routing
    # ------------------------------------------------------------------ #

    def _build_ring(self) -> List[Tuple[int, int]]:
        points = [
            (_stable_hash(f"corgi-shard-{slot}-vnode-{vnode}"), slot)
            for slot in range(self.num_shards)
            for vnode in range(RING_VNODES)
        ]
        points.sort()
        return points

    def route_key(self, key: Tuple[int, int, float]) -> List[int]:
        """Failover order for a normalized request key: all slots, ring order.

        The first entry is the key's home shard; later entries are the
        siblings tried (in order) when earlier ones are down.  Deterministic
        across processes and runs — the property the routing tests pin.
        """
        privacy_level, delta, epsilon = key
        point = _stable_hash(f"{int(privacy_level)}:{int(delta)}:{float(epsilon)!r}")
        start = bisect.bisect_right(self._ring, (point, self.num_shards))
        order: List[int] = []
        seen = set()
        for index in range(len(self._ring)):
            _, slot = self._ring[(start + index) % len(self._ring)]
            if slot not in seen:
                seen.add(slot)
                order.append(slot)
                if len(order) == self.num_shards:
                    break
        return order

    def shard_for(
        self, privacy_level: int, delta: int, *, epsilon: Optional[float] = None
    ) -> int:
        """Home shard slot of one request (after ε-default resolution)."""
        return self.route_key(self._normalize(privacy_level, delta, epsilon))[0]

    def _normalize(
        self, privacy_level: int, delta: int, epsilon: Optional[float]
    ) -> Tuple[int, int, float]:
        effective = float(epsilon if epsilon is not None else self.config.epsilon)
        return (int(privacy_level), int(delta), effective)

    # ------------------------------------------------------------------ #
    # Process lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, shard: ShardHandle) -> None:
        """(Re)launch one slot's worker process and its collector thread."""
        spec = ShardSpec(
            shard_id=shard.slot,
            tree=self.tree,
            config=self.config,
            targets=self._targets,
            chaos_build_delay_s=self._chaos_build_delay_s,
        )
        with shard.lock:
            if shard.state in (ShardState.STOPPED, ShardState.DEAD):
                # close() (or respawn exhaustion) won the race between the
                # crash handler releasing the lifecycle lock and this spawn —
                # the slot is terminal, nothing to launch.
                return
            if shard.state is not ShardState.STARTING:
                shard.transition(ShardState.STARTING)
            shard.generation += 1
            generation = shard.generation
            # Record which prior generation this worker will carry.  Read
            # *before* process.start(): any publish_priors bumping the
            # version after this read makes the READY handler re-send the
            # update (a publish landing in between merely causes one
            # redundant, idempotent re-send).
            shard.priors_version = self._priors_version
            request_queue = self._ctx.Queue()
            response_queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=shard_worker_main,
                args=(spec, request_queue, response_queue),
                name=f"corgi-shard-{shard.slot}",
                daemon=True,
            )
            shard.request_queue = request_queue
            shard.response_queue = response_queue
            shard.process = process
        process.start()
        collector = threading.Thread(
            target=self._collect,
            args=(shard, process, response_queue, generation),
            name=f"corgi-shard-{shard.slot}-collector",
            daemon=True,
        )
        collector.start()

    def _collect(self, shard: ShardHandle, process, response_queue, generation: int) -> None:
        """Drain one worker generation's responses; detect its death."""
        while True:
            try:
                message = response_queue.get(timeout=HEALTH_POLL_INTERVAL_S)
            except queue_module.Empty:
                with shard.lock:
                    stale = shard.generation != generation
                    terminal = shard.state in (ShardState.STOPPED, ShardState.DEAD)
                if stale or terminal:
                    return
                if not process.is_alive():
                    self._handle_crash(shard, generation)
                    return
                continue
            ticket, status, payload = message
            if ticket == CONTROL_TICKET:
                if status == "ready":
                    self._mark_ready(shard, generation)
                continue
            shard.resolve(ticket, status, payload)

    def _mark_ready(self, shard: ShardHandle, generation: int) -> None:
        """Transition a freshly-announced worker to READY.

        If the worker was spawned (tree pickled) before the latest
        ``publish_priors``, the update is queued *ahead of* the READY
        transition — the worker drains its queue serially, so the priors
        land before any request submitted post-READY can build on them.
        Without this, a shard respawned around a live update would serve
        forests from outdated priors forever.
        """
        with self._lifecycle_lock:
            current_version = self._priors_version
            current_priors = self._current_priors
        with shard.lock:
            if shard.generation != generation or shard.state is not ShardState.STARTING:
                return
            if current_priors is not None and shard.priors_version < current_version:
                shard.request_queue.put_nowait(
                    ("set_priors", self._next_ticket(), current_priors)
                )
                shard.priors_version = current_version
                logger.info(
                    "re-sent published priors (v%d) to respawned shard %d",
                    current_version,
                    shard.slot,
                )
            shard.transition(ShardState.READY)

    def _handle_crash(self, shard: ShardHandle, generation: int) -> None:
        """Crash path: fail in-flight tickets, respawn or declare the slot dead."""
        with self._lifecycle_lock:
            with shard.lock:
                if shard.generation != generation or shard.state in (
                    ShardState.STOPPED,
                    ShardState.DEAD,
                ):
                    return
                shard.transition(ShardState.CRASHED)
                exhausted = shard.respawns >= self.respawn_limit
                closed = self._closed
            failed = shard.fail_pending(
                ShardCrashedError(
                    f"shard {shard.slot} (generation {generation}) died mid-request"
                )
            )
            self._stats["crash_failures"] += failed
            logger.warning(
                "shard %d died (generation %d, %d request(s) in flight)",
                shard.slot,
                generation,
                failed,
            )
            if closed:
                with shard.lock:
                    shard.transition(ShardState.STOPPED)
                return
            if exhausted:
                with shard.lock:
                    shard.transition(ShardState.DEAD)
                logger.error(
                    "shard %d exceeded respawn_limit=%d; slot is permanently dead",
                    shard.slot,
                    self.respawn_limit,
                )
                return
            with shard.lock:
                shard.respawns += 1
            self._stats["respawns"] += 1
        self._spawn(shard)

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Block until every shard is READY or terminal (spawn rendezvous).

        Slots already DEAD or STOPPED are skipped *immediately* — the state
        is checked before any wait, so a permanently dead slot costs nothing
        instead of stalling the caller for the whole timeout.  If *no* slot
        reaches READY (e.g. the engine constructor raises in every worker),
        this raises :class:`EnginePoolError` instead of reporting a pool
        that cannot serve a single request as ready.
        """
        deadline = time.monotonic() + timeout_s
        ready = 0
        for shard in self._shards:
            while True:
                with shard.lock:
                    state = shard.state
                if state is ShardState.READY:
                    ready += 1
                    break
                if state in (ShardState.DEAD, ShardState.STOPPED):
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise PoolTimeoutError(
                        f"shard {shard.slot} not ready within {timeout_s:.1f} s "
                        f"(state {state.value})"
                    )
                # Short waits so a transition to a terminal state (which
                # never sets ready_event) is noticed promptly.
                shard.ready_event.wait(timeout=min(0.05, remaining))
        if ready == 0:
            raise EnginePoolError(
                f"no shard became ready ({self.num_shards} slot(s) dead or stopped); "
                "the pool cannot serve"
            )

    def close(self) -> None:
        """Stop every shard and release resources (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            with shard.lock:
                if shard.state in (ShardState.STARTING, ShardState.READY):
                    try:
                        shard.request_queue.put_nowait(None)
                    except (ValueError, OSError, queue_module.Full):
                        pass
                if shard.state not in (ShardState.STOPPED, ShardState.DEAD):
                    shard.transition(ShardState.STOPPED)
                process = shard.process
            shard.fail_pending(EnginePoolError("engine pool closed"))
            if process is not None:
                try:
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=2.0)
                except (AssertionError, ValueError):
                    pass  # a respawn raced close() and never start()ed this one
        for shard in self._shards:
            for q in (shard.request_queue, shard.response_queue):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
        logger.info("engine pool closed (%d shards)", self.num_shards)

    def __enter__(self) -> "EnginePool":
        try:
            self.wait_ready()
        except BaseException:
            # __exit__ never runs when __enter__ raises — clean up here or
            # leak every worker process and collector thread.
            self.close()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Routed requests with failover
    # ------------------------------------------------------------------ #

    def _next_ticket(self) -> int:
        with self._ticket_lock:
            return next(self._tickets)

    def _pick_shard(self, key: Tuple[int, int, float]) -> Optional[ShardHandle]:
        """First READY shard along the key's ring order; None = worth waiting."""
        any_pending = False
        for slot in self.route_key(key):
            shard = self._shards[slot]
            with shard.lock:
                state = shard.state
            if state is ShardState.READY:
                return shard
            if state in (ShardState.STARTING, ShardState.CRASHED):
                any_pending = True
        if any_pending:
            return None
        raise EnginePoolError(
            "every shard is permanently dead or stopped; the pool cannot serve"
        )

    def _wait_any_progress(self, deadline: float) -> None:
        """Sleep-poll until some shard might be READY again (respawn window)."""
        while time.monotonic() < deadline:
            for shard in self._shards:
                if shard.ready_event.wait(timeout=0.02):
                    return
        raise PoolTimeoutError(
            f"no shard became ready within request_timeout_s={self.request_timeout_s}"
        )

    def _request_routed(self, key: Tuple[int, int, float], op: str, payload) -> object:
        """Run one op on the key's home shard, failing over along the ring."""
        if self._closed:
            raise EnginePoolError("engine pool is closed")
        deadline = time.monotonic() + self.request_timeout_s
        max_attempts = self.num_shards * (self.respawn_limit + 1) + 1
        last_error: Optional[BaseException] = None
        for _ in range(max_attempts):
            shard = self._pick_shard(key)
            if shard is None:
                self._wait_any_progress(deadline)
                continue
            ticket = self._next_ticket()
            try:
                entry = shard.submit(op, payload, ticket)
            except ShardUnavailableError as error:
                last_error = error
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not entry.event.wait(timeout=remaining):
                shard.abandon(ticket)
                raise PoolTimeoutError(
                    f"shard {shard.slot} did not answer {op!r} within "
                    f"{self.request_timeout_s:.1f} s"
                )
            if entry.error is not None:
                if isinstance(entry.error, (ShardCrashedError, ShardUnavailableError)):
                    last_error = entry.error
                    self._stats["retries"] += 1
                    logger.info(
                        "retrying %s for key %s after %s", op, key, entry.error
                    )
                    continue
                raise entry.error
            return entry.result
        raise last_error or EnginePoolError(f"request {op!r} exhausted retries")

    # ------------------------------------------------------------------ #
    # Forest-provider surface
    # ------------------------------------------------------------------ #

    def build_forest_traced(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> Tuple[PrivacyForest, bool]:
        """Build (or fetch) one forest on the key's home shard.

        The worker ships back plain matrices; the parent reattaches them to
        its own tree handle, so callers receive a normal
        :class:`~repro.server.privacy_forest.PrivacyForest` byte-identical
        to a single-process build.
        """
        key = self._normalize(privacy_level, delta, epsilon)
        payload = (key[0], key[1], key[2], bool(use_cache))
        result = self._request_routed(key, "build", payload)
        forest = PrivacyForest(
            self.tree, result["privacy_level"], result["delta"], result["epsilon"]
        )
        for root_id, matrix in result["matrices"].items():
            forest.add(root_id, matrix)
        return forest, bool(result["cached"])

    def build_forest(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> PrivacyForest:
        """:meth:`build_forest_traced` without the cache flag."""
        forest, _ = self.build_forest_traced(
            privacy_level, delta, epsilon=epsilon, use_cache=use_cache
        )
        return forest

    generate_privacy_forest = build_forest
    generate_forest = build_forest

    def publish_leaf_priors(self, subtree_root_id: str) -> Dict[str, float]:
        """Leaf priors of one sub-tree, served from the parent's tree handle.

        Read under the tree lock so a concurrent :meth:`publish_priors` can
        never be observed half-applied.
        """
        with self._tree_lock:
            leaves = self.tree.descendant_leaves(subtree_root_id)
            return {leaf.node_id: leaf.prior for leaf in leaves}

    # ------------------------------------------------------------------ #
    # Broadcast cache lifecycle
    # ------------------------------------------------------------------ #

    def _broadcast(
        self,
        op: str,
        payload,
        timeout_s: Optional[float] = None,
        *,
        partial: bool = False,
    ) -> Dict[int, object]:
        """Run one op on every shard that can take it; return answers by slot.

        Shards that are respawning are skipped — a fresh worker starts with
        a cold cache, which is exactly the post-broadcast state (and a live
        prior update is re-sent at READY) — and a shard that dies
        mid-broadcast counts as flushed for the same reason.  With
        ``partial=True`` a shard that does not answer within the timeout is
        simply omitted from the result (monitoring must not fail wholesale
        because one worker is deep in a long build); otherwise the timeout
        raises :class:`PoolTimeoutError`.
        """
        timeout_s = self.request_timeout_s if timeout_s is None else float(timeout_s)
        entries = []
        for shard in self._shards:
            ticket = self._next_ticket()
            try:
                entries.append((shard, ticket, shard.submit(op, payload, ticket)))
            except ShardUnavailableError:
                continue
        deadline = time.monotonic() + timeout_s
        results: Dict[int, object] = {}
        for shard, ticket, entry in entries:
            remaining = max(0.0, deadline - time.monotonic())
            if not entry.event.wait(timeout=remaining):
                # Abandoning makes resolve() drop the stray late answer
                # instead of counting it as completed work.
                shard.abandon(ticket)
                if partial:
                    continue
                raise PoolTimeoutError(
                    f"shard {shard.slot} did not answer broadcast {op!r} within "
                    f"{timeout_s:.1f} s"
                )
            if entry.error is not None:
                if isinstance(entry.error, (ShardCrashedError, ShardUnavailableError)):
                    continue
                raise entry.error
            results[shard.slot] = entry.result
        return results

    def invalidate(self, privacy_level: Optional[int] = None) -> int:
        """Drop cached forests on every shard; return the total dropped."""
        answers = self._broadcast(
            "invalidate", None if privacy_level is None else int(privacy_level)
        )
        return sum(int(count) for count in answers.values())

    def publish_priors(
        self, priors: Mapping[str, float], *, normalize: bool = True
    ) -> int:
        """Install new leaf priors everywhere and flush every shard's caches.

        Masses are vetted (finite, non-negative) and the parent tree is
        updated first — so a bad payload never reaches a worker — then the
        update is broadcast.  A shard that cannot take the broadcast right
        now (respawning) gets it re-sent the moment it turns READY, keyed
        by a monotonically increasing priors version, so no replica is left
        serving pre-update priors.  Returns the total number of forests
        flushed across the shards that answered.
        """
        vetted = validate_prior_masses(priors)
        payload = (vetted, bool(normalize))
        # Mutate the parent tree *before* bumping the version: a worker
        # forked in between then carries the new tree with an old version
        # stamp (one redundant re-send), never the old tree with a new
        # stamp (a silently stale replica).
        with self._tree_lock:
            self.tree.set_leaf_priors(dict(vetted), normalize=normalize)
        with self._lifecycle_lock:
            self._priors_version += 1
            version = self._priors_version
            self._current_priors = payload
        answers = self._broadcast("set_priors", payload)
        for slot in answers:
            shard = self._shards[slot]
            with shard.lock:
                shard.priors_version = max(shard.priors_version, version)
        return sum(int(count) for count in answers.values())

    # ------------------------------------------------------------------ #
    # Health and introspection
    # ------------------------------------------------------------------ #

    def health_check(self, timeout_s: float = 5.0) -> Dict[int, bool]:
        """Ping every shard; True = answered within the timeout.

        Partial by design: one busy or dead shard marks only itself
        unhealthy, never its siblings.
        """
        answers = self._broadcast("ping", None, timeout_s=timeout_s, partial=True)
        return {shard.slot: shard.slot in answers for shard in self._shards}

    def shard_states(self) -> List[Dict[str, object]]:
        """Lifecycle snapshot of every slot (parent-side, no worker round-trip)."""
        return [shard.info() for shard in self._shards]

    def pool_stats(self) -> Dict[str, int]:
        """Respawn/retry/crash counters accumulated since construction."""
        with self._lifecycle_lock:
            return dict(self._stats)

    def cache_diagnostics(self, timeout_s: float = 10.0) -> Dict[str, object]:
        """Aggregated engine diagnostics plus pool lifecycle state.

        The per-shard engine numbers are fetched over the request queues;
        the broadcast is partial, so a shard stuck in a long build is merely
        absent from ``shards_reporting`` rather than blocking monitoring or
        zeroing its siblings' counters.  Scalar counters are summed across
        the shards that answered; the summary keeps the single-engine key
        shape (``forest_entries``, ``structure_sharing``, …) so existing
        dashboards and :meth:`CORGIService.snapshot` work unchanged.
        """
        answers = self._broadcast("diagnostics", None, timeout_s=timeout_s, partial=True)
        summed = {
            "forest_entries": 0,
            "forest_expirations": 0,
            "invalidations": 0,
            "matrix_entries": 0,
        }
        forest_stats = {"hits": 0, "misses": 0, "evictions": 0}
        matrix_stats = {"hits": 0, "misses": 0, "evictions": 0}
        structure = {"groups": 0, "builds": 0, "reuses": 0}
        for diagnostics in answers.values():
            for name in summed:
                summed[name] += int(diagnostics.get(name, 0))
            for target, source_key in (
                (forest_stats, "forest_stats"),
                (matrix_stats, "matrix_stats"),
                (structure, "structure_sharing"),
            ):
                source = diagnostics.get(source_key, {})
                for name in target:
                    target[name] += int(source.get(name, 0))
        return {
            **summed,
            "forest_stats": forest_stats,
            "forest_ttl_s": float(self.config.forest_ttl_s),
            "matrix_stats": matrix_stats,
            "structure_sharing": structure,
            "max_workers": self.num_shards,
            "pool": {
                "num_shards": self.num_shards,
                "respawn_limit": self.respawn_limit,
                "shards_reporting": sorted(answers),
                "shards": self.shard_states(),
                **self.pool_stats(),
            },
        }
