"""Setuptools entry point — the packaging source of truth.

Metadata lives here (not in a ``[project]`` table) so the package installs
editable even in offline environments whose pip/setuptools combination
cannot build PEP 660 editable wheels (no ``wheel`` package available);
``pyproject.toml`` carries tool configuration only (ruff).

Extras:

* ``repro[test]`` — everything CI needs to run every suite: pytest (with
  the hard per-test timeouts the stress jobs use), hypothesis for the
  property-based wire fuzzers, and ruff for the lint gate.
* ``repro[bench]`` — the benchmark harness dependencies.
* ``repro[native]`` — the native HiGHS bindings (``highspy``) enabling the
  warm-started LP solver backend (``solver_backend="highs-native"``);
  everything falls back to scipy ``linprog`` without it.
* ``repro[loadgen]`` — the trace-replay harness (``python -m
  repro.loadgen``).  Deliberately empty: the fleet simulator, online
  adversary, SLO reports and terminal dashboard are pure stdlib + the core
  numpy dependency, and declaring the extra keeps that promise checkable
  (a dependency creeping into the harness has to show up here).
"""

from setuptools import find_packages, setup

TEST_REQUIRES = [
    "pytest>=7",
    "pytest-timeout>=2",
    "hypothesis>=6",
    "ruff>=0.4",
]

BENCH_REQUIRES = [
    "pytest>=7",
    "pytest-benchmark>=4",
]

NATIVE_REQUIRES = [
    "highspy>=1.7",
]

#: The loadgen harness adds no dependencies beyond the core install; the
#: empty extra documents (and pins) that fact.
LOADGEN_REQUIRES: list = []

setup(
    name="repro",
    version="0.8.0",
    description=(
        "Reproduction of CORGI (EDBT 2023): customizable, robust geo-"
        "indistinguishable location obfuscation, grown into a sharded, "
        "cross-host serving system"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.23",
        "scipy>=1.9",
    ],
    extras_require={
        "test": TEST_REQUIRES,
        "bench": BENCH_REQUIRES,
        "native": NATIVE_REQUIRES,
        "loadgen": LOADGEN_REQUIRES,
    },
)
