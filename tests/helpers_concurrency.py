"""Shared concurrency-test helpers (importable by any test module).

Lives outside ``conftest.py`` because ``conftest`` is not a unique module
name under pytest's rootdir import scheme (``benchmarks/`` has one too).
No test needs an ad-hoc ``time.sleep`` to synchronize with background
work: bursts are barrier-released and deadline-joined (:func:`run_burst`),
and ordering is expressed as a polled predicate with a hard timeout
(:func:`wait_until`) instead of a guessed delay.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

__all__ = ["BurstOutcome", "run_burst", "wait_until", "free_port"]


@dataclass
class BurstOutcome:
    """What a :func:`run_burst` call observed.

    ``results[i]`` is worker *i*'s return value (None if it raised);
    ``errors`` collects every raised exception.  :meth:`raise_errors` is
    the common assertion that the whole burst succeeded.
    """

    results: List[object] = field(default_factory=list)
    errors: List[BaseException] = field(default_factory=list)
    elapsed_s: float = 0.0

    def raise_errors(self) -> "BurstOutcome":
        if self.errors:
            raise AssertionError(f"burst workers failed: {self.errors!r}")
        return self


def run_burst(
    targets: Union[Callable[[], object], Sequence[Callable[[], object]]],
    *,
    count: Optional[int] = None,
    timeout_s: float = 60.0,
) -> BurstOutcome:
    """Run callables concurrently: barrier-released, deadline-joined.

    Pass one callable plus ``count`` to clone it, or a sequence of distinct
    callables.  Every worker blocks on a shared barrier so the calls really
    race; the join deadline turns a hung worker into a test failure instead
    of a hung suite.  Exceptions are collected, never swallowed.
    """
    if callable(targets):
        workers = [targets] * (count if count is not None else 1)
    else:
        workers = list(targets)
        assert count is None or count == len(workers)
    barrier = threading.Barrier(len(workers))
    outcome = BurstOutcome(results=[None] * len(workers))

    def runner(index: int, target: Callable[[], object]) -> None:
        try:
            barrier.wait(timeout=timeout_s)
            outcome.results[index] = target()
        except BaseException as error:  # noqa: BLE001 - reported to the test
            outcome.errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(index, target), daemon=True)
        for index, target in enumerate(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    deadline = start + timeout_s
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.perf_counter()))
    outcome.elapsed_s = time.perf_counter() - start
    hung = [thread.name for thread in threads if thread.is_alive()]
    if hung:
        raise AssertionError(f"burst exceeded {timeout_s:.1f} s deadline: {hung}")
    return outcome


def wait_until(
    predicate: Callable[[], bool],
    *,
    timeout_s: float = 10.0,
    interval_s: float = 0.005,
    message: str = "condition",
) -> None:
    """Poll *predicate* until true; fail loudly at the deadline.

    The replacement for ad-hoc ``time.sleep`` synchronization: the test
    states *what* it is waiting for, waits exactly as long as needed, and
    gets a named failure instead of a flake when the condition never holds.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"timed out after {timeout_s:.1f} s waiting for {message}")


#: Ports already handed out by :func:`free_port` in this process.  The OS
#: happily re-assigns an ephemeral port the moment the probing socket
#: closes, so two quick successive calls could hand the *same* port to two
#: servers that have not bound yet — the TOCTOU race the netshard suite
#: (which grabs ports far more often than the HTTP tests did) kept hitting.
_handed_out_ports: set = set()
_handed_out_lock = threading.Lock()


def free_port(max_attempts: int = 64) -> int:
    """A free TCP port not previously handed out by this process.

    The bind-probe-close pattern is inherently racy against *other*
    processes (only binding port 0 yourself is race-free — servers that can
    do so, like ``NetShardServer(port=0)``, should); this helper closes the
    realistic hole: the same port being handed to two callers of this
    process before either binds.  Each probe binds a fresh socket, and the
    port is retried (up to *max_attempts*) until the OS hands back one this
    process has never given out.
    """
    with _handed_out_lock:
        for _ in range(max_attempts):
            with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
                sock.bind(("127.0.0.1", 0))
                port = sock.getsockname()[1]
            if port not in _handed_out_ports:
                _handed_out_ports.add(port)
                return port
    raise RuntimeError(
        f"no unused free port found in {max_attempts} attempts "
        f"({len(_handed_out_ports)} already handed out)"
    )
