"""Tests for the sharded multi-process engine pool.

Covers the ISSUE acceptance surface: deterministic consistent-hash
routing, single-flight coalescing staying effective across shards,
kill-a-worker-mid-burst recovery (no request lost — they complete via
respawn/retry on a sibling), TTL expiry and explicit invalidation, and
byte-identical forests between pooled and single-process engines.  The
shard lifecycle state machine is unit-tested directly.

All synchronization goes through the conftest helpers (`run_burst`,
`wait_until`) — no ad-hoc sleeps.
"""

import copy
import json
import threading
import time

import numpy as np
import pytest

from helpers_concurrency import run_burst, wait_until
from repro.server.engine import ForestEngine, ServerConfig
from repro.server.messages import ObfuscationRequest
from repro.service.http import CORGIHTTPServer
from repro.service.pool import EnginePool, EnginePoolError
from repro.service.service import CORGIService
from repro.service.shard import ShardHandle, ShardState, legal_transition

#: Fast engine settings shared by every pool in this module.
POOL_CONFIG = dict(epsilon=2.0, num_targets=5, robust_iterations=1)


@pytest.fixture()
def pool_tree(small_tree_with_priors):
    """A private copy of the priors-annotated tree (pools may mutate priors)."""
    return copy.deepcopy(small_tree_with_priors)


@pytest.fixture()
def pool(pool_tree):
    with EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=2) as pool:
        yield pool


# --------------------------------------------------------------------- #
# Shard lifecycle state machine
# --------------------------------------------------------------------- #


class TestShardLifecycle:
    def test_transition_graph(self):
        assert legal_transition(ShardState.STARTING, ShardState.READY)
        assert legal_transition(ShardState.READY, ShardState.CRASHED)
        assert legal_transition(ShardState.CRASHED, ShardState.STARTING)
        assert legal_transition(ShardState.CRASHED, ShardState.DEAD)
        assert not legal_transition(ShardState.READY, ShardState.STARTING)
        assert not legal_transition(ShardState.DEAD, ShardState.STARTING)
        assert not legal_transition(ShardState.STOPPED, ShardState.READY)

    def test_illegal_transition_raises(self):
        handle = ShardHandle(slot=0)
        handle.transition(ShardState.READY)
        with pytest.raises(RuntimeError, match="illegal shard transition"):
            handle.transition(ShardState.READY)

    def test_ready_event_follows_state(self):
        handle = ShardHandle(slot=0)
        assert not handle.ready_event.is_set()
        handle.transition(ShardState.READY)
        assert handle.ready_event.is_set()
        handle.transition(ShardState.CRASHED)
        assert not handle.ready_event.is_set()


# --------------------------------------------------------------------- #
# Routing determinism
# --------------------------------------------------------------------- #


class TestRouting:
    def test_route_is_deterministic_and_complete(self, pool):
        key = (1, 1, 2.0)
        order = pool.route_key(key)
        assert order == pool.route_key(key)
        assert sorted(order) == list(range(pool.num_shards))

    def test_route_matches_fresh_ring(self, pool, pool_tree):
        """Routing depends only on (key, num_shards) — not on pool identity."""
        with EnginePool(
            copy.deepcopy(pool_tree), ServerConfig(**POOL_CONFIG), num_shards=2
        ) as other:
            for key in [(0, 0, 2.0), (1, 0, 2.0), (1, 1, 2.0), (1, 2, 17.5)]:
                assert pool.route_key(key) == other.route_key(key)

    def test_default_epsilon_resolution(self, pool):
        assert pool.shard_for(1, 1) == pool.shard_for(1, 1, epsilon=2.0)

    def test_identical_requests_land_on_home_shard(self, pool):
        home = pool.shard_for(1, 1)
        for _ in range(3):
            pool.build_forest(1, 1)
        info = pool.shard_states()[home]
        assert info["dispatched"] >= 3
        sibling = pool.shard_states()[1 - home]
        assert sibling["dispatched"] == 0

    def test_distinct_keys_spread(self, pool):
        keys = [(level, delta, 2.0) for level in (0, 1) for delta in (0, 1, 2)]
        slots = {pool.route_key(key)[0] for key in keys}
        assert len(slots) > 1


# --------------------------------------------------------------------- #
# Coalescing across shards / service integration
# --------------------------------------------------------------------- #


class TestServiceOverPool:
    def test_burst_of_identical_requests_builds_once(self, pool):
        service = CORGIService(pool)
        outcome = run_burst(
            lambda: service.generate_privacy_forest(1, 1), count=6
        ).raise_errors()
        assert all(forest is outcome.results[0] for forest in outcome.results)
        assert service.metrics.count("engine_builds") == 1
        assert service.metrics.count("coalesced") == 5
        # Exactly one shard saw the one build.
        dispatched = [info["dispatched"] for info in pool.shard_states()]
        assert sorted(dispatched) == [0, 1]

    def test_snapshot_reports_pool_diagnostics(self, pool):
        service = CORGIService(pool)
        service.generate_privacy_forest(1, 0)
        snapshot = service.snapshot()
        assert snapshot["engine"]["pool"]["num_shards"] == 2
        assert snapshot["engine"]["forest_entries"] == 1
        assert snapshot["gauges"] == {"pending_leaders": 0, "inflight_keys": 0}

    def test_pooled_and_single_process_forests_byte_identical(
        self, pool, small_tree_with_priors
    ):
        """Acceptance: the pool is invisible in the response bytes."""
        engine = ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
        request = ObfuscationRequest(privacy_level=1, delta=1)
        pooled = CORGIService(pool).handle(request)
        single = CORGIService(engine).handle(request)
        assert json.dumps(pooled.to_dict(), sort_keys=True) == json.dumps(
            single.to_dict(), sort_keys=True
        )

    def test_request_errors_propagate(self, pool):
        with pytest.raises(ValueError):
            pool.build_forest(1, -1)
        with pytest.raises(ValueError):
            pool.build_forest(9, 0)


# --------------------------------------------------------------------- #
# Crash recovery: kill a worker mid-burst
# --------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_kill_worker_mid_burst_loses_no_requests(self, pool_tree):
        """Acceptance: a SIGKILLed shard's requests complete via respawn/retry."""
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=2,
            respawn_limit=3,
            chaos_build_delay_s=0.25,
        )
        try:
            pool.wait_ready()
            requests = [(level, delta) for level in (0, 1) for delta in (0, 1, 2)]
            victim = pool.shard_for(*requests[0])

            def assassin():
                wait_until(
                    lambda: pool.shard_states()[victim]["in_flight"] > 0,
                    timeout_s=30,
                    message=f"shard {victim} to have work in flight",
                )
                pool._shards[victim].process.kill()

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            outcome = run_burst(
                [
                    lambda level=level, delta=delta: pool.build_forest(level, delta)
                    for level, delta in requests
                ],
                timeout_s=120,
            )
            killer.join(timeout=30)
            outcome.raise_errors()
            assert all(forest is not None for forest in outcome.results)
            assert len(outcome.results) == len(requests)

            stats = pool.pool_stats()
            assert stats["crash_failures"] >= 1
            assert stats["respawns"] >= 1
            assert stats["retries"] >= 1
            wait_until(
                lambda: all(
                    info["state"] == "ready" for info in pool.shard_states()
                ),
                timeout_s=30,
                message="every shard back to ready",
            )
            # The respawned pool keeps serving.
            assert pool.build_forest(1, 0) is not None
        finally:
            pool.close()

    def test_single_shard_respawn_serves_waiting_request(self, pool_tree):
        """With one shard there is no sibling: the request waits out the respawn."""
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=1,
            respawn_limit=2,
            chaos_build_delay_s=0.3,
        )
        try:
            pool.wait_ready()

            def assassin():
                wait_until(
                    lambda: pool.shard_states()[0]["in_flight"] > 0,
                    timeout_s=30,
                    message="the only shard to have work in flight",
                )
                pool._shards[0].process.kill()

            killer = threading.Thread(target=assassin, daemon=True)
            killer.start()
            forest = pool.build_forest(1, 1)
            killer.join(timeout=30)
            assert forest is not None
            assert pool.pool_stats()["respawns"] == 1
        finally:
            pool.close()

    def test_respawn_limit_exhaustion_kills_the_pool(self, pool_tree):
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=1,
            respawn_limit=0,
        )
        try:
            pool.wait_ready()
            pool._shards[0].process.kill()
            wait_until(
                lambda: pool.shard_states()[0]["state"] == "dead",
                timeout_s=30,
                message="slot to be declared dead",
            )
            with pytest.raises(EnginePoolError):
                pool.build_forest(1, 0)
            # Regression: wait_ready notices the known-DEAD slot immediately
            # (no stall for the whole timeout) and reports an unservable
            # pool instead of returning success.
            start = time.monotonic()
            with pytest.raises(EnginePoolError):
                pool.wait_ready(timeout_s=60.0)
            assert time.monotonic() - start < 5.0
        finally:
            pool.close()

    def test_priors_published_during_respawn_reach_the_new_worker(self, pool_tree):
        """Regression: a shard respawned around a live prior update must not
        keep serving pre-update priors — whether the broadcast caught it or
        the READY handler re-sent the update, the post-publish forest must
        match a single-process engine built on the new priors."""
        pool = EnginePool(
            pool_tree, ServerConfig(**POOL_CONFIG), num_shards=1, respawn_limit=3
        )
        try:
            pool.wait_ready()
            pool.build_forest(1, 1)
            pool._shards[0].process.kill()
            # Publish immediately: depending on timing the slot is crashed,
            # respawning or already back — every path must converge.
            new_priors = {
                leaf.node_id: index + 1.0
                for index, leaf in enumerate(pool_tree.leaves())
            }
            pool.publish_priors(new_priors)
            wait_until(
                lambda: pool.shard_states()[0]["state"] == "ready",
                timeout_s=30,
                message="the slot to finish respawning",
            )
            pooled = pool.build_forest(1, 1)
            reference = ForestEngine(
                copy.deepcopy(pool_tree), ServerConfig(**POOL_CONFIG)
            ).build_forest(1, 1)
            for (root_a, matrix_a), (root_b, matrix_b) in zip(pooled, reference):
                assert root_a == root_b
                assert np.array_equal(matrix_a.values, matrix_b.values)
        finally:
            pool.close()

    def test_closed_pool_rejects_requests(self, pool_tree):
        pool = EnginePool(pool_tree, ServerConfig(**POOL_CONFIG), num_shards=1)
        pool.wait_ready()
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(EnginePoolError):
            pool.build_forest(1, 0)


# --------------------------------------------------------------------- #
# Cache lifecycle: TTL expiry, explicit invalidation, live prior updates
# --------------------------------------------------------------------- #


class TestEngineTTL:
    """Engine-level TTL with an injected clock (no real sleeps)."""

    def make_engine(self, tree, ttl):
        clock = {"now": 0.0}
        engine = ForestEngine(
            tree,
            ServerConfig(forest_ttl_s=ttl, **POOL_CONFIG),
            clock=lambda: clock["now"],
        )
        return engine, clock

    def test_entry_expires_after_ttl(self, small_tree_with_priors):
        engine, clock = self.make_engine(small_tree_with_priors, ttl=10.0)
        _, cached = engine.build_forest_traced(1, 1)
        assert not cached
        _, cached = engine.build_forest_traced(1, 1)
        assert cached
        clock["now"] = 10.5
        _, cached = engine.build_forest_traced(1, 1)
        assert not cached
        assert engine.cache_diagnostics()["forest_expirations"] == 1

    def test_zero_ttl_never_expires(self, small_tree_with_priors):
        engine, clock = self.make_engine(small_tree_with_priors, ttl=0.0)
        engine.build_forest_traced(1, 1)
        clock["now"] = 1e9
        _, cached = engine.build_forest_traced(1, 1)
        assert cached

    def test_diagnostics_purge_expired_entries(self, small_tree_with_priors):
        engine, clock = self.make_engine(small_tree_with_priors, ttl=5.0)
        engine.build_forest_traced(1, 0)
        engine.build_forest_traced(1, 1)
        assert engine.cache_size() == 2
        clock["now"] = 6.0
        assert engine.cache_size() == 0
        assert engine.cache_diagnostics()["forest_expirations"] == 2

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(forest_ttl_s=-1.0).validate()


class TestEngineInvalidation:
    def test_invalidate_by_level(self, small_tree_with_priors):
        engine = ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
        engine.build_forest_traced(0, 0)
        engine.build_forest_traced(1, 0)
        engine.build_forest_traced(1, 1)
        assert engine.invalidate(1) == 2
        assert engine.cache_size() == 1
        _, cached = engine.build_forest_traced(0, 0)
        assert cached  # level 0 untouched

    def test_invalidate_all_flushes_matrix_cache_too(self, small_tree_with_priors):
        engine = ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
        engine.build_forest_traced(1, 1)
        assert engine.invalidate() == 1
        diagnostics = engine.cache_diagnostics()
        assert diagnostics["forest_entries"] == 0
        assert diagnostics["matrix_entries"] == 0
        assert diagnostics["invalidations"] == 1

    def test_publish_priors_rekeys_the_cache(self, small_tree_with_priors):
        tree = copy.deepcopy(small_tree_with_priors)
        engine = ForestEngine(tree, ServerConfig(**POOL_CONFIG))
        engine.build_forest_traced(1, 1)
        new_priors = {leaf.node_id: index + 1.0 for index, leaf in enumerate(tree.leaves())}
        assert engine.publish_priors(new_priors) == 1
        _, cached = engine.build_forest_traced(1, 1)
        assert not cached

    def test_publish_priors_rejects_poisonous_masses(self, small_tree_with_priors):
        """Regression: json.loads parses NaN/Infinity, and a NaN mass would
        pass every sign check and poison the whole tree."""
        engine = ForestEngine(small_tree_with_priors, ServerConfig(**POOL_CONFIG))
        leaf_id = small_tree_with_priors.leaves()[0].node_id
        for bad in (float("nan"), float("inf"), -1.0, "wat"):
            with pytest.raises((ValueError, TypeError)):
                engine.publish_priors({leaf_id: bad})
        with pytest.raises(ValueError):
            engine.publish_priors({})
        # The tree is untouched after every rejected update.
        assert sum(leaf.prior for leaf in small_tree_with_priors.leaves()) == pytest.approx(1.0)

    def test_publish_priors_waits_for_inflight_builds(self, small_tree_with_priors):
        """Regression: a live prior update must not mutate the tree while a
        build is reading priors — the writer waits, then new builds see the
        fully-applied update."""
        tree = copy.deepcopy(small_tree_with_priors)
        engine = ForestEngine(tree, ServerConfig(**POOL_CONFIG))
        release_build = threading.Event()
        original_run_pending = engine._run_pending

        def stalled_run_pending(tasks):
            assert release_build.wait(timeout=30)
            return original_run_pending(tasks)

        engine._run_pending = stalled_run_pending
        build_done = threading.Event()
        publish_done = threading.Event()

        def builder():
            engine.build_forest_traced(1, 1)
            build_done.set()

        def publisher():
            wait_until(
                lambda: engine._active_builds == 1,
                timeout_s=10,
                message="the build to hold a reader slot",
            )
            engine.publish_priors(
                {leaf.node_id: index + 1.0 for index, leaf in enumerate(tree.leaves())}
            )
            publish_done.set()

        build_thread = threading.Thread(target=builder, daemon=True)
        publish_thread = threading.Thread(target=publisher, daemon=True)
        build_thread.start()
        publish_thread.start()
        # The publisher reaches the gate and parks behind the in-flight build.
        wait_until(
            lambda: engine._prior_writers == 1,
            timeout_s=10,
            message="the publisher to park at the priors gate",
        )
        assert not publish_done.is_set()
        assert not build_done.is_set()
        release_build.set()
        build_thread.join(timeout=30)
        publish_thread.join(timeout=30)
        assert build_done.is_set() and publish_done.is_set()
        # New builds run against the fully-applied update (fresh cache miss).
        _, cached = engine.build_forest_traced(1, 1)
        assert not cached


class TestPoolCacheLifecycle:
    def test_explicit_invalidation_broadcasts(self, pool):
        _, cached = pool.build_forest_traced(1, 1)
        assert not cached
        _, cached = pool.build_forest_traced(1, 1)
        assert cached
        assert pool.invalidate() == 1
        _, cached = pool.build_forest_traced(1, 1)
        assert not cached

    def test_invalidate_by_level_counts_across_shards(self, pool):
        pool.build_forest_traced(0, 0)
        pool.build_forest_traced(1, 0)
        pool.build_forest_traced(1, 1)
        assert pool.invalidate(privacy_level=1) == 2
        assert pool.cache_diagnostics()["forest_entries"] == 1

    def test_ttl_crosses_the_process_boundary(self, pool_tree):
        config = ServerConfig(forest_ttl_s=0.2, **POOL_CONFIG)
        with EnginePool(pool_tree, config, num_shards=2) as pool:
            _, cached = pool.build_forest_traced(1, 1)
            assert not cached
            _, cached = pool.build_forest_traced(1, 1)
            assert cached
            expiry = time.monotonic() + 0.3
            wait_until(
                lambda: time.monotonic() >= expiry,
                timeout_s=5,
                message="the TTL window to elapse",
            )
            _, cached = pool.build_forest_traced(1, 1)
            assert not cached

    def test_publish_priors_reaches_every_shard(self, pool, pool_tree):
        # Warm both shards with distinct keys, then broadcast new priors.
        keys = [(0, 0), (1, 0), (1, 1), (1, 2)]
        for level, delta in keys:
            pool.build_forest_traced(level, delta)
        warmed = pool.cache_diagnostics()["forest_entries"]
        assert warmed == len(keys)
        new_priors = {
            leaf.node_id: index + 1.0 for index, leaf in enumerate(pool_tree.leaves())
        }
        assert pool.publish_priors(new_priors) == warmed
        assert pool.cache_diagnostics()["forest_entries"] == 0
        # The parent-side published priors reflect the update.
        published = pool.publish_leaf_priors(pool_tree.root.node_id)
        assert sum(published.values()) == pytest.approx(1.0)
        assert max(published.values()) == pytest.approx(7.0 / 28.0)

    def test_health_check(self, pool):
        assert pool.health_check(timeout_s=10.0) == {0: True, 1: True}

    def test_health_check_partial_when_one_shard_busy(self, pool_tree):
        """Regression: one shard deep in a build must not mark its idle
        siblings unhealthy (the broadcast is partial, not all-or-nothing)."""
        pool = EnginePool(
            pool_tree,
            ServerConfig(**POOL_CONFIG),
            num_shards=2,
            chaos_build_delay_s=0.6,
        )
        try:
            pool.wait_ready()
            busy = pool.shard_for(1, 1)
            builder = threading.Thread(
                target=lambda: pool.build_forest(1, 1), daemon=True
            )
            builder.start()
            wait_until(
                lambda: pool.shard_states()[busy]["in_flight"] > 0,
                timeout_s=10,
                message="the build to occupy its home shard",
            )
            health = pool.health_check(timeout_s=0.15)
            assert health[1 - busy] is True  # the idle sibling still answers
            assert health[busy] is False  # the busy worker's ping is queued
            builder.join(timeout=30)
            wait_until(
                lambda: pool.health_check(timeout_s=2.0) == {0: True, 1: True},
                timeout_s=10,
                message="both shards healthy once idle",
            )
        finally:
            pool.close()


# --------------------------------------------------------------------- #
# HTTP admin surface over a pooled service
# --------------------------------------------------------------------- #


class TestPoolOverHTTP:
    def test_admin_invalidate_over_the_wire(self, pool):
        from repro.client.transport import HTTPTransport

        service = CORGIService(pool)
        with CORGIHTTPServer(service, port=0) as server:
            transport = HTTPTransport(server.url)
            transport.fetch_forest(ObfuscationRequest(privacy_level=1, delta=1))
            assert transport.invalidate() == 1
            metrics = transport.metrics()
            assert metrics["engine"]["forest_entries"] == 0
            assert metrics["service"]["invalidated"] == 1
