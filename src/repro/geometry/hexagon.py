"""Planar hexagon geometry for pointy-top hexagonal cells.

The hexagonal lattice in :mod:`repro.hexgrid` uses pointy-top hexagons whose
centres live on an axial-coordinate lattice.  This module provides the
per-cell geometry: vertex rings (for boundary export and plotting), exact
areas and point-in-hexagon membership tests used when assigning check-ins to
leaf cells.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

SQRT3 = math.sqrt(3.0)


def hexagon_vertices(
    center_x: float,
    center_y: float,
    circumradius: float,
    *,
    pointy_top: bool = True,
) -> List[Tuple[float, float]]:
    """Return the 6 vertices of a regular hexagon.

    Parameters
    ----------
    center_x, center_y:
        Centre of the hexagon in planar kilometres.
    circumradius:
        Distance from centre to any vertex (the hexagon "size" / edge length).
    pointy_top:
        Pointy-top orientation (vertex at the top) matches the axial lattice
        used by :mod:`repro.hexgrid`; flat-top is provided for completeness.
    """
    if circumradius <= 0:
        raise ValueError(f"circumradius must be > 0, got {circumradius}")
    offset = math.pi / 6.0 if pointy_top else 0.0
    vertices = []
    for k in range(6):
        angle = offset + k * math.pi / 3.0
        vertices.append((center_x + circumradius * math.cos(angle), center_y + circumradius * math.sin(angle)))
    return vertices


def hexagon_area(circumradius: float) -> float:
    """Area of a regular hexagon with the given circumradius (= edge length)."""
    if circumradius <= 0:
        raise ValueError(f"circumradius must be > 0, got {circumradius}")
    return 3.0 * SQRT3 / 2.0 * circumradius * circumradius


def hexagon_apothem(circumradius: float) -> float:
    """Apothem (centre-to-edge distance) of a regular hexagon."""
    return SQRT3 / 2.0 * circumradius


def point_in_hexagon(
    px: float,
    py: float,
    center_x: float,
    center_y: float,
    circumradius: float,
    *,
    pointy_top: bool = True,
) -> bool:
    """Whether planar point ``(px, py)`` lies inside the hexagon (boundary inclusive).

    Uses the standard "half-plane" test against the three symmetry axes of a
    regular hexagon, which is faster and more numerically robust than a
    general polygon test.
    """
    if circumradius <= 0:
        raise ValueError(f"circumradius must be > 0, got {circumradius}")
    dx = px - center_x
    dy = py - center_y
    if not pointy_top:
        # Rotate by 30 degrees to reuse the pointy-top test.
        cos30, sin30 = math.cos(math.pi / 6.0), math.sin(math.pi / 6.0)
        dx, dy = dx * cos30 - dy * sin30, dx * sin30 + dy * cos30
    apothem = hexagon_apothem(circumradius)
    eps = 1e-9 * max(circumradius, 1.0)
    # Pointy-top hexagon: flat edges face east/west (|x| <= apothem) and the
    # four diagonal edges satisfy |±sqrt(3)/2 * y ± 1/2 * x| <= apothem... the
    # compact form below checks the three edge-normal directions.
    checks = [
        abs(dx),
        abs(dx * 0.5 + dy * SQRT3 / 2.0),
        abs(dx * 0.5 - dy * SQRT3 / 2.0),
    ]
    return all(value <= apothem + eps for value in checks)


def polygon_area(vertices: Sequence[Tuple[float, float]]) -> float:
    """Signed-area magnitude of a simple polygon (shoelace formula)."""
    if len(vertices) < 3:
        raise ValueError("a polygon needs at least 3 vertices")
    total = 0.0
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return abs(total) / 2.0


def polygon_centroid(vertices: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Centroid of a simple polygon."""
    if len(vertices) < 3:
        raise ValueError("a polygon needs at least 3 vertices")
    area_acc = 0.0
    cx = 0.0
    cy = 0.0
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        cross = x1 * y2 - x2 * y1
        area_acc += cross
        cx += (x1 + x2) * cross
        cy += (y1 + y2) * cross
    if abs(area_acc) < 1e-15:
        # Degenerate polygon: fall back to the vertex mean.
        xs = [v[0] for v in vertices]
        ys = [v[1] for v in vertices]
        return (sum(xs) / n, sum(ys) / n)
    area_acc *= 0.5
    return (cx / (6.0 * area_acc), cy / (6.0 * area_acc))
