"""Server side of the CORGI framework (Section 5.1).

The (untrusted) server performs the computationally heavy work: it builds
the location tree for the area of interest, and — given only the privacy
level and the prune count δ — generates a robust obfuscation matrix for
*every* sub-tree rooted at that level (Algorithm 3), because it must not
learn which sub-tree contains the user.  The resulting
:class:`~repro.server.privacy_forest.PrivacyForest` is returned to the user
for customization.
"""

from repro.server.engine import ForestEngine
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.server.privacy_forest import PrivacyForest
from repro.server.server import CORGIServer, ServerConfig

__all__ = [
    "CORGIServer",
    "ForestEngine",
    "ServerConfig",
    "PrivacyForest",
    "ObfuscationRequest",
    "PrivacyForestResponse",
]
