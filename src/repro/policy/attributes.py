"""Location-attribute inference from check-in data (Section 6.1).

The paper derives realistic customization preferences by analysing the
Gowalla sample "with simple heuristics to identify a user's home, office and
their outlier locations (where the user visited rarely and at odd times)"
plus per-location popularity.  This module implements those heuristics over
the leaf cells of a location tree:

* **popular** — a leaf is popular when its total check-in count is at or
  above a configurable quantile of the non-empty leaves;
* **home** (per user) — the leaf holding the user's most frequent night-time
  (22:00–06:00) check-ins;
* **office** (per user) — the leaf holding the user's most frequent weekday
  working-hours (09:00–18:00) check-ins, when different from home;
* **outlier** (per user) — leaves the user visited at most
  ``outlier_max_visits`` times, with at least one visit at an odd hour.

Global attributes are attached to the tree nodes (``annotate_tree_with_dataset``);
per-user attributes are returned as a separate profile dictionary so that a
single shared tree can serve every user without leaking one user's profile
to another.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.datasets.checkin import CheckInDataset
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class AttributeConfig:
    """Thresholds used by the attribute heuristics."""

    #: Quantile (over non-empty leaves) above which a leaf is "popular".
    popular_quantile: float = 0.75
    #: Minimum number of check-ins for a leaf to ever be considered popular.
    popular_min_checkins: int = 3
    #: A user's leaf is an outlier when visited at most this many times ...
    outlier_max_visits: int = 2
    #: ... and at least one visit fell into these odd hours.
    odd_hours: tuple = (0, 1, 2, 3, 4, 23)

    def validate(self) -> None:
        """Raise :class:`ValueError` for inconsistent thresholds."""
        if not 0.0 <= self.popular_quantile <= 1.0:
            raise ValueError("popular_quantile must be in [0, 1]")
        if self.popular_min_checkins < 0:
            raise ValueError("popular_min_checkins must be non-negative")
        if self.outlier_max_visits < 1:
            raise ValueError("outlier_max_visits must be at least 1")


class LocationAttributeExtractor:
    """Computes global and per-user location attributes over a tree.

    Parameters
    ----------
    tree:
        Location tree whose leaves are annotated.
    dataset:
        Check-in dataset the attributes are derived from.
    config:
        Heuristic thresholds; defaults follow the description in the paper.
    """

    def __init__(
        self,
        tree: LocationTree,
        dataset: CheckInDataset,
        config: Optional[AttributeConfig] = None,
    ) -> None:
        self.tree = tree
        self.dataset = dataset
        self.config = config or AttributeConfig()
        self.config.validate()
        self._leaf_checkins: Dict[str, list] = defaultdict(list)
        self._assign_checkins()

    def _assign_checkins(self) -> None:
        outside = 0
        for checkin in self.dataset:
            if not self.tree.contains_latlng(checkin.lat, checkin.lng):
                outside += 1
                continue
            leaf = self.tree.leaf_for_latlng(checkin.lat, checkin.lng)
            self._leaf_checkins[leaf.node_id].append(checkin)
        if outside:
            logger.debug("%d check-ins fall outside the tree and are ignored", outside)

    # ------------------------------------------------------------------ #
    # Global attributes
    # ------------------------------------------------------------------ #

    def global_attributes(self) -> Dict[str, Dict[str, object]]:
        """Per-leaf global attributes: check-in count, distinct users, popularity."""
        counts = {node_id: len(items) for node_id, items in self._leaf_checkins.items()}
        nonzero = np.array([c for c in counts.values() if c > 0], dtype=float)
        if nonzero.size:
            threshold = float(np.quantile(nonzero, self.config.popular_quantile))
        else:
            threshold = float("inf")
        threshold = max(threshold, float(self.config.popular_min_checkins))
        attributes: Dict[str, Dict[str, object]] = {}
        for leaf in self.tree.leaves():
            node_id = leaf.node_id
            leaf_checkins = self._leaf_checkins.get(node_id, [])
            count = len(leaf_checkins)
            users = {c.user_id for c in leaf_checkins}
            attributes[node_id] = {
                "checkin_count": count,
                "distinct_users": len(users),
                "popular": bool(count >= threshold and count > 0),
            }
        return attributes

    def annotate_tree(self) -> Dict[str, Dict[str, object]]:
        """Compute global attributes and install them on the tree nodes."""
        attributes = self.global_attributes()
        self.tree.annotate_many(attributes)
        return attributes

    # ------------------------------------------------------------------ #
    # Per-user attributes
    # ------------------------------------------------------------------ #

    def user_profile(self, user_id: str) -> Dict[str, Dict[str, object]]:
        """Per-leaf attributes specific to *user_id* (home / office / outlier flags).

        Returns a mapping ``{leaf_id: {"home": bool, "office": bool,
        "outlier": bool, "user_visits": int}}`` covering every leaf of the
        tree (leaves the user never visited get all-false flags).
        """
        visits: Counter = Counter()
        night_visits: Counter = Counter()
        work_visits: Counter = Counter()
        odd_hour_visits: Counter = Counter()
        for node_id, leaf_checkins in self._leaf_checkins.items():
            for checkin in leaf_checkins:
                if checkin.user_id != user_id:
                    continue
                visits[node_id] += 1
                if checkin.is_night:
                    night_visits[node_id] += 1
                if checkin.is_work_hours:
                    work_visits[node_id] += 1
                if checkin.hour_of_day in self.config.odd_hours:
                    odd_hour_visits[node_id] += 1
        home_leaf = _argmax(night_visits) or _argmax(visits)
        office_candidates = Counter({k: v for k, v in work_visits.items() if k != home_leaf})
        office_leaf = _argmax(office_candidates)
        profile: Dict[str, Dict[str, object]] = {}
        for leaf in self.tree.leaves():
            node_id = leaf.node_id
            count = visits.get(node_id, 0)
            is_outlier = (
                0 < count <= self.config.outlier_max_visits and odd_hour_visits.get(node_id, 0) > 0
            )
            profile[node_id] = {
                "user_visits": count,
                "home": node_id == home_leaf and home_leaf is not None,
                "office": node_id == office_leaf and office_leaf is not None,
                "outlier": bool(is_outlier),
            }
        return profile

    def distance_attributes(self, origin_lat: float, origin_lng: float) -> Dict[str, Dict[str, float]]:
        """Per-leaf distance (km) from an origin point, e.g. the user's real location."""
        attributes: Dict[str, Dict[str, float]] = {}
        for leaf in self.tree.leaves():
            distance = leaf.center.distance_km(
                type(leaf.center)(origin_lat, origin_lng)
            )
            attributes[leaf.node_id] = {"distance_km": float(distance)}
        return attributes


def annotate_tree_with_dataset(
    tree: LocationTree,
    dataset: CheckInDataset,
    config: Optional[AttributeConfig] = None,
) -> Dict[str, Dict[str, object]]:
    """Convenience wrapper: compute and install the global attributes on *tree*."""
    extractor = LocationAttributeExtractor(tree, dataset, config)
    return extractor.annotate_tree()


def user_location_profile(
    tree: LocationTree,
    dataset: CheckInDataset,
    user_id: str,
    config: Optional[AttributeConfig] = None,
) -> Dict[str, Dict[str, object]]:
    """Convenience wrapper: per-user home/office/outlier flags for every leaf."""
    extractor = LocationAttributeExtractor(tree, dataset, config)
    return extractor.user_profile(user_id)


def _argmax(counter: Counter) -> Optional[str]:
    if not counter:
        return None
    return max(sorted(counter), key=lambda key: counter[key])
