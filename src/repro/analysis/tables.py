"""Small result-table utilities.

The benchmark harness prints the same rows/series the paper's figures report
("who wins, by roughly what factor, where crossovers fall"); this module
keeps that formatting in one place so every benchmark produces uniform,
grep-able output that EXPERIMENTS.md can quote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np


@dataclass
class ResultTable:
    """A labelled table of experiment results.

    Rows are dictionaries; columns are discovered from the first row unless
    given explicitly.  Values are rendered with a compact numeric format.
    """

    title: str
    columns: Optional[List[str]] = None
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        if self.columns is None:
            self.columns = list(values.keys())
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned plain text."""
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        columns = self.columns or list(self.rows[0].keys())
        rendered_rows = [[_format_value(row.get(col)) for col in columns] for row in self.rows]
        widths = [
            max(len(str(col)), *(len(row[index]) for row in rendered_rows))
            for index, col in enumerate(columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(str(col).ljust(width) for col, width in zip(columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in rendered_rows:
            lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (benchmarks call this so results show with ``-s``)."""
        print("\n" + self.to_text())

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used when persisting experiment results)."""
        return {"title": self.title, "columns": self.columns, "rows": self.rows}


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / std / min / max summary of a series of measurements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    return {
        "mean": float(array.mean()),
        "std": float(array.std()),
        "min": float(array.min()),
        "max": float(array.max()),
        "count": int(array.size),
    }


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio used for "A is N× faster than B" style comparisons."""
    if denominator == 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator


def percentage_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction of *improved* relative to *baseline* (paper-style claims)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
