"""One engine shard: a worker process hosting a :class:`ForestEngine` replica.

The :class:`~repro.service.pool.EnginePool` runs N of these behind one
:class:`~repro.service.service.CORGIService`.  Following the DB-nets idea of
modelling component lifecycles as explicit states with verified
transitions, a shard is always in exactly one :class:`ShardState`, and the
parent-side handle enforces the legal transition graph — an illegal
transition is a bug and raises immediately instead of corrupting the pool's
bookkeeping.

Dispatch shape (the MSMQ-style queue-per-shard design): every shard owns a
private request queue and a private response queue.  The parent posts
`(op, ticket, payload)` tuples; the worker loop processes them serially
against its engine and posts ``(ticket, "ok"|"error", result)`` back.  A
collector thread in the parent drains the response queue and resolves the
per-ticket rendezvous; the same thread doubles as the health check — when
the queue stays silent it polls ``Process.is_alive()``, so a SIGKILLed
worker is detected within one poll interval and every request in flight on
it fails over (see :class:`~repro.service.pool.EnginePool`).

Only plain picklable data crosses the process boundary: requests carry
scalars, responses carry ``{root_id: ObfuscationMatrix}`` mappings — never
the tree, never a :class:`~repro.server.privacy_forest.PrivacyForest` (the
parent reattaches matrices to its own tree handle).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.core.objective import TargetDistribution
from repro.server.engine import ForestEngine, ServerConfig
from repro.service.handoff import decode_snapshot
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "ShardState",
    "ShardCrashedError",
    "ShardUnavailableError",
    "CONTROL_TICKET",
    "ShardOpExecutor",
    "shard_worker_main",
]

#: Ticket id reserved for unsolicited worker → parent control messages
#: (currently only the post-construction ``ready`` announcement).
CONTROL_TICKET = -1


class ShardState(Enum):
    """Lifecycle states of one shard slot (parent-side view)."""

    STARTING = "starting"
    READY = "ready"
    DRAINING = "draining"  # graceful drain: no new work, hand-off in progress
    DRAINED = "drained"  # drain complete, worker retired; respawnable
    CRASHED = "crashed"
    DEAD = "dead"  # crashed with the respawn budget exhausted — permanent
    STOPPED = "stopped"  # orderly shutdown


#: Legal lifecycle transitions.  ``CRASHED -> STARTING`` is the respawn
#: edge and ``DRAINED -> STARTING`` the post-drain revival edge (used by
#: ``EnginePool.respawn`` / ``rebalance``); ``DEAD`` and ``STOPPED`` are
#: terminal.  A worker dying mid-drain takes ``DRAINING -> CRASHED`` and
#: re-enters the normal crash/respawn path; a drain that *fails* without
#: killing the worker (flush timeout, hand-off error) rolls back
#: ``DRAINING -> READY`` so the slot is never stranded in a state nothing
#: can leave.
_LEGAL_TRANSITIONS: Dict[ShardState, Tuple[ShardState, ...]] = {
    ShardState.STARTING: (ShardState.READY, ShardState.CRASHED, ShardState.STOPPED),
    ShardState.READY: (ShardState.DRAINING, ShardState.CRASHED, ShardState.STOPPED),
    ShardState.DRAINING: (
        ShardState.DRAINED,
        ShardState.READY,
        ShardState.CRASHED,
        ShardState.STOPPED,
    ),
    ShardState.DRAINED: (ShardState.STARTING, ShardState.STOPPED),
    ShardState.CRASHED: (ShardState.STARTING, ShardState.DEAD, ShardState.STOPPED),
    ShardState.DEAD: (),
    ShardState.STOPPED: (),
}


def legal_transition(current: ShardState, target: ShardState) -> bool:
    """Whether ``current -> target`` is an edge of the lifecycle graph."""
    return target in _LEGAL_TRANSITIONS[current]


class ShardCrashedError(RuntimeError):
    """The shard died while (or before) serving the request.

    The pool treats this as retryable: the request is re-routed to the next
    shard on the consistent-hash ring while the crashed slot respawns.
    """


class ShardUnavailableError(RuntimeError):
    """The shard cannot accept work right now (not READY, or shutting down)."""


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to host an engine replica (picklable).

    ``max_workers`` is forced to 1: shard processes *are* the parallelism,
    and nested process fan-out inside a daemonic worker is not allowed by
    ``multiprocessing`` anyway.  ``keep_generation_results`` is forced off
    because convergence traces never cross the process boundary.
    """

    shard_id: int
    tree: LocationTree
    config: ServerConfig
    targets: Optional[TargetDistribution] = None
    chaos_build_delay_s: float = 0.0
    #: Published-priors generation the pickled tree carries at spawn.  The
    #: worker tracks it through ``set_priors`` ops and uses it to reject
    #: snapshot payloads built under different priors (see ``import_cache``).
    priors_version: int = 0

    def engine_config(self) -> ServerConfig:
        return replace(self.config, max_workers=1, keep_generation_results=False)


class ShardOpExecutor:
    """One engine replica's serial op interpreter (transport-agnostic).

    Both shard transports speak the same op vocabulary — the
    ``multiprocessing``-queue worker (:func:`shard_worker_main`) and the TCP
    socket server (:class:`repro.service.netshard.NetShardServer`) — so the
    engine-facing semantics live here once.  The executor owns the engine
    and the replica's current priors generation; callers feed it one
    ``(op, payload)`` at a time from a single thread (the queue/serving
    loop), exactly like the original worker loop.

    Ops:

    * ``build`` — payload ``(privacy_level, delta, epsilon, use_cache)``;
      result ``{"privacy_level", "delta", "epsilon", "matrices", "cached"}``.
    * ``invalidate`` — payload ``privacy_level | None``; result = #dropped.
    * ``set_priors`` — payload ``(priors_mapping, normalize, version)``;
      result = #forests flushed.  The executor records *version* as its
      current priors generation.
    * ``export_cache`` — payload ``payload_budget_bytes``; result = list of
      plain cache entries (see ``ForestEngine.export_cache_entries``) —
      live entries only, expired ones are excluded at export time.
    * ``import_cache`` — payload = an encoded snapshot blob
      (:func:`repro.service.handoff.encode_snapshot`); result =
      ``{"imported", "prewarmed", "skipped"}`` counts.  The replica — not
      just the pool — compares the snapshot's priors version against its
      own: on a mismatch payloads are dropped and the entries pre-warmed
      by rebuilding, so matrices built under other priors can never be
      installed under a fresh-priors fingerprint (the pool-side check is
      only an optimization; a ``set_priors`` queued ahead of the import
      would race it).  A malformed or version-skewed blob is an *answer*
      (``SnapshotFormatError`` raised to the transport), never a death.
    * ``diagnostics`` — engine cache diagnostics dict.
    * ``ping`` — liveness probe; result ``"pong"``.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.engine = ForestEngine(spec.tree, spec.engine_config(), targets=spec.targets)
        self.priors_version = int(spec.priors_version)

    def ready_announcement(self) -> Dict[str, object]:
        """The control payload a fresh replica announces itself with.

        Carries the replica's current priors generation so a parent
        (re)connecting to an already-warm replica — the socket-transport
        reconnect path — learns what the replica actually serves instead of
        assuming the spawn-time version.
        """
        return {
            "shard_id": self.spec.shard_id,
            "pid": os.getpid(),
            "priors_version": self.priors_version,
        }

    def execute(self, op: str, payload) -> object:
        """Run one op against the engine; exceptions are the caller's answer."""
        if op == "build":
            privacy_level, delta, epsilon, use_cache = payload
            if self.spec.chaos_build_delay_s > 0:
                # Chaos/test hook: widen the in-flight window so crash
                # injection lands deterministically mid-build.
                time.sleep(self.spec.chaos_build_delay_s)
            forest, cached = self.engine.build_forest_traced(
                privacy_level, delta, epsilon=epsilon, use_cache=use_cache
            )
            return {
                "privacy_level": forest.privacy_level,
                "delta": forest.delta,
                "epsilon": forest.epsilon,
                "matrices": dict(forest),
                "cached": cached,
            }
        if op == "invalidate":
            return self.engine.invalidate(payload)
        if op == "set_priors":
            priors, normalize, version = payload
            result = self.engine.publish_priors(priors, normalize=normalize)
            self.priors_version = int(version)
            return result
        if op == "export_cache":
            return self.engine.export_cache_entries(payload_budget_bytes=int(payload))
        if op == "import_cache":
            snapshot = decode_snapshot(payload)
            counts = {"imported": 0, "prewarmed": 0, "skipped": 0}
            # Authoritative skew check: a set_priors queued ahead of this
            # import already ran (the op stream is serial), so a version
            # mismatch here means the payloads were built on priors this
            # replica no longer serves — rebuild instead.
            skewed = snapshot.priors_version != self.priors_version
            for entry in snapshot.entries:
                if skewed:
                    entry = entry.without_payload()
                outcome = self.engine.import_cache_entry(
                    entry.privacy_level,
                    entry.delta,
                    entry.epsilon,
                    matrices=entry.matrices,
                    ttl_remaining_s=entry.ttl_remaining_s,
                )
                counts[outcome] += 1
            return counts
        if op == "diagnostics":
            return self.engine.cache_diagnostics()
        if op == "ping":
            return "pong"
        raise ValueError(f"unknown shard op {op!r}")


def shard_worker_main(spec: ShardSpec, request_queue, response_queue) -> None:
    """Worker-process entry point: serve the shard's request queue forever.

    Messages are ``(op, ticket, payload)`` tuples (``None`` = orderly
    shutdown); the op vocabulary and semantics live in
    :class:`ShardOpExecutor`, shared with the socket transport.

    Failures are *answers*, not crashes: any exception raised by the engine
    is shipped back under the request's ticket and re-raised in the caller.
    Only a process-level death (OOM kill, SIGKILL) leaves a ticket
    unanswered — that is the case the parent's collector thread detects.
    """
    executor = ShardOpExecutor(spec)
    response_queue.put((CONTROL_TICKET, "ready", executor.ready_announcement()))
    logger.debug("shard %d ready (pid %d)", spec.shard_id, os.getpid())
    parent_pid = os.getppid()
    while True:
        try:
            message = request_queue.get(timeout=1.0)
        except queue.Empty:
            # A SIGKILL'd parent never sends the ``None`` shutdown sentinel;
            # detect re-parenting and exit rather than linger as an orphan.
            if os.getppid() != parent_pid:
                logger.debug(
                    "shard %d orphaned (pid %d); exiting", spec.shard_id, os.getpid()
                )
                return
            continue
        if message is None:
            logger.debug("shard %d stopping (pid %d)", spec.shard_id, os.getpid())
            return
        op, ticket, payload = message
        try:
            result = executor.execute(op, payload)
        except BaseException as error:  # noqa: BLE001 - shipped to the caller
            response_queue.put((ticket, "error", error))
        else:
            response_queue.put((ticket, "ok", result))


class ShardHandle:
    """Parent-side view of one shard slot: process, queues, tickets, state.

    The handle owns the per-ticket rendezvous map and the verified state
    machine; process management (spawn, respawn, collector threads) is the
    pool's job.  All mutation happens under ``self.lock``.
    """

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.lock = threading.Lock()
        self.state = ShardState.STARTING
        self.process = None  # multiprocessing.Process, attached by the pool
        self.request_queue = None
        self.response_queue = None
        self.ready_event = threading.Event()
        self.pending: Dict[int, "_PendingTicket"] = {}
        self.respawns = 0
        self.generation = 0  # bumped on every (re)spawn
        self.priors_version = 0  # last published-priors version this worker carries
        self.dispatched = 0
        self.completed = 0
        self.crash_failures = 0

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #

    def transition(self, target: ShardState) -> None:
        """Move to *target*, enforcing the lifecycle graph (lock held by caller)."""
        if not legal_transition(self.state, target):
            raise RuntimeError(
                f"illegal shard transition {self.state.value} -> {target.value} "
                f"(slot {self.slot})"
            )
        logger.debug(
            "shard %d: %s -> %s", self.slot, self.state.value, target.value
        )
        self.state = target
        if target is ShardState.READY:
            self.ready_event.set()
        else:
            self.ready_event.clear()

    # ------------------------------------------------------------------ #
    # Tickets
    # ------------------------------------------------------------------ #

    def submit(
        self, op: str, payload, ticket: int, *, allow_draining: bool = False
    ) -> "_PendingTicket":
        """Register a ticket and post the request; raises if not READY.

        ``allow_draining=True`` is the drain protocol's narrow exception:
        the pool must still run ``export_cache`` on a DRAINING shard (whose
        READY days are over by definition) — regular routed work is never
        submitted with it.
        """
        with self.lock:
            accepted = (
                (ShardState.READY, ShardState.DRAINING)
                if allow_draining
                else (ShardState.READY,)
            )
            if self.state not in accepted:
                raise ShardUnavailableError(
                    f"shard {self.slot} is {self.state.value}, not ready"
                )
            entry = _PendingTicket()
            self.pending[ticket] = entry
            self.dispatched += 1
            request_queue = self.request_queue
        # Posting outside the lock: Queue.put can block on a full pipe and
        # must never do so while holding the ticket lock.
        request_queue.put((op, ticket, payload))
        return entry

    def resolve(self, ticket: int, status: str, payload) -> None:
        """Deliver a worker answer to its waiting caller (collector thread)."""
        with self.lock:
            entry = self.pending.pop(ticket, None)
            if entry is None:
                # Ticket already failed over (e.g. resolved as crashed just
                # before the respawned worker's answer arrived) — drop it.
                return
            self.completed += 1
        if status == "ok":
            entry.result = payload
        else:
            entry.error = payload
        entry.event.set()

    def abandon(self, ticket: int) -> None:
        """Forget a ticket whose caller gave up waiting (timeout).

        Without this, a timed-out request would sit in ``pending`` forever,
        inflating the ``in_flight`` gauge — and a stray late answer would be
        counted as completed work instead of being dropped by
        :meth:`resolve`.
        """
        with self.lock:
            self.pending.pop(ticket, None)

    def fail_pending(self, error: BaseException) -> int:
        """Fail every in-flight ticket (crash path); return how many."""
        with self.lock:
            entries = list(self.pending.values())
            self.pending.clear()
            self.crash_failures += len(entries)
        for entry in entries:
            entry.error = error
            entry.event.set()
        return len(entries)

    def info(self) -> Dict[str, object]:
        """JSON-friendly snapshot of this slot's lifecycle counters."""
        with self.lock:
            process = self.process
            return {
                "slot": self.slot,
                "state": self.state.value,
                "pid": None if process is None else process.pid,
                "alive": bool(process is not None and process.is_alive()),
                "respawns": self.respawns,
                "generation": self.generation,
                "dispatched": self.dispatched,
                "completed": self.completed,
                "in_flight": len(self.pending),
                "crash_failures": self.crash_failures,
            }


class _PendingTicket:
    """Rendezvous for one outstanding shard request."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None
