"""The obfuscation matrix ``Z`` (Section 2.1).

An obfuscation strategy over a finite location set ``V = {v_1, ..., v_K}``
is a row-stochastic matrix ``Z = {z_{i,j}}``: row ``i`` is the probability
distribution over reported locations given that the real location is
``v_i``.  :class:`ObfuscationMatrix` couples the numeric matrix with the
node ids it is defined over, so that pruning, precision reduction and
sampling always agree on which row/column corresponds to which location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.exceptions import MatrixValidationError
from repro.utils.rng import RandomState, as_rng

#: Default tolerance when validating row sums and non-negativity.
DEFAULT_ATOL = 1e-6


@dataclass
class ObfuscationMatrix:
    """A labelled, row-stochastic obfuscation matrix.

    Parameters
    ----------
    values:
        ``(K, K)`` array; ``values[i, j]`` is the probability of reporting
        location ``j`` when the real location is ``i``.
    node_ids:
        The ``K`` location identifiers, in row/column order.
    level:
        Tree level the matrix is defined at (0 = leaf granularity).
    epsilon:
        Privacy budget ε (per km) the matrix was generated for, if known.
    delta:
        Robustness budget δ (maximum locations prunable without violating
        Geo-Ind) the matrix was generated for; 0 for non-robust matrices.
    metadata:
        Free-form provenance (solver status, iterations, objective value...).
    """

    values: np.ndarray
    node_ids: List[str]
    level: int = 0
    epsilon: Optional[float] = None
    delta: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        self.node_ids = [str(node_id) for node_id in self.node_ids]
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self, atol: float = DEFAULT_ATOL) -> None:
        """Check shape, labelling, non-negativity and the probability unit measure (Eq. 1)."""
        if self.values.ndim != 2 or self.values.shape[0] != self.values.shape[1]:
            raise MatrixValidationError(
                f"obfuscation matrix must be square, got shape {self.values.shape}"
            )
        size = self.values.shape[0]
        if size == 0:
            raise MatrixValidationError("obfuscation matrix must not be empty")
        if len(self.node_ids) != size:
            raise MatrixValidationError(
                f"matrix has {size} rows but {len(self.node_ids)} node ids"
            )
        if len(set(self.node_ids)) != size:
            raise MatrixValidationError("node ids must be unique")
        if np.any(self.values < -atol):
            raise MatrixValidationError("matrix entries must be non-negative")
        row_sums = self.values.sum(axis=1)
        bad = np.where(np.abs(row_sums - 1.0) > atol)[0]
        if bad.size:
            raise MatrixValidationError(
                f"rows {bad[:5].tolist()} do not satisfy the probability unit measure "
                f"(sums {row_sums[bad[:5]].tolist()})"
            )
        if self.delta < 0:
            raise MatrixValidationError(f"delta must be non-negative, got {self.delta}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of locations K covered by the matrix."""
        return self.values.shape[0]

    def index_of(self, node_id: str) -> int:
        """Row/column index of *node_id*.

        Raises
        ------
        KeyError
            If the node id is not covered by the matrix.
        """
        try:
            return self._index()[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not covered by this obfuscation matrix") from None

    def _index(self) -> Dict[str, int]:
        index = self.metadata.get("_node_index")
        if not isinstance(index, dict) or len(index) != len(self.node_ids):
            index = {node_id: position for position, node_id in enumerate(self.node_ids)}
            self.metadata["_node_index"] = index
        return index

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._index()

    def row(self, node_id: str) -> np.ndarray:
        """The reporting distribution for real location *node_id* (a copy)."""
        return self.values[self.index_of(node_id)].copy()

    def probability(self, real_id: str, reported_id: str) -> float:
        """``Pr(reported | real)`` for a pair of node ids."""
        return float(self.values[self.index_of(real_id), self.index_of(reported_id)])

    def copy(self) -> "ObfuscationMatrix":
        """Deep copy (values and metadata)."""
        metadata = {k: v for k, v in self.metadata.items() if k != "_node_index"}
        return ObfuscationMatrix(
            values=self.values.copy(),
            node_ids=list(self.node_ids),
            level=self.level,
            epsilon=self.epsilon,
            delta=self.delta,
            metadata=dict(metadata),
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, real_id: str, seed: RandomState = None) -> str:
        """Sample an obfuscated location id for the given real location id."""
        rng = as_rng(seed)
        row = self.values[self.index_of(real_id)]
        probabilities = np.clip(row, 0.0, None)
        total = probabilities.sum()
        if total <= 0:
            raise MatrixValidationError(f"row for {real_id!r} has zero total probability")
        probabilities = probabilities / total
        choice = int(rng.choice(self.size, p=probabilities))
        return self.node_ids[choice]

    def sample_many(self, real_id: str, count: int, seed: RandomState = None) -> List[str]:
        """Sample *count* obfuscated locations for one real location."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = as_rng(seed)
        row = np.clip(self.values[self.index_of(real_id)], 0.0, None)
        row = row / row.sum()
        choices = rng.choice(self.size, size=count, p=row)
        return [self.node_ids[int(choice)] for choice in choices]

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def reported_distribution(self, priors: Sequence[float]) -> np.ndarray:
        """Marginal distribution of the reported location given leaf priors."""
        prior = np.asarray(priors, dtype=float)
        if prior.shape != (self.size,):
            raise ValueError(f"priors must have shape ({self.size},), got {prior.shape}")
        return prior @ self.values

    def posterior(self, priors: Sequence[float], reported_id: str) -> np.ndarray:
        """Bayesian posterior over real locations given a reported location.

        ``Pr(X = v_i | Y = v_l) ∝ p_i * z_{i,l}`` — the attacker-side view of
        Definition 2.1.
        """
        prior = np.asarray(priors, dtype=float)
        if prior.shape != (self.size,):
            raise ValueError(f"priors must have shape ({self.size},), got {prior.shape}")
        column = self.values[:, self.index_of(reported_id)]
        joint = prior * column
        total = joint.sum()
        if total <= 0:
            # The reported location has zero probability under the prior; the
            # posterior is undefined — return the prior as a neutral answer.
            return prior / prior.sum()
        return joint / total

    # ------------------------------------------------------------------ #
    # Restructuring
    # ------------------------------------------------------------------ #

    def submatrix(self, node_ids: Sequence[str], *, renormalize: bool = False) -> "ObfuscationMatrix":
        """Restriction of the matrix to a subset of locations.

        Without renormalisation the result generally violates the unit
        measure and is returned as a plain array via :meth:`restrict_values`;
        with ``renormalize=True`` each remaining row is rescaled to sum to 1
        (this is exactly the matrix-pruning operation of Section 4.3 — prefer
        :func:`repro.core.pruning.prune_matrix`, which also records what was
        pruned).
        """
        indices = [self.index_of(node_id) for node_id in node_ids]
        values = self.values[np.ix_(indices, indices)].copy()
        if renormalize:
            sums = values.sum(axis=1, keepdims=True)
            if np.any(sums <= 0):
                raise MatrixValidationError("cannot renormalise a row with zero remaining mass")
            values = values / sums
        return ObfuscationMatrix(
            values=values,
            node_ids=list(node_ids),
            level=self.level,
            epsilon=self.epsilon,
            delta=self.delta,
            metadata={
                "parent_size": self.size,
                **{k: v for k, v in self.metadata.items() if k != "_node_index"},
            },
        )

    def restrict_values(self, node_ids: Sequence[str]) -> np.ndarray:
        """Raw sub-array over *node_ids* without any validation or rescaling."""
        indices = [self.index_of(node_id) for node_id in node_ids]
        return self.values[np.ix_(indices, indices)].copy()

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by the server/client message layer)."""
        return {
            "node_ids": list(self.node_ids),
            "values": self.values.tolist(),
            "level": self.level,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "metadata": {k: v for k, v in self.metadata.items() if k != "_node_index"},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ObfuscationMatrix":
        """Inverse of :meth:`to_dict`."""
        return cls(
            values=np.asarray(payload["values"], dtype=float),
            node_ids=list(payload["node_ids"]),  # type: ignore[arg-type]
            level=int(payload.get("level", 0)),  # type: ignore[arg-type]
            epsilon=payload.get("epsilon"),  # type: ignore[arg-type]
            delta=int(payload.get("delta", 0)),  # type: ignore[arg-type]
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    @classmethod
    def uniform(cls, node_ids: Sequence[str], level: int = 0) -> "ObfuscationMatrix":
        """The uniform obfuscation matrix (every row is the uniform distribution).

        Always satisfies ε-Geo-Ind for any ε, so it is both the fallback
        strategy and the canonical feasible point of the LP.
        """
        size = len(node_ids)
        if size == 0:
            raise MatrixValidationError("cannot build a matrix over zero locations")
        values = np.full((size, size), 1.0 / size)
        return cls(values=values, node_ids=list(node_ids), level=level)

    @classmethod
    def identity(cls, node_ids: Sequence[str], level: int = 0) -> "ObfuscationMatrix":
        """The identity (no obfuscation) matrix — maximal utility, no privacy."""
        size = len(node_ids)
        if size == 0:
            raise MatrixValidationError("cannot build a matrix over zero locations")
        return cls(values=np.eye(size), node_ids=list(node_ids), level=level)

    def __repr__(self) -> str:
        return (
            f"ObfuscationMatrix(size={self.size}, level={self.level}, "
            f"epsilon={self.epsilon}, delta={self.delta})"
        )
