"""Serve CORGI over HTTP and obfuscate through the client transport.

Demonstrates the engine → service → transport stack introduced by the
server-side split:

1. the server process builds the location tree and wraps the pure
   ``ForestEngine`` in a ``CORGIService`` (single-flight coalescing,
   admission control, metrics) behind a stdlib HTTP JSON server;
2. the user device talks to it through an ``HTTPTransport`` — the
   ``CORGIClient`` pipeline is unchanged, only the forest now crosses a
   real socket;
3. the service metrics show the coalescing effect when several identical
   requests arrive at once.

Here both halves run in one process on an ephemeral port so the example is
self-contained; point ``HTTPTransport`` at any reachable host to split
them (e.g. ``python -m repro.experiments.runner --serve --port 8350``).

Run with::

    python examples/serve_http.py
"""

import json
import threading

from repro import (
    CORGIClient,
    CORGIHTTPServer,
    CORGIService,
    HTTPTransport,
    Policy,
    ServerConfig,
    annotate_tree_with_dataset,
    priors_from_checkins,
    tree_for_region,
)
from repro.datasets import SAN_FRANCISCO
from repro.datasets.synthetic import generate_small_dataset
from repro.server.engine import ForestEngine
from repro.server.messages import ObfuscationRequest


def main() -> None:
    # --- server side -------------------------------------------------- #
    dataset = generate_small_dataset(num_checkins=4_000, seed=7)
    tree = tree_for_region(SAN_FRANCISCO, height=2, root_resolution=7)
    priors_from_checkins(tree, dataset)
    annotate_tree_with_dataset(tree, dataset)

    engine = ForestEngine(tree, ServerConfig(epsilon=10.0, num_targets=20, robust_iterations=3))
    service = CORGIService(engine)

    with CORGIHTTPServer(service, port=0) as server:  # port=0 → ephemeral
        print(f"server: listening on {server.url}")

        # --- user device --------------------------------------------- #
        transport = HTTPTransport(server.url)
        print("client: health check:", transport.health())

        client = CORGIClient(tree, transport)
        real_lat, real_lng = tree.root.center.as_tuple()
        policy = Policy.from_strings(
            privacy_level=2,
            precision_level=0,
            preferences=["popular = True"],
            delta=3,
        )
        outcome = client.obfuscate(real_lat, real_lng, policy, seed=42)
        print(f"client: real location     ({real_lat:.5f}, {real_lng:.5f})")
        print(
            f"client: reported location ({outcome.reported_center.lat:.5f}, "
            f"{outcome.reported_center.lng:.5f})  [node {outcome.reported_node_id}]"
        )

        # --- coalescing under concurrent identical requests ----------- #
        # delta=2 is not in the engine cache yet, so the five concurrent
        # requests race: one becomes the build leader, the rest coalesce.
        request = ObfuscationRequest(privacy_level=2, delta=2)
        threads = [
            threading.Thread(target=transport.fetch_forest, args=(request,))
            for _ in range(5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        metrics = transport.metrics()
        print("server: service metrics:")
        print(json.dumps(metrics["service"], indent=2))
        print("server: structure sharing:", metrics["engine"]["structure_sharing"])

        # --- cache lifecycle over the admin surface -------------------- #
        # A live prior update (new check-in statistics) flushes every
        # cached forest; an explicit invalidation does the same on demand.
        # With `--shards N` (see repro.experiments.runner) both calls are
        # broadcast to every shard process of the EnginePool.
        new_priors = {
            leaf.node_id: leaf.prior + 0.001 for leaf in tree.leaves()
        }
        flushed = transport.publish_priors(new_priors)
        print(f"admin: published new priors, flushed {flushed} cached forest(s)")
        dropped = transport.invalidate()
        print(f"admin: explicit invalidate dropped {dropped} cached forest(s)")


if __name__ == "__main__":
    main()
