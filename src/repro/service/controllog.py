"""Crash-safe append-only control log for priors/invalidation events.

The pool's control plane — ``publish_priors`` and ``invalidate`` — is what
makes replicas diverge after a crash: PR 5 had to patch a split-brain edge
where a replica outlived a head restart carrying a priors generation the
new head had never seen, and the only safe answer in RAM-only operation was
to reset the replica defensively.  This module makes the control plane
durable instead, following the store-and-forward durable-queue pattern from
the MSMQ multi-branch synchronization literature: every control event is
appended to an fsync'd log *before* it is applied or broadcast, each record
carries a monotonically increasing version (the log sequence number), and a
restarted head replays the log on boot to recover the authoritative priors
generation from disk.

On-disk format — one binary framed record per event::

    +-------+---------+-------------+---------------+-----------+
    | magic | version | payload len | CRC32(payload)| payload   |
    | CRGL  |   u8    |     u32     |      u32      | JSON utf8 |
    +-------+---------+-------------+---------------+-----------+

The payload is canonical (sorted-keys) JSON holding at least ``type`` and
``version``.  Decoding is strict and typed: a truncated header or payload,
wrong magic, unsupported format version, oversized length, or checksum
mismatch raises :class:`ControlLogFormatError` — never a crash.  Replay
(:func:`scan_records`) stops at the first malformed record and reports the
valid prefix, so a torn tail from a kill -9 mid-append degrades to "replay
what was durably committed" and the torn bytes are truncated away before
the next append.

Append failures (disk full, read-only volume, an unserializable payload)
are counted and logged but never raised into the serving path: versions
keep advancing in memory so the fleet stays consistent, and the
diagnostics surface the durability gap.  An *encode* failure is the one
exception to "versions keep advancing": the record never existed, so its
sequence number is not burned — the next append reuses it.

The log is also the replication source of truth (:mod:`repro.service
.replication`): appends go through one persistent handle whose file is
made durable — including the directory entry on first create — before any
listener observes the record, so a follower tailing the log can never be
shipped a record that a primary crash would un-happen.  Followers append
the primary's records verbatim via :meth:`ControlLog.append_replicated`
(store-and-forward: commit locally first, apply second).
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import CORGIError

__all__ = [
    "CONTROL_LOG_MAGIC",
    "CONTROL_LOG_VERSION",
    "MAX_RECORD_BYTES",
    "ControlLog",
    "ControlLogFormatError",
    "ControlLogReplay",
    "decode_record",
    "encode_record",
    "scan_records",
]

logger = logging.getLogger(__name__)

#: Record magic: identifies bytes as a CORGI control-log record.
CONTROL_LOG_MAGIC = b"CRGL"

#: On-disk format version.  Bumped on any incompatible record change;
#: decoders reject every other version outright (a skewed reader must
#: fall back to a cold boot, never misread a record).
CONTROL_LOG_VERSION = 1

#: Upper bound on a single record payload.  Priors for even a deep tree
#: are well under a megabyte; anything larger is corruption, not data.
MAX_RECORD_BYTES = 16 << 20

_RECORD_HEADER = struct.Struct(">4sBII")


class ControlLogFormatError(CORGIError, ValueError):
    """The bytes are not a well-formed control-log record.

    Subclasses :class:`ValueError` so transports map it to a client fault,
    and :class:`CORGIError` so library-level handlers catch it with
    everything else.  Raised for truncation, bad magic, version skew,
    oversized lengths, and checksum mismatches alike.
    """


def encode_record(event: Mapping[str, object]) -> bytes:
    """Serialize one control event to its framed, checksummed wire form."""
    if not isinstance(event, Mapping):
        raise ControlLogFormatError(
            f"control-log event must be a mapping, got {type(event).__name__}"
        )
    payload = json.dumps(dict(event), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise ControlLogFormatError(
            f"control-log payload of {len(payload)} bytes exceeds cap {MAX_RECORD_BYTES}"
        )
    header = _RECORD_HEADER.pack(
        CONTROL_LOG_MAGIC, CONTROL_LOG_VERSION, len(payload), zlib.crc32(payload)
    )
    return header + payload


def decode_record(data: bytes, offset: int = 0) -> Tuple[Dict[str, object], int]:
    """Parse one record at ``offset``; return ``(event, next_offset)``.

    Strict and typed: raises :class:`ControlLogFormatError` for a truncated
    header/payload, wrong magic, unsupported format version, implausible
    length, checksum mismatch, or a payload that is not a JSON object.
    """
    view = memoryview(data)[offset:]
    if len(view) < _RECORD_HEADER.size:
        raise ControlLogFormatError(
            f"truncated control-log record header ({len(view)} of {_RECORD_HEADER.size} bytes)"
        )
    magic, version, length, checksum = _RECORD_HEADER.unpack_from(view)
    if magic != CONTROL_LOG_MAGIC:
        raise ControlLogFormatError(f"bad control-log record magic {bytes(magic)!r}")
    if version != CONTROL_LOG_VERSION:
        raise ControlLogFormatError(
            f"unsupported control-log record version {version} "
            f"(this build speaks {CONTROL_LOG_VERSION})"
        )
    if length > MAX_RECORD_BYTES:
        raise ControlLogFormatError(
            f"control-log record claims {length} payload bytes, cap is {MAX_RECORD_BYTES}"
        )
    body = view[_RECORD_HEADER.size : _RECORD_HEADER.size + length]
    if len(body) < length:
        raise ControlLogFormatError(
            f"truncated control-log record payload ({len(body)} of {length} bytes)"
        )
    payload = bytes(body)
    if zlib.crc32(payload) != checksum:
        raise ControlLogFormatError("control-log record checksum mismatch (corrupt payload)")
    try:
        event = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ControlLogFormatError(f"malformed control-log record payload: {error}") from error
    if not isinstance(event, dict):
        raise ControlLogFormatError("control-log record payload must be a JSON object")
    return event, offset + _RECORD_HEADER.size + length


def scan_records(data: bytes) -> Tuple[List[Dict[str, object]], int, Optional[str]]:
    """Replay every well-formed record from the head of ``data``.

    Returns ``(records, valid_bytes, error)`` where ``records`` is the
    longest decodable prefix, ``valid_bytes`` is the offset the prefix ends
    at, and ``error`` describes the first malformed record (``None`` for a
    clean scan).  Never raises: a torn tail from a crash mid-append is a
    normal recovery input, not an exception.
    """
    records: List[Dict[str, object]] = []
    offset = 0
    total = len(data)
    while offset < total:
        try:
            event, offset = decode_record(data, offset)
        except ControlLogFormatError as error:
            return records, offset, str(error)
        records.append(event)
    return records, offset, None


@dataclass(frozen=True)
class ControlLogReplay:
    """What a boot-time replay recovered from disk."""

    records: Tuple[Dict[str, object], ...] = ()
    last_version: int = 0
    valid_bytes: int = 0
    truncated_bytes: int = 0
    error: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=dict)


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync (some filesystems refuse the handle)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class ControlLog:
    """Append-only, fsync'd control log with boot-time replay.

    Thread-safe.  ``append`` frames the record first (so a bad payload is
    counted, never raised, and never burns a version), then allocates the
    next monotonic version and commits it with write+fsync through one
    persistent append handle before returning — callers apply/broadcast
    only after the append, so a crash between commit and broadcast
    converges on replay (write-ahead ordering).  A torn tail found at open
    time is truncated away so subsequent appends never land after garbage.

    The durable record sequence is retained in memory (control events are
    rare and small) so a replication primary can stream the backlog to a
    late-subscribing follower; ``add_listener`` observers fire only after
    a record — and, on first create, the directory entry of the log file
    itself — is durable on disk.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._appends = 0
        self._append_errors = 0
        self._replicated_appends = 0
        self._disabled = False
        self._closed = False
        self._handle = None
        self._listeners: List[Callable[[Dict[str, object]], None]] = []
        self.replay = self._load()
        self._last_version = self.replay.last_version
        # Durable records in file order: the replay prefix plus every
        # append that actually reached disk (in-memory-only appends are
        # excluded — a follower must never receive a record a primary
        # crash would un-happen).
        self._records: List[Dict[str, object]] = [dict(r) for r in self.replay.records]

    def _load(self) -> ControlLogReplay:
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            data = b""
        except OSError as error:
            logger.warning("control log %s unreadable (%s); starting empty", self.path, error)
            self._disabled = True
            return ControlLogReplay(error=str(error))
        records, valid_bytes, error = scan_records(data)
        truncated = len(data) - valid_bytes
        if truncated:
            logger.warning(
                "control log %s has a torn/corrupt tail of %d bytes after %d records (%s); "
                "truncating to the valid prefix",
                self.path,
                truncated,
                len(records),
                error,
            )
            try:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError as truncate_error:
                # Cannot repair the tail: disable appends rather than risk
                # interleaving new records with garbage.
                logger.warning(
                    "control log %s tail truncation failed (%s); appends disabled",
                    self.path,
                    truncate_error,
                )
                self._disabled = True
        last_version = 0
        for record in records:
            version = record.get("version")
            if isinstance(version, int) and not isinstance(version, bool):
                last_version = max(last_version, version)
        return ControlLogReplay(
            records=tuple(records),
            last_version=last_version,
            valid_bytes=valid_bytes,
            truncated_bytes=truncated,
            error=error,
        )

    @property
    def last_version(self) -> int:
        with self._lock:
            return self._last_version

    @property
    def durable_version(self) -> int:
        """Highest version that actually reached disk (the replication head).

        Can trail :attr:`last_version` when appends are failing: in-memory
        versions keep serving monotonic, but only durable records may be
        shipped to followers — a primary crash must never un-happen a
        record a follower already holds.
        """
        with self._lock:
            version = 0
            for record in self._records:
                value = record.get("version")
                if isinstance(value, int) and not isinstance(value, bool):
                    version = max(version, value)
            return version

    def _ensure_handle(self):
        """Open (or reuse) the persistent append handle; caller holds the lock.

        On first create the *directory entry* is fsync'd too: a follower
        that finds the file must be guaranteed every byte it reads survives
        a primary crash, and a file whose dirent is still only in the page
        cache does not qualify.
        """
        if self._handle is None:
            existed = self.path.exists()
            self._handle = open(self.path, "ab")
            if not existed:
                _fsync_dir(self.path.parent)
        return self._handle

    def _drop_handle(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def _write_durable(self, blob: bytes) -> None:
        """write+fsync one framed record; caller holds the lock.

        On any I/O error the handle is dropped so the next append reopens
        fresh — the descriptor may point at a rotated/unlinked file or be
        poisoned by the failed write.
        """
        handle = self._ensure_handle()
        try:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        except OSError:
            self._drop_handle()
            raise

    def append(self, event_type: str, payload: Optional[Mapping[str, object]] = None) -> int:
        """Durably record one control event; return its version.

        The record is encoded *before* the version is committed: an
        unserializable payload is counted as an append error and the
        current (unchanged) version is returned — the failed event never
        existed, so its sequence number is not burned.  After a successful
        encode the version advances even when the disk write fails
        (counted and logged) so the in-memory control plane stays
        monotonic — durability degrades, serving does not.
        """
        durable_record: Optional[Dict[str, object]] = None
        with self._lock:
            record: Dict[str, object] = dict(payload or {})
            record["type"] = str(event_type)
            version = self._last_version + 1
            record["version"] = version
            try:
                blob = encode_record(record)
            except (ControlLogFormatError, TypeError, ValueError) as error:
                self._append_errors += 1
                logger.warning(
                    "control log %s cannot encode event %r (%s); event dropped, "
                    "version not burned",
                    self.path,
                    event_type,
                    error,
                )
                return self._last_version
            self._last_version = version
            if self._disabled or self._closed:
                self._append_errors += 1
                return version
            try:
                self._write_durable(blob)
                self._appends += 1
                self._records.append(record)
                durable_record = record
            except OSError as error:
                self._append_errors += 1
                logger.warning(
                    "control log %s append failed (%s); event %r v%d is in-memory only",
                    self.path,
                    error,
                    event_type,
                    version,
                )
        if durable_record is not None:
            self._notify(durable_record)
        return version

    def append_replicated(self, record: Mapping[str, object]) -> bool:
        """Durably append a record that already carries its version.

        The store-and-forward path for replication followers: the record —
        allocated and framed by the primary — is committed to the local
        log *before* it is applied, so a crash between receive and apply
        converges on replay.  Returns True when the record advanced the
        local sequence, False when it is stale (version at or below the
        local head) or unencodable.  Raises :class:`ControlLogFormatError`
        only for a record with no usable version at all — that is a
        protocol fault, not data.
        """
        event = dict(record)
        version = event.get("version")
        if not isinstance(version, int) or isinstance(version, bool) or version <= 0:
            raise ControlLogFormatError(
                f"replicated record carries invalid version {version!r}"
            )
        durable_record: Optional[Dict[str, object]] = None
        with self._lock:
            if version <= self._last_version:
                return False
            try:
                blob = encode_record(event)
            except (ControlLogFormatError, TypeError, ValueError) as error:
                self._append_errors += 1
                logger.warning(
                    "control log %s cannot encode replicated record v%d (%s)",
                    self.path,
                    version,
                    error,
                )
                return False
            self._last_version = version
            if self._disabled or self._closed:
                self._append_errors += 1
            else:
                try:
                    self._write_durable(blob)
                    self._replicated_appends += 1
                    self._records.append(event)
                    durable_record = event
                except OSError as error:
                    self._append_errors += 1
                    logger.warning(
                        "control log %s replicated append v%d failed (%s); "
                        "record is in-memory only",
                        self.path,
                        version,
                        error,
                    )
        if durable_record is not None:
            self._notify(durable_record)
        return True

    # ------------------------------------------------------------------ #
    # Replication tailing: durable-record access and append listeners
    # ------------------------------------------------------------------ #

    def records_since(self, version: int) -> List[Dict[str, object]]:
        """Durable records newer than ``version``, in file (commit) order."""
        with self._lock:
            return [
                dict(record)
                for record in self._records
                if isinstance(record.get("version"), int)
                and not isinstance(record.get("version"), bool)
                and record["version"] > version
            ]

    def records_after_index(self, index: int) -> List[Dict[str, object]]:
        """Durable records past a commit-order index (a tailer's read head)."""
        with self._lock:
            return [dict(record) for record in self._records[index:]]

    def add_listener(self, listener: Callable[[Dict[str, object]], None]) -> None:
        """Observe every durably committed record (called outside the lock).

        Listeners must be fast and non-raising; exceptions are swallowed
        and logged.  Delivery order across concurrent appenders is not
        guaranteed — tailers should treat the callback as a wake-up and
        read the ordered sequence via :meth:`records_after_index`.
        """
        with self._lock:
            self._listeners.append(listener)

    def _notify(self, record: Dict[str, object]) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(dict(record))
            except Exception:  # noqa: BLE001 - observers cannot break the log
                logger.exception("control-log listener failed for v%s", record.get("version"))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "path": str(self.path),
                "records_replayed": len(self.replay.records),
                "last_version": self._last_version,
                "replayed_version": self.replay.last_version,
                "truncated_tail_bytes": self.replay.truncated_bytes,
                "replay_error": self.replay.error,
                "appends": self._appends,
                "append_errors": self._append_errors,
                "replicated_appends": self._replicated_appends,
                "records_retained": len(self._records),
                "disabled": self._disabled,
                "closed": self._closed,
            }

    def close(self) -> None:
        """Release the persistent append handle (idempotent).

        A closed log refuses further disk writes: late appends still
        advance the in-memory version (the monotonicity contract) but are
        counted as append errors instead of racing a shutdown.
        """
        with self._lock:
            self._closed = True
            self._drop_handle()
