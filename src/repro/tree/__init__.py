"""Location tree model (Section 3.1 of the paper).

A :class:`~repro.tree.location_tree.LocationTree` organises the cells of the
hexagonal grid into the balanced, disjoint hierarchy of Definition 3.1:
level 0 holds the leaf locations (finest granularity), level ``H`` the root
covering the whole area of interest, and the children of every non-leaf node
partition it.  Priors over leaf nodes are estimated from check-in data
(:mod:`repro.tree.priors`) and aggregate upwards.
"""

from repro.tree.builder import build_location_tree, tree_for_region
from repro.tree.location_tree import LocationTree
from repro.tree.node import LocationNode
from repro.tree.priors import (
    aggregate_priors,
    checkin_counts_by_cell,
    priors_from_checkins,
    uniform_priors,
)

__all__ = [
    "LocationNode",
    "LocationTree",
    "build_location_tree",
    "tree_for_region",
    "priors_from_checkins",
    "checkin_counts_by_cell",
    "uniform_priors",
    "aggregate_priors",
]
