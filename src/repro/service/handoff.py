"""Versioned, host-agnostic cache-snapshot protocol for warm shard hand-off.

When a shard drains (or crashes), its hot forest cache should not die with
it: the pool ships a **cache snapshot** to the shard's ring siblings so the
keys that were hot on the departing shard are served warm instead of
rebuilt through the LP pipeline.  Following the multi-branch state-hand-off
patterns in the related work (MSMQ-style enterprise synchronization;
verified net-transition semantics), the transfer is an explicit, versioned
protocol rather than ad-hoc cache copying:

* a snapshot always carries the **keys** — normalized ``(privacy_level, δ,
  ε)`` triples plus each entry's remaining TTL and the source shard's
  priors version;
* it carries the **payload** (the per-sub-tree obfuscation matrices) only
  while a size budget allows, so a huge cache degrades to a key-only
  snapshot that the receiver pre-warms by rebuilding instead of a transfer
  that stalls the drain;
* the wire format is **host-agnostic by construction**: entries name
  semantic request keys (never engine-internal fingerprints, which fold in
  local config and priors), TTL is shipped as *remaining seconds* (never a
  local monotonic timestamp), and the envelope is versioned JSON — the
  groundwork for cross-host sharding, where the same blob crosses a socket
  instead of a ``multiprocessing`` queue.

Decoding is strict: a truncated, non-JSON, version-skewed or field-invalid
blob raises :class:`SnapshotFormatError` (a ``ValueError``, so transports
map it to HTTP 400) — never a crash in the receiving worker.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.exceptions import CORGIError, MatrixValidationError
from repro.core.matrix import ObfuscationMatrix

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "CacheSnapshot",
    "SnapshotEntry",
    "SnapshotFormatError",
    "decode_snapshot",
    "encode_snapshot",
    "entry_payload_bytes",
]

#: Envelope magic: identifies a blob as a CORGI cache snapshot.
SNAPSHOT_FORMAT = "corgi-cache-snapshot"

#: Protocol version.  Bumped on any incompatible change to the envelope or
#: entry fields; decoders reject every other version outright (a skewed
#: peer must fall back to cold rebuilds, never misread a blob).
SNAPSHOT_VERSION = 1


class SnapshotFormatError(CORGIError, ValueError):
    """The blob is not a well-formed snapshot of a supported version.

    Subclasses :class:`ValueError` so the HTTP error mapping classifies it
    as a client fault (400), and :class:`CORGIError` so library-level
    handlers can catch it with everything else.
    """


@dataclass(frozen=True)
class SnapshotEntry:
    """One cached forest in a snapshot.

    ``matrices`` is the optional payload (``{subtree_root_id: matrix}``);
    ``None`` means key-only — the receiver pre-warms by rebuilding.
    ``ttl_remaining_s`` is relative (seconds of life left at export time);
    ``None`` means the entry never expires.
    """

    privacy_level: int
    delta: int
    epsilon: float
    ttl_remaining_s: Optional[float] = None
    matrices: Optional[Dict[str, ObfuscationMatrix]] = None

    @property
    def key(self) -> Tuple[int, int, float]:
        """The normalized request key this entry caches."""
        return (self.privacy_level, self.delta, self.epsilon)

    def without_payload(self) -> "SnapshotEntry":
        """A key-only copy (used when priors versions skew — see the pool)."""
        return replace(self, matrices=None)


@dataclass(frozen=True)
class CacheSnapshot:
    """A shard's forest-cache state, ready to ship to a ring sibling."""

    shard_slot: int
    priors_version: int
    entries: Tuple[SnapshotEntry, ...] = ()


def entry_payload_bytes(matrices: Dict[str, ObfuscationMatrix]) -> int:
    """Size of one entry's payload (matrix value bytes — the dominant cost)."""
    return sum(int(matrix.values.nbytes) for matrix in matrices.values())


def encode_snapshot(snapshot: CacheSnapshot) -> bytes:
    """Serialize a snapshot to its versioned wire form (UTF-8 JSON bytes)."""
    entries = []
    for entry in snapshot.entries:
        payload = None
        if entry.matrices is not None:
            payload = {
                str(root_id): matrix.to_dict()
                for root_id, matrix in entry.matrices.items()
            }
        entries.append(
            {
                "privacy_level": int(entry.privacy_level),
                "delta": int(entry.delta),
                "epsilon": float(entry.epsilon),
                "ttl_remaining_s": (
                    None if entry.ttl_remaining_s is None else float(entry.ttl_remaining_s)
                ),
                "matrices": payload,
            }
        )
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "shard_slot": int(snapshot.shard_slot),
        "priors_version": int(snapshot.priors_version),
        "entries": entries,
    }
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def _require_int(value: object, name: str, *, minimum: Optional[int] = None) -> int:
    # bool is an int subclass but never a legal wire integer here.
    if isinstance(value, bool) or not isinstance(value, int):
        raise SnapshotFormatError(f"snapshot field {name!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise SnapshotFormatError(f"snapshot field {name!r} must be >= {minimum}, got {value}")
    return value


def _decode_entry(raw: object, index: int) -> SnapshotEntry:
    if not isinstance(raw, dict):
        raise SnapshotFormatError(f"snapshot entry {index} must be an object, got {type(raw).__name__}")
    privacy_level = _require_int(raw.get("privacy_level"), "privacy_level", minimum=0)
    delta = _require_int(raw.get("delta"), "delta", minimum=0)
    epsilon = raw.get("epsilon")
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int, float)):
        raise SnapshotFormatError(f"snapshot field 'epsilon' must be a number, got {epsilon!r}")
    epsilon = float(epsilon)
    if not math.isfinite(epsilon) or epsilon <= 0:
        raise SnapshotFormatError(f"snapshot field 'epsilon' must be finite and positive, got {epsilon}")
    ttl_remaining = raw.get("ttl_remaining_s")
    if ttl_remaining is not None:
        if isinstance(ttl_remaining, bool) or not isinstance(ttl_remaining, (int, float)):
            raise SnapshotFormatError(
                f"snapshot field 'ttl_remaining_s' must be a number or null, got {ttl_remaining!r}"
            )
        ttl_remaining = float(ttl_remaining)
        if not math.isfinite(ttl_remaining):
            raise SnapshotFormatError("snapshot field 'ttl_remaining_s' must be finite")
    payload = raw.get("matrices")
    matrices: Optional[Dict[str, ObfuscationMatrix]] = None
    if payload is not None:
        if not isinstance(payload, dict):
            raise SnapshotFormatError(f"snapshot entry {index} payload must be an object")
        matrices = {}
        for root_id, matrix_payload in payload.items():
            try:
                matrices[str(root_id)] = ObfuscationMatrix.from_dict(matrix_payload)
            except (KeyError, TypeError, ValueError, MatrixValidationError) as error:
                raise SnapshotFormatError(
                    f"snapshot entry {index} carries an invalid matrix for {root_id!r}: {error}"
                ) from error
    return SnapshotEntry(
        privacy_level=privacy_level,
        delta=delta,
        epsilon=epsilon,
        ttl_remaining_s=ttl_remaining,
        matrices=matrices,
    )


def decode_snapshot(blob: bytes) -> CacheSnapshot:
    """Parse and validate a snapshot blob; reject anything malformed.

    Raises :class:`SnapshotFormatError` for a non-bytes input, truncated or
    non-JSON blob, wrong magic, unsupported version, or any invalid entry
    field — the receiving worker must degrade to cold rebuilds, never die.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise SnapshotFormatError(f"snapshot blob must be bytes, got {type(blob).__name__}")
    try:
        envelope = json.loads(bytes(blob).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(f"truncated or malformed snapshot blob: {error}") from error
    if not isinstance(envelope, dict):
        raise SnapshotFormatError("snapshot envelope must be a JSON object")
    if envelope.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotFormatError(f"not a cache snapshot (format {envelope.get('format')!r})")
    version = _require_int(envelope.get("version"), "version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot version {version} (this build speaks {SNAPSHOT_VERSION})"
        )
    shard_slot = _require_int(envelope.get("shard_slot"), "shard_slot", minimum=0)
    priors_version = _require_int(envelope.get("priors_version"), "priors_version", minimum=0)
    raw_entries = envelope.get("entries")
    if not isinstance(raw_entries, list):
        raise SnapshotFormatError("snapshot 'entries' must be a list")
    entries = tuple(_decode_entry(raw, index) for index, raw in enumerate(raw_entries))
    return CacheSnapshot(shard_slot=shard_slot, priors_version=priors_version, entries=entries)
