"""Tests for the obfuscation matrix, Geo-Ind checking and the quality-loss objective."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import MatrixValidationError
from repro.core.geoind import (
    all_pairs_constraints,
    check_geo_ind,
    count_constraints,
    epsilon_lower_bound,
    neighbor_constraints,
    satisfies_geo_ind,
)
from repro.core.matrix import ObfuscationMatrix
from repro.core.objective import QualityLossModel, TargetDistribution, estimation_error_km

IDS3 = ["a", "b", "c"]


def simple_distances(size=3, spacing=1.0):
    indices = np.arange(size, dtype=float)
    return np.abs(indices[:, None] - indices[None, :]) * spacing


class TestObfuscationMatrixBasics:
    def test_uniform_matrix(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        assert matrix.size == 3
        assert np.allclose(matrix.values, 1.0 / 3.0)

    def test_identity_matrix(self):
        matrix = ObfuscationMatrix.identity(IDS3)
        assert np.allclose(matrix.values, np.eye(3))

    def test_empty_rejected(self):
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix.uniform([])

    def test_non_square_rejected(self):
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix(values=np.ones((2, 3)) / 3, node_ids=["a", "b"])

    def test_row_sum_enforced(self):
        values = np.array([[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix(values=values, node_ids=["a", "b"])

    def test_negative_entries_rejected(self):
        values = np.array([[1.1, -0.1], [0.5, 0.5]])
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix(values=values, node_ids=["a", "b"])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix(values=np.eye(2), node_ids=["a", "a"])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix(values=np.eye(2), node_ids=["a", "b", "c"])

    def test_negative_delta_rejected(self):
        with pytest.raises(MatrixValidationError):
            ObfuscationMatrix(values=np.eye(2), node_ids=["a", "b"], delta=-1)

    def test_index_and_contains(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        assert matrix.index_of("b") == 1
        assert "c" in matrix and "z" not in matrix
        with pytest.raises(KeyError):
            matrix.index_of("z")

    def test_row_and_probability(self):
        matrix = ObfuscationMatrix.identity(IDS3)
        assert matrix.probability("a", "a") == 1.0
        assert matrix.probability("a", "b") == 0.0
        row = matrix.row("b")
        row[0] = 0.9  # The returned row is a copy.
        assert matrix.probability("b", "a") == 0.0

    def test_copy_is_independent(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        clone = matrix.copy()
        clone.values[0, 0] = 0.9
        assert matrix.values[0, 0] == pytest.approx(1.0 / 3.0)

    def test_repr(self):
        assert "ObfuscationMatrix" in repr(ObfuscationMatrix.uniform(IDS3))


class TestSampling:
    def test_identity_sampling_is_deterministic(self):
        matrix = ObfuscationMatrix.identity(IDS3)
        assert matrix.sample("b", seed=0) == "b"

    def test_sample_many_counts(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        samples = matrix.sample_many("a", 300, seed=1)
        assert len(samples) == 300
        counts = {node_id: samples.count(node_id) for node_id in IDS3}
        assert all(count > 50 for count in counts.values())

    def test_sample_many_negative_rejected(self):
        with pytest.raises(ValueError):
            ObfuscationMatrix.uniform(IDS3).sample_many("a", -1)

    def test_sample_reproducible(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        assert matrix.sample_many("a", 10, seed=5) == matrix.sample_many("a", 10, seed=5)


class TestPosteriorAndMarginal:
    def test_reported_distribution_uniform(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        marginal = matrix.reported_distribution([0.2, 0.3, 0.5])
        assert np.allclose(marginal, 1.0 / 3.0)

    def test_posterior_identity(self):
        matrix = ObfuscationMatrix.identity(IDS3)
        posterior = matrix.posterior([0.2, 0.3, 0.5], "c")
        assert np.allclose(posterior, [0.0, 0.0, 1.0])

    def test_posterior_uniform_equals_prior(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        prior = np.array([0.2, 0.3, 0.5])
        assert np.allclose(matrix.posterior(prior, "a"), prior)

    def test_prior_shape_checked(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        with pytest.raises(ValueError):
            matrix.posterior([0.5, 0.5], "a")
        with pytest.raises(ValueError):
            matrix.reported_distribution([1.0])


class TestRestructuring:
    def test_submatrix_renormalised(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        sub = matrix.submatrix(["a", "c"], renormalize=True)
        assert sub.size == 2
        assert np.allclose(sub.values.sum(axis=1), 1.0)

    def test_restrict_values_raw(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        raw = matrix.restrict_values(["a", "b"])
        assert raw.shape == (2, 2)
        assert np.allclose(raw, 1.0 / 3.0)

    def test_serialisation_roundtrip(self):
        matrix = ObfuscationMatrix.uniform(IDS3, level=1)
        matrix.epsilon = 2.5
        matrix.delta = 3
        matrix.metadata["note"] = "x"
        restored = ObfuscationMatrix.from_dict(matrix.to_dict())
        assert restored.node_ids == matrix.node_ids
        assert restored.level == 1
        assert restored.epsilon == 2.5
        assert restored.delta == 3
        assert restored.metadata["note"] == "x"
        assert np.allclose(restored.values, matrix.values)


class TestGeoIndConstraints:
    def test_all_pairs_count(self):
        constraints = all_pairs_constraints(simple_distances(4))
        assert constraints.num_pairs == 12
        assert count_constraints(4, constraints) == 48

    def test_all_pairs_requires_square(self):
        with pytest.raises(ValueError):
            all_pairs_constraints(np.zeros((2, 3)))

    def test_neighbor_constraints_validation(self):
        constraints = neighbor_constraints([(0, 1), (1, 0)], [1.0, 1.0])
        assert constraints.num_pairs == 2
        with pytest.raises(ValueError):
            neighbor_constraints([(0, 1)], [1.0, 2.0])
        with pytest.raises(ValueError):
            neighbor_constraints([(0, 1)], [-1.0])

    def test_iteration(self):
        constraints = neighbor_constraints([(0, 1)], [2.0])
        assert list(constraints) == [(0, 1, 2.0)]


class TestGeoIndChecking:
    def test_uniform_satisfies_any_epsilon(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        report = check_geo_ind(matrix, simple_distances(), epsilon=0.001)
        assert report.satisfied
        assert report.violation_percentage == 0.0

    def test_identity_violates(self):
        matrix = ObfuscationMatrix.identity(IDS3)
        report = check_geo_ind(matrix, simple_distances(), epsilon=1.0)
        assert not report.satisfied
        assert report.violated_constraints > 0
        assert report.max_excess > 0
        assert report.violated_pairs

    def test_explicit_construction_on_boundary(self):
        # z_ik = e^{eps*d} * z_jk exactly: not a violation (within tolerance).
        eps, d = 1.0, 1.0
        factor = np.exp(eps * d)
        row0 = np.array([factor, 1.0])
        row0 = row0 / row0.sum()
        row1 = np.array([1.0, factor])
        row1 = row1 / row1.sum()
        values = np.vstack([row0, row1])
        distances = np.array([[0.0, d], [d, 0.0]])
        report = check_geo_ind(values, distances, eps)
        assert report.satisfied

    def test_shape_and_epsilon_validation(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        with pytest.raises(ValueError):
            check_geo_ind(matrix, np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            check_geo_ind(matrix, simple_distances(), 0.0)

    def test_restricted_constraint_set(self):
        matrix = ObfuscationMatrix.identity(IDS3)
        constraints = neighbor_constraints([(0, 1), (1, 0)], [1.0, 1.0])
        report = check_geo_ind(matrix, simple_distances(), 1.0, constraint_set=constraints)
        assert report.total_constraints == 2 * 3

    def test_satisfies_geo_ind_wrapper(self):
        assert satisfies_geo_ind(ObfuscationMatrix.uniform(IDS3), simple_distances(), 0.5)
        assert not satisfies_geo_ind(ObfuscationMatrix.identity(IDS3), simple_distances(), 0.5)

    def test_epsilon_lower_bound(self):
        matrix = ObfuscationMatrix.uniform(IDS3)
        assert epsilon_lower_bound(matrix, simple_distances()) == pytest.approx(0.0)
        assert epsilon_lower_bound(ObfuscationMatrix.identity(IDS3), simple_distances()) == float("inf")

    def test_epsilon_lower_bound_is_tight(self):
        values = np.array([[0.6, 0.4], [0.4, 0.6]])
        distances = np.array([[0.0, 2.0], [2.0, 0.0]])
        bound = epsilon_lower_bound(values, distances)
        assert check_geo_ind(values, distances, bound + 1e-9).satisfied
        assert not check_geo_ind(values, distances, bound * 0.5).satisfied

    @given(st.integers(2, 5), st.floats(0.5, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_uniform_always_satisfied_property(self, size, epsilon):
        ids = [f"n{i}" for i in range(size)]
        matrix = ObfuscationMatrix.uniform(ids)
        report = check_geo_ind(matrix, simple_distances(size), epsilon)
        assert report.satisfied


class TestQualityLossModel:
    def _model(self, size=3):
        centers = [(37.77 + 0.01 * i, -122.42) for i in range(size)]
        targets = TargetDistribution.uniform([centers[0], centers[-1]])
        priors = np.full(size, 1.0 / size)
        return QualityLossModel(centers, targets, priors), centers

    def test_estimation_error_zero_when_same(self):
        point = (37.77, -122.42)
        target = (37.80, -122.40)
        assert estimation_error_km(point, point, target) == 0.0

    def test_estimation_error_triangle(self):
        real = (37.77, -122.42)
        reported = (37.78, -122.42)
        target = (37.90, -122.42)
        error = estimation_error_km(real, reported, target)
        assert error == pytest.approx(abs(
            estimation_error_km(real, target, target) - estimation_error_km(reported, target, target)
        ), abs=1e-9)

    def test_identity_matrix_has_zero_loss(self):
        model, centers = self._model()
        matrix = ObfuscationMatrix.identity([f"n{i}" for i in range(len(centers))])
        assert model.expected_loss(matrix) == pytest.approx(0.0, abs=1e-12)

    def test_uniform_matrix_has_positive_loss(self):
        model, centers = self._model()
        matrix = ObfuscationMatrix.uniform([f"n{i}" for i in range(len(centers))])
        assert model.expected_loss(matrix) > 0

    def test_cost_matrix_properties(self):
        model, _ = self._model()
        cost = model.cost_matrix
        assert np.allclose(np.diag(cost), 0.0)
        assert (cost >= 0).all()
        assert np.allclose(cost, cost.T)

    def test_objective_vector_matches_expected_loss(self):
        model, centers = self._model()
        matrix = ObfuscationMatrix.uniform([f"n{i}" for i in range(len(centers))])
        manual = float(model.objective_vector() @ matrix.values.reshape(-1))
        assert manual == pytest.approx(model.expected_loss(matrix))

    def test_per_location_loss(self):
        model, centers = self._model()
        matrix = ObfuscationMatrix.uniform([f"n{i}" for i in range(len(centers))])
        per_location = model.per_location_loss(matrix)
        assert per_location.shape == (len(centers),)
        assert model.expected_loss(matrix) == pytest.approx(float(model.priors @ per_location))

    def test_shape_mismatch_rejected(self):
        model, _ = self._model(3)
        with pytest.raises(ValueError):
            model.expected_loss(np.eye(4))

    def test_priors_length_checked(self):
        centers = [(37.77, -122.42), (37.78, -122.42)]
        targets = TargetDistribution.uniform(centers)
        with pytest.raises(ValueError):
            QualityLossModel(centers, targets, [1.0])

    def test_empirical_loss_close_to_expected_for_identity(self):
        model, centers = self._model()
        ids = [f"n{i}" for i in range(len(centers))]
        matrix = ObfuscationMatrix.identity(ids)
        assert model.empirical_loss(matrix, ids, samples_per_location=2, seed=0) == pytest.approx(0.0)

    def test_empirical_loss_validation(self):
        model, centers = self._model()
        ids = [f"n{i}" for i in range(len(centers))]
        with pytest.raises(ValueError):
            model.empirical_loss(ObfuscationMatrix.uniform(ids), ids, samples_per_location=0)


class TestTargetDistribution:
    def test_uniform(self):
        targets = TargetDistribution.uniform([(0.0, 0.0), (1.0, 1.0)])
        assert targets.size == 2
        assert np.allclose(targets.probabilities, 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TargetDistribution.uniform([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TargetDistribution([(0.0, 0.0)], [0.5, 0.5])

    def test_sample_from_centers(self):
        centers = [(float(i), 0.0) for i in range(10)]
        targets = TargetDistribution.sample_from_centers(centers, 5, seed=0)
        assert targets.size == 5
        assert all(location in centers for location in targets.locations)

    def test_sample_from_centers_weighted(self):
        centers = [(0.0, 0.0), (1.0, 0.0)]
        targets = TargetDistribution.sample_from_centers(centers, 20, seed=0, weights=[1.0, 0.0])
        assert all(location == (0.0, 0.0) for location in targets.locations)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            TargetDistribution.sample_from_centers([], 3)
        with pytest.raises(ValueError):
            TargetDistribution.sample_from_centers([(0.0, 0.0)], 0)
