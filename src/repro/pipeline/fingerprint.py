"""Canonical fingerprints for the matrix-generation pipeline.

A fingerprint is a hex SHA-256 digest of every input that can change the
result of an LP / robust-generation problem: the node-set geometry (node
ids and distance matrix), the Geo-Ind constraint pairs, the quality-model
objective, and the scalar knobs (ε, δ, weighting, basis row, iteration
count, solver).  Two problems with equal fingerprints produce bit-identical
LP inputs, so a cached solution can be served in place of a re-solve.

Canonicalisation rules: floats are encoded with ``float.hex()`` (exact, no
formatting loss), numpy arrays by dtype + shape + raw bytes, containers
recursively with sorted mapping keys.  The encoding is versioned so a
change to the rules invalidates old keys rather than aliasing them.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.geoind import GeoIndConstraintSet
from repro.utils.hashing import array_digest

#: Bumped whenever the canonical encoding changes.
FINGERPRINT_VERSION = 1

__all__ = [
    "FINGERPRINT_VERSION",
    "array_digest",
    "constraint_set_digest",
    "fingerprint_fields",
    "geometry_fingerprint",
    "problem_fingerprint",
    "structure_fingerprint",
]


def _canonical(value: object) -> str:
    """Stable, lossless string encoding of one fingerprint field."""
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (int, str, bytes)):
        return repr(value)
    if isinstance(value, np.ndarray):
        return f"ndarray:{array_digest(value)}"
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, Mapping):
        items = ",".join(f"{key!r}:{_canonical(value[key])}" for key in sorted(value))
        return f"{{{items}}}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    raise TypeError(f"cannot canonicalise {type(value).__name__} for fingerprinting")


def fingerprint_fields(**fields: object) -> str:
    """Canonical fingerprint of a keyword-described problem.

    Field names are part of the encoding, so adding a field (or renaming
    one) changes every fingerprint — exactly the safe failure mode for a
    cache key.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{FINGERPRINT_VERSION}".encode())
    for name in sorted(fields):
        hasher.update(name.encode())
        hasher.update(b"=")
        hasher.update(_canonical(fields[name]).encode())
        hasher.update(b";")
    return hasher.hexdigest()


def constraint_set_digest(constraint_set: Optional[GeoIndConstraintSet]) -> str:
    """Digest of the constraint pairs and their distances (``"all-pairs"`` for None)."""
    if constraint_set is None:
        return "all-pairs-default"
    return array_digest(constraint_set.pairs, constraint_set.distances_km)


def structure_fingerprint(size: int, constraint_pairs: Optional[np.ndarray]) -> str:
    """Digest of what a :class:`~repro.core.lp.ConstraintStructure` depends on.

    The structural part of the obfuscation LP — the sparse index pattern of
    ``A_ub``, the equality block and the right-hand sides — is a function of
    the location count and the constraint *pairs* only (not of distances,
    ε, δ or the quality model).  Two problems with equal structure
    fingerprints are *congruent*: they can share one built structure, which
    is how sibling sub-trees with identical hexagon geometry avoid repeated
    structural assembly.  ``None`` pairs (the all-pairs formulation resolved
    against a per-problem distance matrix) fingerprint to an ``unshared``
    bucket: such tasks may be *executed* together but never share a
    structure, because the structure would carry another problem's distances.
    """
    if constraint_pairs is None:
        return f"v{FINGERPRINT_VERSION}:unshared:{int(size)}"
    pairs = np.ascontiguousarray(np.asarray(constraint_pairs, dtype=np.int64))
    return f"v{FINGERPRINT_VERSION}:{int(size)}:{array_digest(pairs)}"


def geometry_fingerprint(node_ids: Sequence[str], distance_matrix_km: np.ndarray) -> str:
    """Digest of the node-set geometry: ordered ids + pairwise distances."""
    hasher = hashlib.sha256()
    for node_id in node_ids:
        hasher.update(str(node_id).encode())
        hasher.update(b"\x00")
    hasher.update(array_digest(np.asarray(distance_matrix_km, dtype=float)).encode())
    return hasher.hexdigest()


def problem_fingerprint(
    node_ids: Sequence[str],
    distance_matrix_km: np.ndarray,
    epsilon: float,
    delta: int,
    *,
    quality_digest: str,
    constraint_digest: str,
    weighting: str,
    basis_row: str,
    rpb_method: str,
    max_iterations: int,
    solver_method: str,
    extra: Optional[Mapping[str, object]] = None,
) -> str:
    """Canonical fingerprint of one robust-generation problem.

    This is the key the :class:`~repro.pipeline.cache.MatrixCache` stores
    results under: node-set geometry hash, ε, δ, weighting, basis row,
    quality-model digest, constraint digest and solver knobs.
    """
    return fingerprint_fields(
        geometry=geometry_fingerprint(node_ids, distance_matrix_km),
        epsilon=float(epsilon),
        delta=int(delta),
        quality=quality_digest,
        constraints=constraint_digest,
        weighting=str(weighting),
        basis_row=str(basis_row),
        rpb_method=str(rpb_method),
        max_iterations=int(max_iterations),
        solver_method=str(solver_method),
        extra=dict(extra) if extra else {},
    )
