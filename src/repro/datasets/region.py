"""Named study regions.

The paper samples Gowalla check-ins from the San Francisco region ("because
it had a dense distribution of check-ins distributed over a large area") and
illustrates the location tree on Times Square, New York (Figure 2).  Both
regions are provided as named bounding boxes so that examples, experiments
and tests share identical geography.
"""

from __future__ import annotations

from typing import Dict

from repro.geometry.projection import BoundingBox

#: San Francisco peninsula (the paper's evaluation region).
SAN_FRANCISCO = BoundingBox(min_lat=37.703, min_lng=-122.527, max_lat=37.832, max_lng=-122.357)

#: Midtown Manhattan around Times Square (Figure 2's illustration region).
TIMES_SQUARE_NYC = BoundingBox(min_lat=40.735, min_lng=-74.010, max_lat=40.775, max_lng=-73.960)

#: Austin, TX — Gowalla's original home town, dense in the full dataset.
AUSTIN_TX = BoundingBox(min_lat=30.19, min_lng=-97.85, max_lat=30.40, max_lng=-97.65)

_REGIONS: Dict[str, BoundingBox] = {
    "san_francisco": SAN_FRANCISCO,
    "sf": SAN_FRANCISCO,
    "times_square": TIMES_SQUARE_NYC,
    "nyc": TIMES_SQUARE_NYC,
    "austin": AUSTIN_TX,
}


def named_region(name: str) -> BoundingBox:
    """Look up a study region by name (case-insensitive).

    Raises
    ------
    KeyError
        If the name is unknown; the error message lists the known names.
    """
    key = name.strip().lower()
    if key not in _REGIONS:
        raise KeyError(f"unknown region {name!r}; known regions: {sorted(set(_REGIONS))}")
    return _REGIONS[key]
