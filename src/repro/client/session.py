"""Obfuscation sessions: repeated point queries under one policy.

CORGI supports point queries (not trajectories — see the paper's discussion
in Section 5.3), but a real application issues *many* point queries over
time.  An :class:`ObfuscationSession` keeps the privacy forest, the pruned
matrix and the precision-reduced matrix cached between reports so that only
the final sampling step is repeated, which mirrors how the paper's framework
amortises the expensive server-side generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.client.client import CORGIClient
from repro.core.matrix import ObfuscationMatrix
from repro.core.precision import ancestor_row_for, precision_reduction
from repro.core.pruning import prune_matrix
from repro.policy.evaluation import evaluate_preferences
from repro.policy.policy import Policy
from repro.utils.rng import RandomState, as_rng


@dataclass
class SessionReport:
    """One report produced within a session."""

    real_latlng: Tuple[float, float]
    reported_node_id: str
    reported_latlng: Tuple[float, float]
    subtree_root_id: str


class ObfuscationSession:
    """Caches customized matrices per sub-tree for repeated reporting.

    Parameters
    ----------
    client:
        The underlying :class:`CORGIClient` (provides tree, forest provider
        and the user's private attributes).  The provider may sit on any
        transport — see :mod:`repro.client.transport` — since the session
        only needs ``generate_privacy_forest`` and the returned forest's
        ``matrix_for_subtree`` / ``delta``.
    policy:
        The policy in force for the whole session.
    epsilon:
        Optional ε override forwarded to the server.
    """

    def __init__(self, client: CORGIClient, policy: Policy, *, epsilon: Optional[float] = None) -> None:
        self.client = client
        self.policy = policy
        self.epsilon = epsilon
        self._forest = None
        self._customized: Dict[str, ObfuscationMatrix] = {}
        self.reports: List[SessionReport] = []

    # ------------------------------------------------------------------ #
    # Internal caching
    # ------------------------------------------------------------------ #

    def _ensure_forest(self, delta: int):
        if self._forest is None or self._forest.delta < delta:
            self._forest = self.client.server.generate_privacy_forest(
                self.policy.privacy_level, delta, epsilon=self.epsilon
            )
        return self._forest

    def _customized_matrix(
        self, subtree_root_id: str, lat: float, lng: float, real_leaf_id: str
    ) -> ObfuscationMatrix:
        if subtree_root_id in self._customized:
            return self._customized[subtree_root_id]
        tree = self.client.tree
        evaluation = evaluate_preferences(
            tree,
            subtree_root_id,
            self.policy,
            user_attributes=self.client.user_attributes(),
            real_location=(lat, lng),
            delta=self.policy.delta,
            overflow_strategy=self.client.overflow_strategy,
            protect_leaf_id=real_leaf_id,
        )
        delta = self.policy.delta if self.policy.delta is not None else evaluation.num_pruned
        forest = self._ensure_forest(delta)
        matrix = forest.matrix_for_subtree(subtree_root_id)
        customized = prune_matrix(matrix, evaluation.prune_ids)
        if self.policy.precision_level > 0:
            customized = precision_reduction(customized, tree, self.policy.precision_level)
        self._customized[subtree_root_id] = customized
        return customized

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def report(self, lat: float, lng: float, *, seed: RandomState = None) -> SessionReport:
        """Produce one obfuscated report for the given real position."""
        rng = as_rng(seed)
        tree = self.client.tree
        real_leaf = tree.leaf_for_latlng(lat, lng)
        subtree_root = tree.ancestor_at_level(real_leaf.node_id, self.policy.privacy_level)
        customized = self._customized_matrix(subtree_root.node_id, lat, lng, real_leaf.node_id)
        if self.policy.precision_level > 0:
            row_id = ancestor_row_for(tree, customized, real_leaf.node_id)
        else:
            row_id = real_leaf.node_id
            if row_id not in customized:
                # The real leaf was pruned by a cached matrix built for a
                # different position within the same sub-tree; fall back to
                # its ancestor row at level 0 being unavailable means the
                # closest surviving leaf row is used instead.
                row_id = min(
                    customized.node_ids,
                    key=lambda node_id: tree.distance_km(node_id, real_leaf.node_id),
                )
        reported_id = customized.sample(row_id, seed=rng)
        reported_center = tree.node(reported_id).center
        report = SessionReport(
            real_latlng=(lat, lng),
            reported_node_id=reported_id,
            reported_latlng=reported_center.as_tuple(),
            subtree_root_id=subtree_root.node_id,
        )
        self.reports.append(report)
        return report

    def report_many(
        self,
        points: List[Tuple[float, float]],
        *,
        seed: RandomState = None,
    ) -> List[SessionReport]:
        """Report a sequence of positions (e.g. periodic location updates)."""
        rng = as_rng(seed)
        return [self.report(lat, lng, seed=rng) for lat, lng in points]

    def invalidate(self) -> None:
        """Drop the cached matrices (e.g. after the policy's preferences changed)."""
        self._customized.clear()
        self._forest = None
