"""Trace generator matrix tests, report/SLO logic, dashboard and CLI surface.

The generator matrix (fleet size × key skew × arrival process) pins the
three properties the harness promises: seed determinism (byte-identical
schedules), zipf frequency ordering of the key profiles, and up-front key
servability.  Replay-level end-to-end behaviour (scenarios, fault ops,
SLO gating) lives in ``test_loadgen_scenarios.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from helpers_concurrency import run_burst, wait_until

from repro.loadgen.adversary import OnlineAdversary, matrix_digest
from repro.loadgen.dashboard import DashboardLoop, render_snapshot
from repro.loadgen.report import ScenarioReport, SLOSpec, latency_percentiles
from repro.loadgen.trace import (
    ArrivalConfig,
    FleetConfig,
    TraceGenerator,
    fleet_from_dataset,
)

LEVEL1_KEYS = ((1, 0, None), (1, 1, None), (1, 0, 2.5))


# --------------------------------------------------------------------- #
# Generator matrix: fleet size x skew x arrival process
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("num_users", [1, 25, 200])
@pytest.mark.parametrize("zipf_exponent", [0.0, 1.1, 2.5])
@pytest.mark.parametrize("process", ["poisson", "bursty"])
class TestTraceGeneratorMatrix:
    def _generator(self, tree, num_users, zipf_exponent, process, seed=7):
        fleet = FleetConfig(
            num_users=num_users, key_profiles=LEVEL1_KEYS, zipf_exponent=zipf_exponent
        )
        arrival = ArrivalConfig(process=process, rate_per_s=500.0)
        return TraceGenerator(tree, fleet, arrival, seed=seed)

    def test_seed_determinism_byte_identical(
        self, medium_tree, num_users, zipf_exponent, process
    ):
        make = lambda: self._generator(  # noqa: E731 - tiny local factory
            medium_tree, num_users, zipf_exponent, process
        ).generate(120)
        first, second = make(), make()
        assert first.to_bytes() == second.to_bytes()
        assert first.digest() == second.digest()

    def test_different_seed_different_schedule(
        self, medium_tree, num_users, zipf_exponent, process
    ):
        one = self._generator(medium_tree, num_users, zipf_exponent, process, seed=1)
        two = self._generator(medium_tree, num_users, zipf_exponent, process, seed=2)
        assert one.generate(120).digest() != two.generate(120).digest()

    def test_schedule_shape(self, medium_tree, num_users, zipf_exponent, process):
        schedule = self._generator(medium_tree, num_users, zipf_exponent, process).generate(120)
        assert len(schedule) == 120
        leaf_ids = {leaf.node_id for leaf in medium_tree.leaves()}
        arrivals = [event.at_s for event in schedule.events]
        assert arrivals == sorted(arrivals)
        assert all(at > 0 for at in arrivals)
        users = set()
        for index, event in enumerate(schedule.events):
            assert event.index == index
            assert event.leaf_id in leaf_ids
            assert event.key in LEVEL1_KEYS
            users.add(event.user_id)
        assert len(users) <= num_users

    def test_every_key_is_servable(self, medium_tree, num_users, zipf_exponent, process):
        schedule = self._generator(medium_tree, num_users, zipf_exponent, process).generate(120)
        for event in schedule.events:
            # The generator validated (level, delta) up front; the invariants
            # it promised must hold for every emitted event.
            assert event.privacy_level <= medium_tree.height
            assert event.delta <= 7**event.privacy_level - 2
            assert medium_tree.ancestor_at_level(event.leaf_id, event.privacy_level) is not None


def test_zipf_frequency_ordering(medium_tree):
    """With real skew, observed key frequencies follow the configured ranks."""
    fleet = FleetConfig(num_users=40, key_profiles=LEVEL1_KEYS, zipf_exponent=2.0)
    schedule = TraceGenerator(medium_tree, fleet, ArrivalConfig(), seed=11).generate(1_500)
    counts = schedule.key_counts()
    observed = [counts.get(key, 0) for key in LEVEL1_KEYS]
    assert observed[0] > observed[1] > observed[2]
    # Rank-1 dominance: zipf(2.0) over 3 keys gives the top key ~73% mass.
    assert observed[0] / len(schedule) > 0.6


def test_zipf_weights_uniform_when_exponent_zero():
    fleet = FleetConfig(num_users=5, key_profiles=LEVEL1_KEYS, zipf_exponent=0.0)
    assert np.allclose(fleet.zipf_weights(), 1 / 3)


def test_mobility_moves_users_between_adjacent_leaves(medium_tree):
    fleet = FleetConfig(num_users=3, key_profiles=LEVEL1_KEYS, mobility=1.0)
    schedule = TraceGenerator(medium_tree, fleet, ArrivalConfig(), seed=5).generate(200)
    per_user_leaves = {}
    for event in schedule.events:
        per_user_leaves.setdefault(event.user_id, set()).add(event.leaf_id)
    assert any(len(leaves) > 1 for leaves in per_user_leaves.values())


def test_zero_mobility_pins_users(medium_tree):
    fleet = FleetConfig(num_users=3, key_profiles=LEVEL1_KEYS, mobility=0.0)
    schedule = TraceGenerator(medium_tree, fleet, ArrivalConfig(), seed=5).generate(200)
    per_user_leaves = {}
    for event in schedule.events:
        per_user_leaves.setdefault(event.user_id, set()).add(event.leaf_id)
    assert all(len(leaves) == 1 for leaves in per_user_leaves.values())


def test_dataset_seeded_fleet_starts_at_modal_leaves(medium_tree, synthetic_dataset):
    fleet = fleet_from_dataset(synthetic_dataset, key_profiles=LEVEL1_KEYS, max_users=10)
    assert fleet.num_users == 10
    generator = TraceGenerator(
        medium_tree, fleet, ArrivalConfig(), seed=3, dataset=synthetic_dataset
    )
    schedule = generator.generate(50)
    leaf_ids = {leaf.node_id for leaf in medium_tree.leaves()}
    assert all(event.leaf_id in leaf_ids for event in schedule.events)


def test_unservable_key_profiles_rejected(small_tree_with_priors):
    too_deep = FleetConfig(num_users=2, key_profiles=((5, 0, None),))
    with pytest.raises(ValueError, match="level 5"):
        TraceGenerator(small_tree_with_priors, too_deep, ArrivalConfig())
    too_pruned = FleetConfig(num_users=2, key_profiles=((1, 6, None),))
    with pytest.raises(ValueError, match="at least two locations"):
        TraceGenerator(small_tree_with_priors, too_pruned, ArrivalConfig())


def test_config_validation_rejects_bad_shapes():
    with pytest.raises(ValueError, match="num_users"):
        FleetConfig(num_users=0).validate()
    with pytest.raises(ValueError, match="mobility"):
        FleetConfig(mobility=1.5).validate()
    with pytest.raises(ValueError, match="epsilon"):
        FleetConfig(key_profiles=((1, 0, -2.0),)).validate()
    with pytest.raises(ValueError, match="arrival process"):
        ArrivalConfig(process="steady").validate()
    with pytest.raises(ValueError, match="burst_factor"):
        ArrivalConfig(process="bursty", burst_factor=0.5).validate()


def test_bursty_arrivals_are_burstier_than_poisson(medium_tree):
    """The bursty process must actually produce heavier gap dispersion."""
    fleet = FleetConfig(num_users=10, key_profiles=LEVEL1_KEYS)

    def gap_cv(process: str) -> float:
        arrival = ArrivalConfig(process=process, rate_per_s=200.0, burst_factor=20.0)
        schedule = TraceGenerator(medium_tree, fleet, arrival, seed=9).generate(2_000)
        arrivals = np.array([event.at_s for event in schedule.events])
        gaps = np.diff(arrivals, prepend=0.0)
        return float(np.std(gaps) / np.mean(gaps))

    # Poisson gap CV is ~1 by definition; phase-switched rates push it up.
    assert gap_cv("bursty") > gap_cv("poisson") * 1.15


# --------------------------------------------------------------------- #
# Online adversary
# --------------------------------------------------------------------- #


def test_adversary_dedups_by_content_and_counts_served(small_tree_with_priors, nonrobust_solution):
    adversary = OnlineAdversary(small_tree_with_priors)
    matrix = nonrobust_solution.matrix
    outcome = run_burst(lambda: adversary.consume(matrix, epsilon=2.0), count=16, timeout_s=30.0)
    outcome.raise_errors()
    assert set(outcome.results) == {matrix_digest(matrix)}
    audits = adversary.audits()
    assert len(audits) == 1
    (audit,) = audits.values()
    assert audit.served == 16
    summary = adversary.summary()
    assert summary is not None
    assert summary.consumed == 16
    assert summary.distinct_matrices == 1
    assert summary.recovery_rate >= summary.prior_top1 - 1e-9
    assert summary.expected_error_km >= 0.0


def test_adversary_summary_none_before_traffic(small_tree_with_priors):
    assert OnlineAdversary(small_tree_with_priors).summary() is None


# --------------------------------------------------------------------- #
# Report + SLO logic
# --------------------------------------------------------------------- #


def test_latency_percentiles_nearest_rank():
    samples = [0.01 * i for i in range(1, 101)]
    stats = latency_percentiles(samples)
    assert stats["count"] == 100
    assert stats["p50"] == pytest.approx(0.50)
    assert stats["p99"] == pytest.approx(0.99)
    assert stats["max"] == pytest.approx(1.00)
    assert latency_percentiles([])["count"] == 0


def test_slo_spec_gates_only_declared_bounds():
    spec = SLOSpec(max_error_rate=0.0, max_latency_p99_s=1.0)
    checks = spec.evaluate(
        {"error_rate": 0.0, "utility_loss_km": 99.0},
        {"latency_s": {"p50": 0.1, "p99": 2.0}},
    )
    by_name = {check.name: check for check in checks}
    assert set(by_name) == {"error_rate", "latency_p99_s"}  # undeclared bounds not gated
    assert by_name["error_rate"].passed
    assert not by_name["latency_p99_s"].passed


def test_slo_gated_but_missing_metric_fails():
    checks = SLOSpec(max_violation_pct=1.0).evaluate({}, {})
    assert len(checks) == 1
    assert checks[0].actual is None and not checks[0].passed


def test_report_round_trip_and_markdown():
    report = ScenarioReport(
        scenario="flash_crowd",
        seed=3,
        schedule_digest="ab" * 32,
        counters={"events_total": 10, "served": 10, "errors": 0, "error_rate": 0.0},
        timing={"latency_s": {"p50": 0.01, "p99": 0.05}},
        slo_checks=SLOSpec(max_error_rate=0.0).evaluate({"error_rate": 0.0}, {}),
    )
    assert report.passed
    clone = ScenarioReport.from_dict(json.loads(report.to_json()))
    assert clone.to_dict() == report.to_dict()
    markdown = report.to_markdown()
    assert "PASS" in markdown and "| error_rate |" in markdown
    assert "timing" not in report.deterministic_view()


# --------------------------------------------------------------------- #
# Dashboard
# --------------------------------------------------------------------- #


def test_render_snapshot_plain_and_ansi():
    snapshot = {
        "events_total": 100,
        "dispatched": 60,
        "served": 50,
        "errors": 10,
        "elapsed_s": 2.0,
        "done": False,
        "latency_s": {"p50": 0.01, "p90": 0.02, "p99": 0.03, "max": 0.04, "count": 60},
        "adversary": {"distinct_matrices": 4, "consumed": 50, "recovery_rate": 0.5,
                      "prior_top1": 0.4, "recovery_ratio": 1.25, "violation_pct": 0.0,
                      "expected_error_km": 0.2, "prior_error_km": 0.21},
    }
    plain = render_snapshot(snapshot)
    assert "60/100 events" in plain
    assert "errors 10" in plain
    assert "4 distinct matrices" in plain
    assert "\x1b[" not in plain
    assert "\x1b[" in render_snapshot(snapshot, ansi=True)


class _StubReplayer:
    """Just enough surface for DashboardLoop: snapshot() + finished."""

    def __init__(self):
        import threading

        self.finished = threading.Event()
        self.snapshots = 0

    def snapshot(self):
        self.snapshots += 1
        return {
            "events_total": 10,
            "dispatched": 5,
            "served": 5,
            "errors": 0,
            "elapsed_s": 0.5,
            "done": self.finished.is_set(),
            "latency_s": latency_percentiles([0.01]),
            "adversary": {},
        }


def test_dashboard_loop_paints_and_snapshots(tmp_path):
    sink_path = tmp_path / "dash.log"
    replayer = _StubReplayer()
    with open(sink_path, "w", encoding="utf-8") as sink:
        loop = DashboardLoop(sink, interval_s=0.01)
        loop.attach(replayer)
        wait_until(lambda: replayer.snapshots >= 1, timeout_s=10.0, message="first paint")
        replayer.finished.set()
        loop.stop()
    assert "CORGI trace replay" in loop.last_frame
    assert "5/10 events" in loop.last_frame
    assert "CORGI trace replay" in sink_path.read_text(encoding="utf-8")


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


def test_loadgen_cli_help_and_list(capsys):
    from repro.loadgen.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    help_text = capsys.readouterr().out
    for flag in ("--scenario", "--all", "--soak", "--dashboard", "--report-dir", "--transport"):
        assert flag in help_text
    assert main(["--list"]) == 0
    listing = capsys.readouterr().out
    for name in ("flash_crowd", "shard_drain", "priors_under_load", "region_failover"):
        assert name in listing


def test_runner_cli_exposes_replay_scenario(capsys):
    from repro.experiments.runner import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    help_text = capsys.readouterr().out
    assert "--replay-scenario" in help_text
    assert "--replay-seed" in help_text


def test_loadgen_cli_rejects_report_with_matrix(capsys):
    from repro.loadgen.__main__ import main

    assert main(["--all", "--report", "out.json"]) == 2
    assert "--report-dir" in capsys.readouterr().err
