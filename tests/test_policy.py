"""Tests for the customization policy model: predicates, policies, attributes, evaluation."""

import pytest

from repro.policy.attributes import (
    AttributeConfig,
    LocationAttributeExtractor,
    annotate_tree_with_dataset,
    user_location_profile,
)
from repro.policy.evaluation import (
    DeltaOverflowError,
    DeltaOverflowStrategy,
    evaluate_preferences,
)
from repro.policy.policy import CustomizationRequest, Policy, preferences_from_mapping
from repro.policy.predicates import Operator, Predicate, parse_predicate, satisfies_all


class TestOperator:
    def test_symbol_aliases(self):
        assert Operator.from_symbol("==") is Operator.EQ
        assert Operator.from_symbol("≠") is Operator.NE
        assert Operator.from_symbol("<=") is Operator.LE
        assert Operator.from_symbol("≥") is Operator.GE

    def test_unknown_symbol(self):
        with pytest.raises(ValueError):
            Operator.from_symbol("~")


class TestPredicate:
    def test_equality_on_bool(self):
        assert Predicate("popular", Operator.EQ, True).evaluate({"popular": True})
        assert not Predicate("popular", Operator.EQ, True).evaluate({"popular": False})

    def test_bool_string_coercion(self):
        predicate = Predicate("popular", Operator.EQ, "True")
        assert predicate.evaluate({"popular": True})
        assert Predicate("home", Operator.EQ, "False").evaluate({"home": False})

    def test_string_equality_case_insensitive(self):
        assert Predicate("kind", Operator.EQ, "Cafe").evaluate({"kind": "cafe"})

    def test_numeric_comparisons(self):
        attributes = {"distance_km": 4.2}
        assert Predicate("distance_km", Operator.LE, 5).evaluate(attributes)
        assert Predicate("distance_km", Operator.LT, 5).evaluate(attributes)
        assert not Predicate("distance_km", Operator.GT, 5).evaluate(attributes)
        assert Predicate("distance_km", Operator.GE, 4.2).evaluate(attributes)

    def test_missing_attribute_conservative(self):
        assert not Predicate("popular", Operator.EQ, True).evaluate({})
        assert not Predicate("distance_km", Operator.LE, 5).evaluate({})

    def test_missing_attribute_equals_none(self):
        assert Predicate("home", Operator.EQ, None).evaluate({})
        assert Predicate("home", Operator.NE, None).evaluate({"home": True})

    def test_not_equal(self):
        assert Predicate("home", Operator.NE, True).evaluate({"home": False})
        assert not Predicate("home", Operator.NE, True).evaluate({"home": True})

    def test_ordered_comparison_on_non_numeric_is_false(self):
        assert not Predicate("distance_km", Operator.LE, 5).evaluate({"distance_km": "far"})

    def test_invalid_variable(self):
        with pytest.raises(ValueError):
            Predicate("", Operator.EQ, 1)

    def test_operator_coerced_from_string(self):
        predicate = Predicate("x", "<=", 3)
        assert predicate.op is Operator.LE

    def test_describe(self):
        assert "distance_km <= 5" in Predicate("distance_km", Operator.LE, 5).describe()

    def test_satisfies_all(self):
        predicates = [Predicate("a", Operator.EQ, 1), Predicate("b", Operator.GT, 2)]
        assert satisfies_all({"a": 1, "b": 3}, predicates)
        assert not satisfies_all({"a": 1, "b": 1}, predicates)
        assert satisfies_all({"anything": 0}, [])


class TestParsePredicate:
    def test_parse_boolean(self):
        predicate = parse_predicate("popular = True")
        assert predicate.var == "popular" and predicate.value is True

    def test_parse_number(self):
        predicate = parse_predicate("distance_km <= 5")
        assert predicate.op is Operator.LE and predicate.value == 5

    def test_parse_float(self):
        assert parse_predicate("distance_km < 2.5").value == 2.5

    def test_parse_string_value(self):
        assert parse_predicate("category = restaurant").value == "restaurant"

    def test_parse_none(self):
        assert parse_predicate("office = None").value is None

    def test_parse_quoted_string(self):
        assert parse_predicate("home = 'False'").value is False

    def test_parse_missing_operator(self):
        with pytest.raises(ValueError):
            parse_predicate("no operator here")


class TestPolicy:
    def test_basic_policy(self):
        policy = Policy(privacy_level=3, precision_level=0, delta=2)
        assert policy.delta == 2

    def test_precision_above_privacy_rejected(self):
        with pytest.raises(ValueError):
            Policy(privacy_level=1, precision_level=2)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Policy(privacy_level=-1)
        with pytest.raises(ValueError):
            Policy(privacy_level=1, precision_level=-1)
        with pytest.raises(ValueError):
            Policy(privacy_level=1, delta=-1)

    def test_string_preferences_parsed(self):
        policy = Policy(privacy_level=2, preferences=["popular = True", "distance_km <= 5"])
        assert len(policy.preferences) == 2
        assert all(isinstance(p, Predicate) for p in policy.preferences)

    def test_invalid_preference_type(self):
        with pytest.raises(TypeError):
            Policy(privacy_level=2, preferences=[42])

    def test_from_strings(self):
        policy = Policy.from_strings(3, 1, ["home = False"], delta=4)
        assert policy.precision_level == 1
        assert policy.preferences[0].var == "home"

    def test_describe_mentions_everything(self):
        policy = Policy(privacy_level=3, precision_level=0, preferences=["popular = True"], delta=5)
        text = policy.describe()
        assert "privacy_l=3" in text and "delta=5" in text and "popular" in text

    def test_to_request_hides_preferences(self):
        policy = Policy(privacy_level=2, preferences=["home = False"], delta=3)
        request = policy.to_request()
        assert request == CustomizationRequest(privacy_level=2, delta=3)

    def test_to_request_defaults_to_zero_delta(self):
        assert Policy(privacy_level=2).to_request().delta == 0

    def test_customization_request_validation(self):
        with pytest.raises(ValueError):
            CustomizationRequest(privacy_level=-1, delta=0)
        with pytest.raises(ValueError):
            CustomizationRequest(privacy_level=0, delta=-1)

    def test_preferences_from_mapping(self):
        result = preferences_from_mapping(["a = 1", Predicate("b", Operator.EQ, 2)])
        assert len(result) == 2


class TestAttributeExtraction:
    def test_global_attributes_cover_all_leaves(self, small_tree, synthetic_dataset):
        attributes = annotate_tree_with_dataset(small_tree, synthetic_dataset)
        leaf_ids = {leaf.node_id for leaf in small_tree.leaves()}
        assert set(attributes) == leaf_ids
        for values in attributes.values():
            assert {"checkin_count", "distinct_users", "popular"} <= set(values)

    def test_popular_requires_checkins(self, small_tree, synthetic_dataset):
        attributes = annotate_tree_with_dataset(small_tree, synthetic_dataset)
        for values in attributes.values():
            if values["popular"]:
                assert values["checkin_count"] > 0

    def test_attributes_installed_on_tree(self, small_tree, synthetic_dataset):
        annotate_tree_with_dataset(small_tree, synthetic_dataset)
        assert any(leaf.get_attribute("checkin_count") is not None for leaf in small_tree.leaves())

    def test_user_profile_flags(self, small_tree, synthetic_dataset):
        user = synthetic_dataset.users()[0]
        profile = user_location_profile(small_tree, synthetic_dataset, user)
        assert set(profile) == {leaf.node_id for leaf in small_tree.leaves()}
        homes = [node_id for node_id, values in profile.items() if values["home"]]
        assert len(homes) <= 1
        offices = [node_id for node_id, values in profile.items() if values["office"]]
        assert len(offices) <= 1
        if homes and offices:
            assert homes[0] != offices[0]

    def test_unknown_user_has_no_flags(self, small_tree, synthetic_dataset):
        profile = user_location_profile(small_tree, synthetic_dataset, "nobody")
        assert all(not v["home"] and not v["office"] and not v["outlier"] for v in profile.values())

    def test_distance_attributes(self, small_tree, synthetic_dataset):
        extractor = LocationAttributeExtractor(small_tree, synthetic_dataset)
        center = small_tree.root.center
        distances = extractor.distance_attributes(center.lat, center.lng)
        assert all(v["distance_km"] >= 0 for v in distances.values())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AttributeConfig(popular_quantile=2.0).validate()
        with pytest.raises(ValueError):
            AttributeConfig(outlier_max_visits=0).validate()
        with pytest.raises(ValueError):
            AttributeConfig(popular_min_checkins=-1).validate()


class TestPreferenceEvaluation:
    def _annotated_tree(self, tree):
        leaves = tree.leaves()
        for index, leaf in enumerate(leaves):
            tree.annotate(leaf.node_id, {"popular": index % 2 == 0, "home": index == 0})
        return leaves

    def test_prunes_unpopular(self, small_tree):
        leaves = self._annotated_tree(small_tree)
        policy = Policy(privacy_level=1, preferences=["popular = True"])
        evaluation = evaluate_preferences(small_tree, small_tree.root.node_id, policy)
        assert set(evaluation.prune_ids) == {leaf.node_id for i, leaf in enumerate(leaves) if i % 2 == 1}
        assert evaluation.num_pruned == len(evaluation.prune_ids)
        assert not evaluation.overflow

    def test_empty_preferences_prune_nothing(self, small_tree):
        self._annotated_tree(small_tree)
        policy = Policy(privacy_level=1)
        evaluation = evaluate_preferences(small_tree, small_tree.root.node_id, policy)
        assert evaluation.prune_ids == []
        assert len(evaluation.kept_ids) == 7

    def test_protected_leaf_never_pruned(self, small_tree):
        leaves = self._annotated_tree(small_tree)
        unpopular = leaves[1].node_id
        policy = Policy(privacy_level=1, preferences=["popular = True"])
        evaluation = evaluate_preferences(
            small_tree, small_tree.root.node_id, policy, protect_leaf_id=unpopular
        )
        assert unpopular not in evaluation.prune_ids

    def test_distance_preference_uses_real_location(self, small_tree):
        self._annotated_tree(small_tree)
        center = small_tree.root.center
        policy = Policy(privacy_level=1, preferences=["distance_km <= 0.01"])
        evaluation = evaluate_preferences(
            small_tree,
            small_tree.root.node_id,
            policy,
            real_location=(center.lat, center.lng),
        )
        # Only the central leaf is within 10 m of the root centre.
        assert len(evaluation.kept_ids) == 1

    def test_user_attributes_override(self, small_tree):
        leaves = self._annotated_tree(small_tree)
        target = leaves[2].node_id
        policy = Policy(privacy_level=1, preferences=["office = False"])
        evaluation = evaluate_preferences(
            small_tree,
            small_tree.root.node_id,
            policy,
            user_attributes={target: {"office": True}},
        )
        assert target in evaluation.prune_ids

    def test_failed_predicates_recorded(self, small_tree):
        self._annotated_tree(small_tree)
        policy = Policy(privacy_level=1, preferences=["popular = True"])
        evaluation = evaluate_preferences(small_tree, small_tree.root.node_id, policy)
        for node_id in evaluation.prune_ids:
            assert evaluation.failed_predicates[node_id]

    def test_overflow_favor_preferences(self, small_tree):
        self._annotated_tree(small_tree)
        policy = Policy(privacy_level=1, preferences=["popular = True"])
        evaluation = evaluate_preferences(
            small_tree,
            small_tree.root.node_id,
            policy,
            delta=1,
            overflow_strategy=DeltaOverflowStrategy.FAVOR_PREFERENCES,
        )
        assert evaluation.overflow
        assert evaluation.num_pruned > 1

    def test_overflow_favor_privacy(self, small_tree):
        self._annotated_tree(small_tree)
        policy = Policy(privacy_level=1, preferences=["popular = True"])
        evaluation = evaluate_preferences(
            small_tree,
            small_tree.root.node_id,
            policy,
            delta=1,
            overflow_strategy=DeltaOverflowStrategy.FAVOR_PRIVACY,
        )
        assert evaluation.overflow
        assert evaluation.num_pruned == 1
        assert evaluation.policy_violations

    def test_overflow_strict_raises(self, small_tree):
        self._annotated_tree(small_tree)
        policy = Policy(privacy_level=1, preferences=["popular = True"])
        with pytest.raises(DeltaOverflowError):
            evaluate_preferences(
                small_tree,
                small_tree.root.node_id,
                policy,
                delta=1,
                overflow_strategy=DeltaOverflowStrategy.STRICT,
            )
