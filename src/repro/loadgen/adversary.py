"""Online Bayesian adversary riding along with a trace replay.

The replay harness hands every *served* matrix to an
:class:`OnlineAdversary`, which runs the paper's optimal Bayesian
inference attack (:class:`~repro.attacks.bayesian.BayesianAttacker`) plus a
Geo-Ind constraint audit (:func:`~repro.core.geoind.check_geo_ind`) against
it — the production-shaped counterpart of the per-figure offline analyses.

Matrices are deduplicated by content digest: a coalesced burst serves the
same bytes thousands of times, so the attack is computed once per distinct
matrix and *weighted* by how often that matrix was actually served.  The
aggregate is therefore the served-traffic-weighted privacy posture of the
fleet, and — because per-digest metrics are pure functions of the bytes and
the priors, and the final reduction iterates digests in sorted order — it is
bit-deterministic for a deterministic replay regardless of thread
interleaving.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.attacks.bayesian import BayesianAttacker
from repro.core.geoind import check_geo_ind
from repro.core.matrix import ObfuscationMatrix
from repro.tree.location_tree import LocationTree

__all__ = ["AdversarySummary", "MatrixAudit", "OnlineAdversary"]


@dataclass
class MatrixAudit:
    """Attack + audit results for one distinct served matrix."""

    digest: str
    size: int
    epsilon: float
    served: int
    recovery_rate: float
    prior_top1: float
    expected_error_km: float
    prior_error_km: float
    violation_pct: float
    violated_constraints: int
    total_constraints: int

    @property
    def recovery_ratio(self) -> float:
        """MAP recovery vs the prior-only top-1 guess (1.0 = report useless)."""
        if self.prior_top1 <= 0:
            return float("inf") if self.recovery_rate > 0 else 1.0
        return self.recovery_rate / self.prior_top1


@dataclass
class AdversarySummary:
    """Served-traffic-weighted aggregate over every distinct matrix."""

    consumed: int
    distinct_matrices: int
    recovery_rate: float
    prior_top1: float
    recovery_ratio: float
    expected_error_km: float
    prior_error_km: float
    posterior_gain: float
    violation_pct: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "consumed": self.consumed,
            "distinct_matrices": self.distinct_matrices,
            "recovery_rate": self.recovery_rate,
            "prior_top1": self.prior_top1,
            "recovery_ratio": self.recovery_ratio,
            "expected_error_km": self.expected_error_km,
            "prior_error_km": self.prior_error_km,
            "posterior_gain": self.posterior_gain,
            "violation_pct": self.violation_pct,
        }


def matrix_digest(matrix: ObfuscationMatrix) -> str:
    """Content digest of a matrix: node ids + float64 values, order-sensitive."""
    hasher = hashlib.sha256()
    hasher.update("\x1f".join(matrix.node_ids).encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(np.ascontiguousarray(matrix.values, dtype=np.float64).tobytes())
    return hasher.hexdigest()


class OnlineAdversary:
    """Consumes served matrices during a replay and audits each distinct one.

    Thread-safe: replay workers call :meth:`consume` concurrently; a lock
    guarantees each distinct matrix is audited exactly once (subsequent
    sightings only bump its served weight).
    """

    def __init__(self, tree: LocationTree) -> None:
        self.tree = tree
        self._lock = threading.Lock()
        self._audits: Dict[str, MatrixAudit] = {}

    def consume(self, matrix: ObfuscationMatrix, *, epsilon: float) -> str:
        """Register one served matrix; audit it on first sight.

        Returns the matrix's content digest (the replayer records it per
        event so the deterministic report can be re-derived event-by-event).
        """
        digest = matrix_digest(matrix)
        with self._lock:
            audit = self._audits.get(digest)
            if audit is not None:
                audit.served += 1
                return digest
            # Reserve the slot before the (comparatively) slow attack so a
            # racing sibling takes the fast path; the audit fields are
            # filled in below while we still hold the lock — the matrices
            # are tiny (K <= 49) and the LP build dwarfs this cost.
            audit = self._audit(matrix, epsilon=epsilon, digest=digest)
            self._audits[digest] = audit
            return digest

    def _audit(self, matrix: ObfuscationMatrix, *, epsilon: float, digest: str) -> MatrixAudit:
        priors = self.tree.conditional_leaf_priors(list(matrix.node_ids))
        distances = self.tree.distance_matrix_km(list(matrix.node_ids))
        attacker = BayesianAttacker(matrix, priors, distances)
        # Solver-realistic tolerances (the strict 1e-6 defaults flag HiGHS
        # feasibility-tolerance noise as violations; same bounds the
        # integration tests audit live matrices with).
        report = check_geo_ind(matrix, distances, epsilon, rtol=1e-4, atol=1e-5)
        return MatrixAudit(
            digest=digest,
            size=matrix.size,
            epsilon=float(epsilon),
            served=1,
            recovery_rate=attacker.recovery_rate(),
            prior_top1=float(np.max(attacker.priors)),
            expected_error_km=attacker.expected_inference_error_km(),
            prior_error_km=attacker.prior_expected_error_km(),
            violation_pct=report.violation_percentage,
            violated_constraints=report.violated_constraints,
            total_constraints=report.total_constraints,
        )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def audits(self) -> Dict[str, MatrixAudit]:
        """Per-digest audits (copy, sorted by digest for stable iteration)."""
        with self._lock:
            return {digest: self._audits[digest] for digest in sorted(self._audits)}

    def summary(self) -> Optional[AdversarySummary]:
        """Served-weighted aggregate, or ``None`` before any matrix arrived.

        Weighted sums iterate digests in sorted order, so the floats are
        bit-identical across runs whose per-digest served counts match.
        """
        audits = self.audits()
        if not audits:
            return None
        consumed = sum(audit.served for audit in audits.values())
        weighted = lambda pick: (  # noqa: E731 - local reducer, not an API
            sum(pick(audit) * audit.served for audit in audits.values()) / consumed
        )
        expected_error = weighted(lambda a: a.expected_error_km)
        prior_error = weighted(lambda a: a.prior_error_km)
        return AdversarySummary(
            consumed=consumed,
            distinct_matrices=len(audits),
            recovery_rate=weighted(lambda a: a.recovery_rate),
            prior_top1=weighted(lambda a: a.prior_top1),
            recovery_ratio=weighted(lambda a: a.recovery_ratio),
            expected_error_km=expected_error,
            prior_error_km=prior_error,
            posterior_gain=(prior_error / expected_error) if expected_error > 0 else 1.0,
            violation_pct=weighted(lambda a: a.violation_pct),
        )
