"""Check-in records and datasets.

A check-in is one row of the Gowalla schema used in the paper:
``[user, check-in time, latitude, longitude, location id]``.
:class:`CheckInDataset` is a thin in-memory collection with the filtering,
grouping and summary operations the priors, policy-attribute inference and
experiment workloads need.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.geometry.haversine import LatLng
from repro.geometry.projection import BoundingBox


@dataclass(frozen=True)
class CheckIn:
    """One location check-in.

    Attributes
    ----------
    user_id:
        Identifier of the user who checked in.
    timestamp:
        Check-in time (timezone-aware UTC).
    lat, lng:
        WGS84 coordinates of the check-in.
    location_id:
        Identifier of the venue, as in the Gowalla schema.
    """

    user_id: str
    timestamp: datetime
    lat: float
    lng: float
    location_id: str

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude must be in [-90, 90], got {self.lat}")
        if not -180.0 <= self.lng <= 180.0:
            raise ValueError(f"longitude must be in [-180, 180], got {self.lng}")
        if self.timestamp.tzinfo is None:
            object.__setattr__(self, "timestamp", self.timestamp.replace(tzinfo=timezone.utc))

    @property
    def latlng(self) -> LatLng:
        """Coordinates as a :class:`LatLng` value object."""
        return LatLng(self.lat, self.lng)

    @property
    def hour_of_day(self) -> int:
        """Local-naive hour of the check-in (0-23), used by attribute heuristics."""
        return self.timestamp.hour

    @property
    def is_night(self) -> bool:
        """Whether the check-in happened at night (22:00-06:00), a home signal."""
        return self.hour_of_day >= 22 or self.hour_of_day < 6

    @property
    def is_work_hours(self) -> bool:
        """Whether the check-in happened during office hours (09:00-18:00, Mon-Fri)."""
        return 9 <= self.hour_of_day < 18 and self.timestamp.weekday() < 5


class CheckInDataset:
    """In-memory collection of check-ins with simple analytics.

    The dataset is deliberately independent of the location tree: the tree
    layer (:mod:`repro.tree.priors`) and the policy layer
    (:mod:`repro.policy.attributes`) pull what they need through the iteration
    and grouping methods below.
    """

    def __init__(self, checkins: Iterable[CheckIn] = (), name: str = "checkins") -> None:
        self._checkins: List[CheckIn] = list(checkins)
        self.name = name

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._checkins)

    def __iter__(self) -> Iterator[CheckIn]:
        return iter(self._checkins)

    def __getitem__(self, index: int) -> CheckIn:
        return self._checkins[index]

    def add(self, checkin: CheckIn) -> None:
        """Append one check-in."""
        self._checkins.append(checkin)

    def extend(self, checkins: Iterable[CheckIn]) -> None:
        """Append many check-ins."""
        self._checkins.extend(checkins)

    # ------------------------------------------------------------------ #
    # Filtering / grouping
    # ------------------------------------------------------------------ #

    def filter(self, predicate: Callable[[CheckIn], bool], name: Optional[str] = None) -> "CheckInDataset":
        """Return a new dataset with the check-ins matching *predicate*."""
        return CheckInDataset(
            (c for c in self._checkins if predicate(c)),
            name=name or f"{self.name}[filtered]",
        )

    def within(self, region: BoundingBox, name: Optional[str] = None) -> "CheckInDataset":
        """Check-ins inside *region*."""
        return self.filter(lambda c: region.contains(c.lat, c.lng), name=name or f"{self.name}[{region}]")

    def for_user(self, user_id: str) -> "CheckInDataset":
        """Check-ins of a single user."""
        return self.filter(lambda c: c.user_id == user_id, name=f"{self.name}[user={user_id}]")

    def by_user(self) -> Dict[str, List[CheckIn]]:
        """Group check-ins by user id."""
        groups: Dict[str, List[CheckIn]] = defaultdict(list)
        for checkin in self._checkins:
            groups[checkin.user_id].append(checkin)
        return dict(groups)

    def by_location(self) -> Dict[str, List[CheckIn]]:
        """Group check-ins by venue (location id)."""
        groups: Dict[str, List[CheckIn]] = defaultdict(list)
        for checkin in self._checkins:
            groups[checkin.location_id].append(checkin)
        return dict(groups)

    def users(self) -> List[str]:
        """Distinct user ids, sorted."""
        return sorted({c.user_id for c in self._checkins})

    def locations(self) -> List[str]:
        """Distinct venue ids, sorted."""
        return sorted({c.location_id for c in self._checkins})

    def location_counts(self) -> Counter:
        """Number of check-ins per venue (popularity signal)."""
        return Counter(c.location_id for c in self._checkins)

    def coordinates(self) -> List[Tuple[float, float]]:
        """All ``(lat, lng)`` pairs (used for bounding-box estimation)."""
        return [(c.lat, c.lng) for c in self._checkins]

    def bounding_box(self) -> BoundingBox:
        """Smallest bounding box covering every check-in."""
        if not self._checkins:
            raise ValueError("cannot compute the bounding box of an empty dataset")
        return BoundingBox.from_points(self.coordinates())

    def sort_by_time(self) -> "CheckInDataset":
        """Return a copy sorted by timestamp (stable)."""
        return CheckInDataset(sorted(self._checkins, key=lambda c: c.timestamp), name=self.name)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, object]:
        """Headline statistics (check-in count, user count, venue count, time span)."""
        if not self._checkins:
            return {"name": self.name, "num_checkins": 0, "num_users": 0, "num_locations": 0}
        times = [c.timestamp for c in self._checkins]
        return {
            "name": self.name,
            "num_checkins": len(self._checkins),
            "num_users": len(self.users()),
            "num_locations": len(self.locations()),
            "first_checkin": min(times).isoformat(),
            "last_checkin": max(times).isoformat(),
        }

    def __repr__(self) -> str:
        return f"CheckInDataset(name={self.name!r}, num_checkins={len(self)})"
