"""Check-in dataset substrate (Section 6.1).

The paper evaluates CORGI on a San Francisco sample of the Gowalla
location-based social network dataset (38,523 check-ins with attributes
``[user, check-in time, latitude, longitude, location id]``).  The real
dataset cannot be downloaded in this offline environment, so this subpackage
provides both halves of the substitution documented in DESIGN.md:

* :mod:`repro.datasets.gowalla` — a loader for the real Gowalla
  ``totalCheckins.txt`` format, for users who have the file;
* :mod:`repro.datasets.synthetic` — a generator producing Gowalla-like
  check-ins over the San Francisco region (clustered venues, per-user
  home/office routines, heavy-tailed popularity, occasional outliers) in the
  exact same record format.

Everything downstream (priors, policies, experiments) consumes the data
exclusively through :class:`repro.datasets.checkin.CheckInDataset`, so the
two sources are interchangeable.
"""

from repro.datasets.checkin import CheckIn, CheckInDataset
from repro.datasets.gowalla import load_gowalla, parse_gowalla_line, write_gowalla
from repro.datasets.region import SAN_FRANCISCO, TIMES_SQUARE_NYC, named_region
from repro.datasets.splits import train_test_split_checkins
from repro.datasets.synthetic import GowallaLikeGenerator, SyntheticConfig

__all__ = [
    "CheckIn",
    "CheckInDataset",
    "load_gowalla",
    "write_gowalla",
    "parse_gowalla_line",
    "GowallaLikeGenerator",
    "SyntheticConfig",
    "train_test_split_checkins",
    "SAN_FRANCISCO",
    "TIMES_SQUARE_NYC",
    "named_region",
]
