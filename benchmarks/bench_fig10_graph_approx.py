"""Fig. 10 — efficacy of the graph approximation.

Paper: the 12-neighbour graph approximation cuts the robust-generation
running time by 92.34 % on average (Fig. 10a) and the number of Geo-Ind
constraints by 54.58 % on average as the location count grows from 7 to 49
(Fig. 10b).
"""

from repro.experiments.graph_approx import (
    run_constraint_count_experiment,
    run_runtime_experiment,
)


def test_fig10b_constraint_counts(benchmark, config, workload):
    result = benchmark.pedantic(
        run_constraint_count_experiment,
        args=(config,),
        kwargs={"workload": workload},
        rounds=1,
        iterations=1,
    )
    result.constraint_table.print()
    print(f"\nmean constraint reduction: {result.mean_constraint_reduction_pct:.2f}% (paper: 54.58%)")

    for row in result.constraint_rows:
        assert row["with_graph_approx"] <= row["without_graph_approx"]
    # At K = 49 the reduction should be large (paper's regime).
    last = result.constraint_rows[-1]
    assert last["reduction_pct"] > 50.0


def test_fig10a_runtime(benchmark, config, workload):
    result = benchmark.pedantic(
        run_runtime_experiment,
        args=(config,),
        kwargs={"workload": workload},
        rounds=1,
        iterations=1,
    )
    result.runtime_table.print()
    print(f"\nmean running-time reduction: {result.mean_runtime_reduction_pct:.2f}% (paper: 92.34%)")

    # Shape check: the graph approximation wins for every delta.
    for row in result.runtime_rows:
        assert row["with_graph_approx_s"] <= row["without_graph_approx_s"]
