"""Tests for the asyncio push gateway (`repro.service.gateway`).

Covers the held-connection protocol end to end — subscribe → pushed
snapshot, push-on-invalidate/priors byte-identical to a direct build,
generation-tag monotonicity, slow-consumer eviction, heartbeats, protocol
error answers — the async single-flight rendezvous of
:class:`AsyncCORGIService` (coalescing, follower deadline, wrapped
re-raise, generation-aware staleness guard), and the acceptance storm:
many concurrently held connections surviving an invalidate storm with the
refreshed matrix delivered exactly once per subscriber.

All waiting is event-driven (`wait_forest`, `pump_until`) or uses the
shared `wait_until` helper — no ad-hoc sleeps.  The storm size defaults
to 200 connections locally; CI's `gateway-stress` job pins
``GATEWAY_STORM_CONNECTIONS=1000``.
"""

import asyncio
import json
import os
import socket
import threading

import pytest

from helpers_concurrency import wait_until
from repro.client.gateway import AsyncGatewayClient, GatewayClient, _PushStore
from repro.server.engine import ForestEngine, ServerConfig
from repro.service.gateway import (
    AsyncCORGIService,
    GatewayConfig,
    GatewayProtocolError,
    GatewayServer,
    decode_gateway_frame,
    encode_gateway_frame,
)
from repro.service.service import (
    CORGIService,
    ServiceBuildTimeoutError,
    ServiceConfig,
)

KEY = (1, 1, 2.0)  # the normalized form of privacy_level=1, delta=1


@pytest.fixture()
def engine(small_tree_with_priors):
    return ForestEngine(
        small_tree_with_priors,
        ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=1),
    )


@pytest.fixture()
def service(engine):
    return CORGIService(engine)


@pytest.fixture()
def gateway(service):
    server = GatewayServer(
        service, GatewayConfig(heartbeat_interval_s=0.1, queue_limit=8)
    ).start()
    yield server
    server.close()


def direct_response_bytes(service, privacy_level=1, delta=1) -> str:
    """The canonical wire bytes of a direct (non-gateway) build."""
    forest = service.generate_privacy_forest(privacy_level, delta)
    return json.dumps(CORGIService._package(forest).to_dict(), sort_keys=True)


# --------------------------------------------------------------------- #
# End-to-end push flow
# --------------------------------------------------------------------- #


class TestPushEndToEnd:
    def test_subscribe_pushes_snapshot_byte_identical_to_direct_build(
        self, service, gateway
    ):
        with GatewayClient(gateway.host, gateway.port) as client:
            key = client.subscribe(1, 1)
            assert key == KEY  # server resolved the default epsilon
            push = client.wait_forest(key)
            assert push.generation == 1
            assert json.dumps(push.response, sort_keys=True) == direct_response_bytes(
                service
            )

    def test_invalidate_pushes_refresh_byte_identical_to_direct_build(
        self, service, gateway
    ):
        with GatewayClient(gateway.host, gateway.port) as client:
            key = client.subscribe(1, 1)
            first = client.wait_forest(key)
            service.invalidate()
            refreshed = client.wait_forest(key, min_generation=first.generation + 1)
            assert refreshed.reason == "invalidate"
            # The engine cache was flushed, so this is a *rebuild* — and the
            # pipeline is deterministic, so the bytes must match a direct
            # post-invalidate build exactly.
            assert json.dumps(
                refreshed.response, sort_keys=True
            ) == direct_response_bytes(service)

    def test_priors_publish_pushes_rebuilt_matrix(self, small_tree_with_priors, service, gateway):
        with GatewayClient(gateway.host, gateway.port) as client:
            key = client.subscribe(1, 1)
            first = client.wait_forest(key)
            new_priors = {
                leaf.node_id: leaf.prior + 0.002
                for leaf in small_tree_with_priors.leaves()
            }
            service.publish_priors(new_priors)
            refreshed = client.wait_forest(key, min_generation=first.generation + 1)
            assert refreshed.reason == "priors"
            assert json.dumps(
                refreshed.response, sort_keys=True
            ) == direct_response_bytes(service)
            # The priors actually changed, so the refresh is a different
            # matrix — the push carried new information, not a re-send.
            assert json.dumps(refreshed.response, sort_keys=True) != json.dumps(
                first.response, sort_keys=True
            )

    def test_level_scoped_invalidate_only_refreshes_matching_subscriptions(
        self, small_tree_with_priors, service, gateway
    ):
        if small_tree_with_priors.height < 1:
            pytest.skip("needs a tree with at least two levels")
        with GatewayClient(gateway.host, gateway.port) as client:
            key_level0 = client.subscribe(0, 1)
            key_level1 = client.subscribe(1, 1)
            client.wait_forest(key_level0)
            client.wait_forest(key_level1)
            service.invalidate(privacy_level=1)
            refreshed = client.wait_forest(key_level1, min_generation=2)
            assert refreshed.generation == 2
            # The level-0 subscription saw no refresh push: its held
            # generation is still 1 after the level-1 refresh landed.
            held = client.held(key_level0)
            assert held is not None and held.generation == 1

    def test_heartbeats_reach_idle_connections(self, gateway):
        with GatewayClient(gateway.host, gateway.port) as client:
            wait_until(
                lambda: client.stats()["heartbeats"] >= 2,
                timeout_s=10.0,
                message="two heartbeat frames on an idle connection",
            )

    def test_gateway_counters_and_diagnostics_flow_through_service(
        self, service, gateway
    ):
        with GatewayClient(gateway.host, gateway.port) as client:
            key = client.subscribe(1, 1)
            client.wait_forest(key)
            assert service.metrics.count("gateway_connections") == 1
            assert service.metrics.count("gateway_subscriptions") == 1
            assert service.metrics.count("gateway_pushes") >= 1
            diagnostics = service.diagnostics()["gateway"]
            assert diagnostics["running"] is True
            assert diagnostics["connections"] == 1
            assert diagnostics["keys"][0]["subscribers"] == 1
        wait_until(
            lambda: service.metrics.count("gateway_disconnects") == 1,
            timeout_s=10.0,
            message="disconnect counter after client close",
        )

    def test_close_is_idempotent_and_diagnostics_report_not_running(
        self, service, gateway
    ):
        gateway.close()
        gateway.close()
        assert gateway.diagnostics()["running"] is False
        # The provider was detached on close: the service diagnostics no
        # longer carry a gateway block.
        assert "gateway" not in service.diagnostics()


# --------------------------------------------------------------------- #
# Protocol robustness on a held connection
# --------------------------------------------------------------------- #


class TestProtocolErrors:
    def _connect(self, gateway):
        sock = socket.create_connection((gateway.host, gateway.port), timeout=30)
        stream = sock.makefile("rb")
        hello = decode_gateway_frame(stream.readline())
        assert hello["type"] == "hello"
        return sock, stream

    def test_garbage_line_is_answered_then_connection_still_works(
        self, service, gateway
    ):
        sock, stream = self._connect(gateway)
        try:
            sock.sendall(b"\x00\xffnot json at all\n")
            error = decode_gateway_frame(stream.readline())
            assert error["type"] == "error" and error["error"] == "bad_frame"
            sock.sendall(encode_gateway_frame({"op": "subscribe", "privacy_level": 1, "delta": 1}))
            acknowledged = decode_gateway_frame(stream.readline())
            assert acknowledged["type"] == "subscribed"
            assert service.metrics.count("gateway_rejected_frames") == 1
        finally:
            sock.close()

    def test_unknown_op_and_bad_request_are_typed_answers(self, gateway):
        sock, stream = self._connect(gateway)
        try:
            sock.sendall(encode_gateway_frame({"op": "warp"}))
            answer = decode_gateway_frame(stream.readline())
            assert (answer["type"], answer["error"]) == ("error", "unknown_op")
            sock.sendall(
                encode_gateway_frame({"op": "subscribe", "privacy_level": 99, "delta": 1})
            )
            answer = decode_gateway_frame(stream.readline())
            assert (answer["type"], answer["error"]) == ("error", "bad_request")
        finally:
            sock.close()

    def test_subscribe_succeeds_after_earlier_error_frame(self, gateway):
        """Errors accumulate for the connection's lifetime; a rejection of
        an *earlier* subscribe must not poison a later, valid one."""
        with GatewayClient(gateway.host, gateway.port) as client:
            with pytest.raises(GatewayProtocolError):
                client.subscribe(99, 1)  # bad privacy level -> bad_request
            assert client.subscribe(1, 1) == KEY

    def test_resubscribe_to_known_key_acks_promptly(self, gateway):
        """Every subscribe is acked with its own frame, so re-subscribing
        to an already-held key returns instead of waiting out wait_s."""
        with GatewayClient(gateway.host, gateway.port) as client:
            assert client.subscribe(1, 1) == KEY
            assert client.subscribe(1, 1, wait_s=5.0) == KEY

    def test_unsubscribe_stops_pushes(self, service, gateway):
        with GatewayClient(gateway.host, gateway.port) as client:
            key = client.subscribe(1, 1)
            client.wait_forest(key)
            client._send({"op": "unsubscribe", "privacy_level": 1, "delta": 1})
            wait_until(
                lambda: service.diagnostics()["gateway"]["subscriptions"] == 0,
                timeout_s=10.0,
                message="subscription registry emptied after unsubscribe",
            )
            service.invalidate()
            # No refresh push may arrive: heartbeats keep flowing, the held
            # generation stays 1.
            baseline = client.stats()["heartbeats"]
            wait_until(
                lambda: client.stats()["heartbeats"] >= baseline + 3,
                timeout_s=10.0,
                message="heartbeats after unsubscribe",
            )
            assert client.held(key).generation == 1

    def test_slow_consumer_is_evicted_not_buffered(self, service):
        # A clamped write path makes backpressure deterministic: the peer
        # never reads, so after ~a few KiB of kernel+transport buffer its
        # answer frames back up, the 8-slot queue fills, and the server
        # must evict (counted) instead of growing memory.
        gateway = GatewayServer(
            service,
            GatewayConfig(
                heartbeat_interval_s=30.0, queue_limit=8, write_buffer_high=1024
            ),
        ).start()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
            sock.settimeout(30.0)
            sock.connect((gateway.host, gateway.port))
            # Never read a byte; provoke one answer frame per ping.
            ping = encode_gateway_frame({"op": "ping", "nonce": "flood"})
            try:
                for _ in range(5_000):
                    sock.sendall(ping)
            except OSError:
                pass  # server already reset the flooded connection — fine
            wait_until(
                lambda: service.metrics.count("gateway_evicted_slow") == 1,
                timeout_s=30.0,
                message="slow-consumer eviction",
            )
            wait_until(
                lambda: service.diagnostics()["gateway"]["connections"] == 0,
                timeout_s=10.0,
                message="evicted connection dropped from the registry",
            )
            # The server tore the TCP connection down under us.
            with pytest.raises(OSError):
                while sock.recv(65536):
                    pass
                raise ConnectionResetError("EOF")  # clean EOF counts too
        finally:
            sock.close()
            gateway.close()


# --------------------------------------------------------------------- #
# AsyncCORGIService: async single-flight rendezvous
# --------------------------------------------------------------------- #


class TestAsyncSingleFlight:
    def test_concurrent_identical_keys_share_one_build(self, engine):
        service = CORGIService(engine)
        adapter = AsyncCORGIService(service)
        calls = []
        original = adapter._build_sync

        def counted(key):
            calls.append(key)
            return original(key)

        adapter._build_sync = counted

        async def fan_in():
            return await asyncio.gather(
                *(adapter.forest_response(KEY) for _ in range(16))
            )

        responses = asyncio.run(fan_in())
        adapter.close()
        assert len(calls) == 1  # one executor ticket for 16 awaiters
        first = json.dumps(responses[0], sort_keys=True)
        assert all(json.dumps(r, sort_keys=True) == first for r in responses)

    def test_follower_deadline_raises_typed_timeout(self, engine):
        service = CORGIService(engine)
        adapter = AsyncCORGIService(service, build_wait_timeout_s=0.1)

        async def scenario():
            from repro.service.gateway import _AsyncBuild

            # A leader that never completes (its event never fires).
            adapter._inflight[KEY] = _AsyncBuild()
            with pytest.raises(ServiceBuildTimeoutError):
                await adapter.forest_response(KEY)

        asyncio.run(scenario())
        adapter.close()
        assert service.metrics.count("build_timeouts") == 1

    def test_follower_gets_wrapped_copy_of_leader_error(self, engine):
        service = CORGIService(engine)
        adapter = AsyncCORGIService(service)
        boom = RuntimeError("solver exploded")

        def failing(key):
            raise boom

        adapter._build_sync = failing

        async def scenario():
            results = await asyncio.gather(
                *(adapter.forest_response(KEY) for _ in range(4)),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(scenario())
        adapter.close()
        assert all(isinstance(error, RuntimeError) for error in results)
        leader_errors = [error for error in results if error is boom]
        follower_errors = [error for error in results if error is not boom]
        assert len(leader_errors) == 1
        assert follower_errors, "followers must exist in a 4-way race"
        for error in follower_errors:
            assert error.__cause__ is boom  # provenance preserved
            assert error.args == boom.args
        # Each follower raised its *own* object — no shared instance.
        assert len({id(error) for error in follower_errors}) == len(follower_errors)

    def test_generation_guard_reruns_build_started_before_update(self, engine):
        """A build in flight when the update fired may carry pre-update
        data; a caller with a newer generation requirement must wait it out
        and lead a fresh build rather than join it."""
        service = CORGIService(engine)
        adapter = AsyncCORGIService(service)
        builds = []
        original = adapter._build_sync
        release_first = threading.Event()

        def gated(key):
            builds.append(key)
            if len(builds) == 1:
                release_first.wait(timeout=30.0)
            return original(key)

        adapter._build_sync = gated

        async def scenario():
            first = asyncio.ensure_future(
                adapter.forest_response(KEY, generation=1)
            )
            await asyncio.sleep(0)  # let the leader enter the executor
            # An update (generation 2) arrives while generation-1 builds.
            second = asyncio.ensure_future(
                adapter.forest_response(KEY, generation=2)
            )
            await asyncio.sleep(0)
            release_first.set()
            await asyncio.gather(first, second)

        asyncio.run(scenario())
        adapter.close()
        assert len(builds) == 2  # the gen-2 caller did NOT join the stale build


# --------------------------------------------------------------------- #
# Client-side generation guard
# --------------------------------------------------------------------- #


class TestGenerationGuard:
    def test_stale_push_never_rolls_the_client_back(self):
        store = _PushStore()
        key_wire = {"privacy_level": 1, "delta": 1, "epsilon": 2.0}
        store.apply(
            {"type": "forest", "key": key_wire, "generation": 3, "reason": "invalidate",
             "response": {"fresh": True}}
        )
        # A late snapshot frame from before the refresh arrives afterwards.
        store.apply(
            {"type": "forest", "key": key_wire, "generation": 1, "reason": "subscribe",
             "response": {"fresh": False}}
        )
        assert store.forests[KEY].response == {"fresh": True}
        assert store.stale_dropped == 1
        assert store.generations_seen[KEY] == [3, 1]

    def test_equal_generation_is_a_duplicate_and_dropped(self):
        store = _PushStore()
        key_wire = {"privacy_level": 1, "delta": 1, "epsilon": 2.0}
        frame = {"type": "forest", "key": key_wire, "generation": 2,
                 "reason": "invalidate", "response": {"n": 1}}
        store.apply(frame)
        store.apply(dict(frame))
        assert store.pushes == 1
        assert store.stale_dropped == 1

    def test_subscribe_ack_with_lower_generation_starts_new_epoch(self):
        """A re-subscribe after the server pruned the key restarts its
        generation count; the ack must reset the client's epoch so the new
        pushes are installed rather than dropped as stale."""
        store = _PushStore()
        key_wire = {"privacy_level": 1, "delta": 1, "epsilon": 2.0}
        store.apply(
            {"type": "forest", "key": key_wire, "generation": 5,
             "reason": "invalidate", "response": {"epoch": "old"}}
        )
        store.apply({"type": "subscribed", "key": key_wire, "generation": 1})
        assert KEY not in store.forests  # held entry belongs to a dead epoch
        store.apply(
            {"type": "forest", "key": key_wire, "generation": 1,
             "reason": "subscribe", "response": {"epoch": "new"}}
        )
        assert store.forests[KEY].response == {"epoch": "new"}
        assert store.stale_dropped == 0


# --------------------------------------------------------------------- #
# Refresh/snapshot races (regressions found in review)
# --------------------------------------------------------------------- #


class TestRefreshRaces:
    def test_snapshot_racing_invalidate_cannot_wedge_client(self, service):
        """An invalidate landing while the subscribe snapshot builds must
        not let the stale snapshot usurp the new generation's tag — the
        client would then drop the genuine refresh push and wedge on
        pre-update data tagged as fresh."""
        gateway = GatewayServer(
            service, GatewayConfig(heartbeat_interval_s=30.0, queue_limit=8)
        ).start()
        try:
            builds = []
            release = threading.Event()
            original = gateway._async._build_sync

            def gated(key):
                builds.append(key)
                if len(builds) == 1:
                    release.wait(timeout=30.0)
                return original(key)

            gateway._async._build_sync = gated
            with GatewayClient(gateway.host, gateway.port) as client:
                key = client.subscribe(1, 1)  # ack is sync; snapshot now blocked
                wait_until(
                    lambda: len(builds) == 1,
                    timeout_s=10.0,
                    message="snapshot build entered the executor",
                )
                service.invalidate()  # generation -> 2 mid-snapshot-build
                release.set()
                refreshed = client.wait_forest(key, min_generation=2, timeout_s=30.0)
                assert refreshed.generation == 2
                # The snapshot kept its subscribe-time tag (1) and the
                # refresh carried 2 — nothing was dropped as stale.
                assert client.generations_seen(key) == [1, 2]
                assert client.stats()["stale_dropped"] == 0
        finally:
            gateway.close()

    def test_update_during_failed_refresh_build_is_not_lost(self, service):
        """If a refresh build fails while a newer update lands, the refresh
        task must go again for the newer generation — _mark_updated skipped
        scheduling while the task held the key, so returning would strand
        every subscriber on stale data."""
        gateway = GatewayServer(
            service, GatewayConfig(heartbeat_interval_s=30.0, queue_limit=8)
        ).start()
        try:
            with GatewayClient(gateway.host, gateway.port) as client:
                key = client.subscribe(1, 1)
                client.wait_forest(key)
                started = threading.Event()
                release = threading.Event()
                failed = []
                original = gateway._async._build_sync

                def failing_once(k):
                    if not failed:
                        failed.append(k)
                        started.set()
                        release.wait(timeout=30.0)
                        raise RuntimeError("transient solver failure")
                    return original(k)

                gateway._async._build_sync = failing_once
                service.invalidate()  # generation -> 2; refresh build will fail
                assert started.wait(timeout=10.0)
                service.invalidate()  # generation -> 3 lands mid-failing-build
                release.set()
                refreshed = client.wait_forest(key, min_generation=3, timeout_s=30.0)
                assert refreshed.generation == 3
                # The failure itself was still answered to subscribers.
                assert client.stats()["errors"] >= 1
        finally:
            gateway.close()

    def test_key_state_pruned_when_last_subscriber_leaves(self, service, gateway):
        """Unsubscribing the last holder forgets the key server-side (no
        unbounded _generations growth); a re-subscribe restarts at
        generation 1 and the client follows the new epoch."""
        with GatewayClient(gateway.host, gateway.port) as client:
            key = client.subscribe(1, 1)
            client.wait_forest(key)
            service.invalidate()
            assert client.wait_forest(key, min_generation=2).generation == 2
            client._send({"op": "unsubscribe", "privacy_level": 1, "delta": 1})
            wait_until(
                lambda: service.diagnostics()["gateway"]["subscribed_keys"] == 0,
                timeout_s=10.0,
                message="key released after last unsubscribe",
            )
            assert client.subscribe(1, 1) == key
            wait_until(
                lambda: (held := client.held(key)) is not None
                and held.generation == 1,
                timeout_s=10.0,
                message="re-subscribe snapshot installed at restarted generation",
            )


# --------------------------------------------------------------------- #
# Acceptance: the invalidate storm over many held connections
# --------------------------------------------------------------------- #


STORM_CONNECTIONS = int(os.environ.get("GATEWAY_STORM_CONNECTIONS", "200"))
STORM_INVALIDATES = 5


class TestInvalidateStorm:
    def test_storm_delivers_exactly_once_per_subscriber(self, service):
        """N held connections, an invalidate storm: every subscriber ends
        up holding the refreshed matrix, generations observed per client
        are strictly increasing (no duplicate push, no stale generation
        installed), all clients converge on the same settled generation,
        and nobody was evicted."""
        gateway = GatewayServer(
            service, GatewayConfig(heartbeat_interval_s=30.0, queue_limit=16)
        ).start()
        try:
            outcome = asyncio.run(self._storm(service, gateway))
        finally:
            gateway.close()

        final_generations = {push.generation for push in outcome["final"]}
        assert len(final_generations) == 1, "all clients must converge on one generation"
        settled = final_generations.pop()
        direct = direct_response_bytes(service)
        for push in outcome["final"]:
            assert json.dumps(push.response, sort_keys=True) == direct
        for seen in outcome["generations_seen"]:
            assert seen == sorted(set(seen)), f"duplicate or regressing push: {seen}"
            assert seen.count(settled) == 1, "settled generation delivered exactly once"
        assert service.metrics.count("gateway_evicted_slow") == 0
        assert service.metrics.count("gateway_connections") == STORM_CONNECTIONS

    async def _storm(self, service, gateway):
        clients = []
        for _ in range(STORM_CONNECTIONS):
            clients.append(await AsyncGatewayClient.open(gateway.host, gateway.port))
        try:
            for client in clients:
                await client.subscribe(1, 1)
            await asyncio.gather(
                *(client.wait_forest(KEY, timeout_s=120.0) for client in clients)
            )
            base = max(client.store.forests[KEY].generation for client in clients)

            # The storm: fired from a worker thread like real admin traffic
            # (the update listener crosses into the gateway loop thread-safely).
            def fire():
                for _ in range(STORM_INVALIDATES):
                    service.invalidate()

            await asyncio.get_running_loop().run_in_executor(None, fire)

            final = await asyncio.gather(
                *(
                    client.wait_forest(KEY, min_generation=base + 1, timeout_s=120.0)
                    for client in clients
                )
            )
            # Quiescence: no refresh task left, then collect what each
            # client saw (drain any frame still in flight first).
            async def settle(client):
                try:
                    await client.pump_until(lambda store: False, timeout_s=0.2)
                except TimeoutError:
                    pass

            await asyncio.gather(*(settle(client) for client in clients))
            return {
                "final": [client.store.forests[KEY] for client in clients],
                "generations_seen": [
                    client.store.generations_seen[KEY] for client in clients
                ],
            }
        finally:
            await asyncio.gather(*(client.close() for client in clients))
