"""Shared pytest fixtures and concurrency-test helpers.

Expensive objects (LP solutions, robust matrices, the synthetic dataset)
are session-scoped so the suite stays fast: most tests operate on a 7-leaf
sub-tree where a full LP solve takes well under a second.

The concurrency helpers (:func:`run_burst`, :func:`wait_until`,
:func:`free_port` — defined in :mod:`helpers_concurrency`, re-exported
here and as fixtures) exist so no test needs an ad-hoc ``time.sleep`` to
synchronize with background work: bursts are barrier-released and
deadline-joined, and ordering is expressed as a polled predicate with a
hard timeout instead of a guessed delay.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers_concurrency import BurstOutcome, free_port, run_burst, wait_until  # noqa: F401

from repro.core.graphapprox import HexNeighborhoodGraph
from repro.core.lp import ObfuscationLP
from repro.core.objective import QualityLossModel, TargetDistribution
from repro.core.robust import RobustMatrixGenerator
from repro.datasets.synthetic import GowallaLikeGenerator, SyntheticConfig
from repro.geometry.haversine import LatLng
from repro.geometry.projection import BoundingBox
from repro.tree.builder import tree_for_point
from repro.tree.priors import priors_from_checkins

#: Default privacy budget used by the small LP fixtures (km^-1).  With the
#: 7-leaf tree's ~0.9 km spacing this keeps the Geo-Ind constraints active
#: without making the LP trivially identity-like.
TEST_EPSILON = 2.0


# --------------------------------------------------------------------- #
# Concurrency helpers (shared by the service / pool / transport tests)
# --------------------------------------------------------------------- #


@pytest.fixture()
def burst():
    """Fixture handle on :func:`run_burst` (keeps test imports conftest-free)."""
    return run_burst


@pytest.fixture()
def wait_for():
    """Fixture handle on :func:`wait_until`."""
    return wait_until


@pytest.fixture(scope="session")
def sf_center() -> LatLng:
    """A point in central San Francisco used as the tree anchor."""
    return LatLng(37.77, -122.42)


@pytest.fixture(scope="session")
def small_tree(sf_center):
    """Height-1 tree (7 leaves) — the workhorse for fast LP tests."""
    tree = tree_for_point(sf_center, height=1, root_resolution=8)
    return tree


@pytest.fixture(scope="session")
def medium_tree(sf_center):
    """Height-2 tree (49 leaves) for structure-heavy tests (no LP solves)."""
    return tree_for_point(sf_center, height=2, root_resolution=7)


@pytest.fixture(scope="session")
def synthetic_dataset():
    """A small synthetic Gowalla-like dataset (deterministic)."""
    config = SyntheticConfig(num_checkins=2_000, num_users=50, num_venues=120)
    return GowallaLikeGenerator(config, seed=42).generate()


@pytest.fixture(scope="session")
def small_tree_with_priors(small_tree, synthetic_dataset):
    """The 7-leaf tree with priors derived from the synthetic check-ins."""
    priors_from_checkins(small_tree, synthetic_dataset)
    return small_tree


@pytest.fixture(scope="session")
def small_location_set(small_tree):
    """Leaves, centres, distances, graph and quality model of the 7-leaf tree."""
    leaves = small_tree.leaves()
    node_ids = [leaf.node_id for leaf in leaves]
    cells = [leaf.cell for leaf in leaves]
    centers = [leaf.center.as_tuple() for leaf in leaves]
    graph = HexNeighborhoodGraph(small_tree.grid, cells)
    distance_matrix = graph.euclidean_distance_matrix()
    rng = np.random.default_rng(7)
    priors = rng.random(len(leaves))
    priors = priors / priors.sum()
    targets = TargetDistribution.sample_from_centers(centers, 5, seed=3)
    quality_model = QualityLossModel(centers, targets, priors)
    return {
        "tree": small_tree,
        "node_ids": node_ids,
        "cells": cells,
        "centers": centers,
        "graph": graph,
        "distance_matrix": distance_matrix,
        "priors": priors,
        "targets": targets,
        "quality_model": quality_model,
    }


@pytest.fixture(scope="session")
def nonrobust_solution(small_location_set):
    """Optimal non-robust matrix over the 7-leaf set (one LP solve, reused)."""
    lp = ObfuscationLP(
        small_location_set["node_ids"],
        small_location_set["distance_matrix"],
        small_location_set["quality_model"],
        TEST_EPSILON,
        constraint_set=small_location_set["graph"].constraint_set(),
    )
    return lp.solve_nonrobust()


@pytest.fixture(scope="session")
def robust_result(small_location_set):
    """Robust (delta=1) matrix over the 7-leaf set (Algorithm 1, reused).

    delta=1 is used because on a 7-location range with a handful of targets
    the LP optimum concentrates its mass on few columns, so larger delta
    values run into the degenerate "all mass pruned" corner the paper's
    Section 5.3 discusses; delta=1 exercises the robustness mechanism
    cleanly at unit-test scale (the 49-location experiments cover larger
    delta).
    """
    generator = RobustMatrixGenerator(
        small_location_set["node_ids"],
        small_location_set["distance_matrix"],
        small_location_set["quality_model"],
        TEST_EPSILON,
        delta=1,
        constraint_set=small_location_set["graph"].constraint_set(),
        max_iterations=3,
    )
    return generator.generate()


@pytest.fixture(scope="session")
def sf_region() -> BoundingBox:
    """The San Francisco study region."""
    from repro.datasets.region import SAN_FRANCISCO

    return SAN_FRANCISCO
