"""User-side matrix pruning (Section 4.3).

After selecting the matrix covering their sub-tree, the user removes the
locations that fail their preferences: the corresponding rows and columns
are deleted and every remaining row is renormalised by
``1 / (1 - Σ_{l∈S} z_{i,l})`` so the probability unit measure still holds.
Pruning happens entirely on the user device (or a trusted edge node); the
server never learns *which* locations were removed, only how many (δ).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.exceptions import PruningError
from repro.core.matrix import ObfuscationMatrix
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def prune_matrix(
    matrix: ObfuscationMatrix,
    prune_ids: Sequence[str],
    *,
    allow_empty: bool = True,
) -> ObfuscationMatrix:
    """Remove the given locations from an obfuscation matrix.

    Parameters
    ----------
    matrix:
        The matrix ``Z`` to customize.
    prune_ids:
        Node ids of the locations to remove (the set ``S``).  Duplicates are
        ignored; ids not covered by the matrix raise :class:`PruningError`.
    allow_empty:
        When true (default) an empty prune set simply returns a copy.

    Returns
    -------
    ObfuscationMatrix
        The pruned matrix ``Z*`` over the remaining locations, with
        ``metadata["pruned_ids"]`` recording what was removed.

    Raises
    ------
    PruningError
        If an id is unknown, if every location would be removed, or if some
        remaining row would be left with zero probability mass (which can
        only happen for degenerate matrices whose entire row mass sat on the
        pruned columns).
    """
    unique_ids = list(dict.fromkeys(prune_ids))
    if not unique_ids:
        if allow_empty:
            return matrix.copy()
        raise PruningError("the prune set is empty")
    unknown = [node_id for node_id in unique_ids if node_id not in matrix]
    if unknown:
        raise PruningError(f"cannot prune locations not covered by the matrix: {unknown[:5]}")
    if len(unique_ids) >= matrix.size:
        raise PruningError(
            f"cannot prune {len(unique_ids)} of {matrix.size} locations; at least one must remain"
        )
    keep_ids = [node_id for node_id in matrix.node_ids if node_id not in set(unique_ids)]
    keep_indices = [matrix.index_of(node_id) for node_id in keep_ids]
    prune_indices = [matrix.index_of(node_id) for node_id in unique_ids]

    removed_mass = matrix.values[np.ix_(keep_indices, prune_indices)].sum(axis=1)
    remaining_mass = 1.0 - removed_mass
    bad_rows = np.where(remaining_mass <= 1e-12)[0]
    if bad_rows.size:
        bad_ids = [keep_ids[int(index)] for index in bad_rows[:5]]
        raise PruningError(
            f"rows {bad_ids} would retain zero probability mass after pruning; "
            "the matrix cannot be customized with this prune set"
        )
    values = matrix.values[np.ix_(keep_indices, keep_indices)] / remaining_mass[:, None]

    pruned = ObfuscationMatrix(
        values=values,
        node_ids=keep_ids,
        level=matrix.level,
        epsilon=matrix.epsilon,
        delta=matrix.delta,
        metadata={
            **{k: v for k, v in matrix.metadata.items() if k != "_node_index"},
            "pruned_ids": list(unique_ids),
            "pruned_count": len(unique_ids),
            "original_size": matrix.size,
        },
    )
    logger.debug("pruned %d of %d locations from the obfuscation matrix", len(unique_ids), matrix.size)
    return pruned


def prune_matrix_by_indices(matrix: ObfuscationMatrix, indices: Sequence[int]) -> ObfuscationMatrix:
    """Index-based variant of :func:`prune_matrix` (used by the experiments)."""
    node_ids = []
    for index in indices:
        position = int(index)
        if position < 0 or position >= matrix.size:
            raise PruningError(f"index {position} is outside the matrix of size {matrix.size}")
        node_ids.append(matrix.node_ids[position])
    return prune_matrix(matrix, node_ids)


def pruning_row_scale_factors(
    matrix: ObfuscationMatrix,
    prune_ids: Sequence[str],
) -> Dict[str, float]:
    """The per-row renormalisation factors ``1 / (1 - Σ_{l∈S} z_{i,l})``.

    Exposed separately because the robustness analysis (Section 4.4) reasons
    about precisely these factors: Geo-Ind survives pruning exactly when the
    factors of any two rows do not differ by more than the reserved budget
    allows.
    """
    prune_set = set(prune_ids)
    unknown = [node_id for node_id in prune_set if node_id not in matrix]
    if unknown:
        raise PruningError(f"cannot prune locations not covered by the matrix: {sorted(unknown)[:5]}")
    prune_indices = [matrix.index_of(node_id) for node_id in prune_set]
    factors: Dict[str, float] = {}
    for node_id in matrix.node_ids:
        if node_id in prune_set:
            continue
        row = matrix.values[matrix.index_of(node_id)]
        removed = float(row[prune_indices].sum()) if prune_indices else 0.0
        remaining = 1.0 - removed
        if remaining <= 0:
            raise PruningError(f"row {node_id!r} retains no probability mass after pruning")
        factors[node_id] = 1.0 / remaining
    return factors


def random_prune_set(
    matrix: ObfuscationMatrix,
    count: int,
    rng,
    *,
    protect_ids: Sequence[str] = (),
) -> List[str]:
    """Uniformly sample *count* locations to prune, optionally protecting some ids.

    This is the workload of the Fig. 12 experiment ("let a user randomly
    prune n locations ... and run the experiment 500 times").
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    protected = set(protect_ids)
    candidates = [node_id for node_id in matrix.node_ids if node_id not in protected]
    if count > len(candidates) - 1 + (1 if protected else 0) and count >= len(candidates):
        raise PruningError(
            f"cannot prune {count} locations from {len(candidates)} prunable candidates"
        )
    indices = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(index)] for index in indices]
