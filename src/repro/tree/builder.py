"""Builders for location trees.

The server generates the spatial index / location tree for the area of
interest (step 1 of Figure 1).  Two entry points are provided:

* :func:`build_location_tree` — when the root cell is already known (e.g.
  chosen from a previous run);
* :func:`tree_for_region` — the common case: pick the cell of a given root
  resolution containing the centre of a bounding box, exactly as the paper
  does for the San Francisco sample ("root node which covers the entire
  region at resolution 6").
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.haversine import LatLng
from repro.geometry.projection import BoundingBox
from repro.hexgrid.cell import HexCell
from repro.hexgrid.grid import DEFAULT_BASE_EDGE_KM, HexGridSystem
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: The paper's configuration: H3 resolution 6 root, tree of height 3 (343 leaves).
PAPER_ROOT_RESOLUTION = 6
PAPER_TREE_HEIGHT = 3


def build_location_tree(grid: HexGridSystem, root_cell: HexCell, height: int) -> LocationTree:
    """Build a location tree below *root_cell*.

    Parameters
    ----------
    grid:
        Hexagonal grid system providing geometry and the aperture-7 hierarchy.
    root_cell:
        The cell representing the whole area of interest.
    height:
        Number of levels below the root; leaves are ``height`` resolutions
        finer than the root and number ``7 ** height``.
    """
    tree = LocationTree(grid, root_cell, height)
    logger.debug("built location tree %s", tree.summary())
    return tree


def tree_for_region(
    region: BoundingBox,
    height: int = PAPER_TREE_HEIGHT,
    root_resolution: int = PAPER_ROOT_RESOLUTION,
    *,
    grid: Optional[HexGridSystem] = None,
    base_edge_km: float = DEFAULT_BASE_EDGE_KM,
) -> LocationTree:
    """Build the location tree for a geographic region.

    The root is the cell at *root_resolution* containing the centre of
    *region* — the paper's construction for the San Francisco Gowalla
    sample (root at resolution 6, height 3, 343 leaves).

    Parameters
    ----------
    region:
        The area of interest.
    height:
        Tree height ``H`` (number of granularity levels below the root).
    root_resolution:
        Hex-grid resolution of the root cell.
    grid:
        Optional pre-built grid system; a fresh one centred on *region* is
        created when omitted.
    base_edge_km:
        Base cell edge length when a new grid system is created.
    """
    if grid is None:
        grid = HexGridSystem.for_region(region, base_edge_km=base_edge_km)
    center = region.center
    root_cell = grid.latlng_to_cell(center.lat, center.lng, root_resolution)
    return build_location_tree(grid, root_cell, height)


def tree_for_point(
    point: LatLng,
    height: int = PAPER_TREE_HEIGHT,
    root_resolution: int = PAPER_ROOT_RESOLUTION,
    *,
    base_edge_km: float = DEFAULT_BASE_EDGE_KM,
) -> LocationTree:
    """Build a location tree whose root cell contains *point*.

    Convenience wrapper used by the examples: "give me the CORGI tree around
    Times Square / downtown San Francisco".
    """
    grid = HexGridSystem(point, base_edge_km=base_edge_km)
    root_cell = grid.latlng_to_cell(point.lat, point.lng, root_resolution)
    return build_location_tree(grid, root_cell, height)
