"""Baseline obfuscation mechanisms the paper compares against (Section 6.1, 7).

* :class:`~repro.baselines.nonrobust.NonRobustLPMechanism` — the paper's
  explicit baseline: the linear-programming geo-obfuscation of
  [17, 18, 19] (optimal quality loss under ε-Geo-Ind) which reserves no
  budget for customization (δ = 0);
* :class:`~repro.baselines.planar_laplace.PlanarLaplaceMechanism` — the
  classic continuous planar Laplace mechanism of Andrés et al. (the
  mechanism behind the Location Guard browser extension), discretised onto
  the location tree's cells;
* :class:`~repro.baselines.uniform.UniformMechanism` — the trivially private
  uniform-reporting mechanism, an upper bound on quality loss.

All mechanisms implement the small :class:`~repro.baselines.base.ObfuscationMechanism`
interface so the experiments and examples can swap them freely.
"""

from repro.baselines.base import ObfuscationMechanism
from repro.baselines.nonrobust import NonRobustLPMechanism
from repro.baselines.planar_laplace import PlanarLaplaceMechanism
from repro.baselines.uniform import UniformMechanism

__all__ = [
    "ObfuscationMechanism",
    "NonRobustLPMechanism",
    "PlanarLaplaceMechanism",
    "UniformMechanism",
]
