"""Replicated control-plane scenarios: one primary, N log-shipping followers.

Covers the ISSUE acceptance surface for `repro.service.replication`:

* **three-head fleet** — a primary plus two followers converge on the
  primary's priors generation after ``publish_priors`` and serve
  byte-identical forests; ``invalidate`` replicates the same way;
* **role guards** — a follower refuses local control writes with a typed
  400-class error (:class:`ReplicationRoleError`, a ``ValueError``) and the
  HTTP admin surface maps it to 400;
* **durable cursor** — a restarted follower resumes from its fsync'd
  cursor without re-applying records it already holds;
* **split-brain reset** — a follower whose local log replayed versions the
  primary never committed rotates the divergent log aside
  (``control.log.split-brain``) and adopts the primary's state at its
  durable version;
* **fingerprint fencing** — a follower built over a different pipeline
  config is rejected at subscribe and never applies a foreign record;
* **seed store** — a follower pre-warms its shards read-only from a
  same-fingerprint head's snapshot directory and serves those keys as
  cache hits without ever writing to the shared store;
* **kill -9 mid-burst** — SIGKILL the primary in the middle of a publish
  burst: every record a follower holds is within the primary's durable
  on-disk prefix (store-and-forward means nothing a crash can un-happen),
  and a primary rebooted over the same log resumes the version sequence
  with both followers converging.

All synchronization goes through the conftest helpers (``wait_until``,
``free_port``) — no ad-hoc sleeps in assertions.
"""

import copy
import json
import multiprocessing
import shutil
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from helpers_concurrency import free_port, wait_until
from repro.geometry.haversine import LatLng
from repro.server.engine import ServerConfig
from repro.service.controllog import ControlLog
from repro.service.http import CORGIHTTPServer
from repro.service.pool import EnginePool
from repro.service.replication import (
    CURSOR_FILENAME,
    ReplicationRoleError,
    parse_replication_source,
    read_cursor,
    write_cursor,
)
from repro.service.service import CORGIService
from repro.tree.builder import tree_for_point

#: Fast engine settings shared by every head in this module.  Every head in
#: a fleet must use the same config: the store fingerprint folds the
#: result-affecting fields and the primary fences mismatched subscribers.
POOL_CONFIG = dict(epsilon=2.0, num_targets=5, robust_iterations=1)

#: Generous ceiling for cross-process/cross-thread convergence waits.
CONVERGE_S = 60


def make_head(tree, state_dir, **kwargs):
    kwargs.setdefault("num_shards", 1)
    pool = EnginePool(tree, ServerConfig(**POOL_CONFIG), state_dir=state_dir, **kwargs)
    pool.wait_ready()
    return pool


def replication_info(pool):
    return pool.durability_diagnostics().get("replication") or {}


def sample_priors(tree, mass=2.0):
    """A deliberately non-uniform priors payload over the tree's leaves."""
    leaves = sorted(tree.leaves(), key=lambda leaf: str(leaf.node_id))
    return {
        str(leaf.node_id): mass if index == 0 else 1.0
        for index, leaf in enumerate(leaves)
    }


def forest_matrices(forest):
    """Subtree-root → matrix values, the byte-identity comparison surface."""
    return {
        root_id: np.asarray(forest.matrix_for_subtree(root_id).values)
        for root_id in forest.subtree_roots()
    }


def assert_identical_forests(pools, privacy_level=0, delta=0):
    built = [forest_matrices(p.build_forest(privacy_level, delta)) for p in pools]
    reference = built[0]
    for index, matrices in enumerate(built[1:], start=1):
        assert set(matrices) == set(reference), f"head {index} root set differs"
        for root_id, values in reference.items():
            assert np.array_equal(matrices[root_id], values), (
                f"head {index} diverges at subtree {root_id}"
            )


@pytest.fixture()
def fleet_tree(small_tree_with_priors):
    """A private copy of the priors-annotated tree (pools mutate priors)."""
    return copy.deepcopy(small_tree_with_priors)


@pytest.fixture()
def primary(fleet_tree, tmp_path):
    state = tmp_path / "primary"
    pool = make_head(copy.deepcopy(fleet_tree), state, replication_port=0)
    try:
        yield pool
    finally:
        pool.close()


def follower_of(primary_pool, tree, state_dir, **kwargs):
    port = primary_pool._replication_server.port
    return make_head(tree, state_dir, replicate_from=f"127.0.0.1:{port}", **kwargs)


def wait_follower_at(pool, version, timeout_s=CONVERGE_S):
    wait_until(
        lambda: replication_info(pool).get("cursor", -1) >= version
        and pool.priors_version >= version,
        timeout_s=timeout_s,
        message=f"follower to reach replicated version {version}",
    )


# --------------------------------------------------------------------- #
# Cursor file: the follower's durable resume point
# --------------------------------------------------------------------- #


class TestCursorFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / CURSOR_FILENAME
        assert write_cursor(path, "10.0.0.1:7000", 17)
        assert read_cursor(path, "10.0.0.1:7000") == 17
        assert write_cursor(path, "10.0.0.1:7000", 23)
        assert read_cursor(path, "10.0.0.1:7000") == 23

    def test_missing_file_reads_zero(self, tmp_path):
        assert read_cursor(tmp_path / CURSOR_FILENAME, "10.0.0.1:7000") == 0

    def test_source_mismatch_reads_zero(self, tmp_path):
        """A cursor minted against one primary must not seed resumption
        against a different one — their version sequences are unrelated."""
        path = tmp_path / CURSOR_FILENAME
        write_cursor(path, "10.0.0.1:7000", 9)
        assert read_cursor(path, "10.0.0.2:7000") == 0
        assert read_cursor(path, "10.0.0.1:7001") == 0

    def test_corrupt_file_reads_zero(self, tmp_path):
        path = tmp_path / CURSOR_FILENAME
        path.write_bytes(b"\x00\xffnot json")
        assert read_cursor(path, "10.0.0.1:7000") == 0
        # And a corrupt cursor never blocks writing a fresh one.
        assert write_cursor(path, "10.0.0.1:7000", 3)
        assert read_cursor(path, "10.0.0.1:7000") == 3

    def test_parse_replication_source(self):
        assert parse_replication_source("10.1.2.3:7000") == ("10.1.2.3", 7000)
        for bad in ("", "justhost", "host:", ":7000", "host:0", "host:notaport"):
            with pytest.raises(ValueError):
                parse_replication_source(bad)


# --------------------------------------------------------------------- #
# Three-head fleet: publish once, serve identically everywhere
# --------------------------------------------------------------------- #


class TestThreeHeadFleet:
    def test_publish_converges_and_serves_byte_identical(
        self, primary, fleet_tree, tmp_path
    ):
        """Acceptance: publish to the primary; both followers apply the
        record at the primary's version and all three heads serve
        byte-identical forests."""
        followers = [
            follower_of(primary, copy.deepcopy(fleet_tree), tmp_path / f"follower{i}")
            for i in range(2)
        ]
        try:
            priors = sample_priors(fleet_tree, mass=3.0)
            primary.publish_priors(priors, normalize=True)
            assert primary.priors_version == 1
            for follower in followers:
                wait_follower_at(follower, 1)
                info = replication_info(follower)
                assert info["role"] == "follower"
                assert info["records_applied"] >= 1
                assert info["apply_errors"] == 0
                assert info["local_commit_errors"] == 0
                # Store-and-forward: the record is in the follower's own
                # durable log, not just its memory.
                log = follower.durability_diagnostics()["control_log"]
                assert log["replicated_appends"] >= 1
                assert log["last_version"] == 1
            assert_identical_forests([primary] + followers)
            # The primary sees both heads caught up.
            info = replication_info(primary)
            assert info["role"] == "primary"
            assert info["last_version"] == 1
            wait_until(
                lambda: all(
                    f["acked_version"] >= 1
                    for f in replication_info(primary)["followers"]
                )
                and len(replication_info(primary)["followers"]) == 2,
                timeout_s=CONVERGE_S,
                message="primary to observe both follower acks",
            )
            assert all(
                f["lag"] == 0 for f in replication_info(primary)["followers"]
            )
        finally:
            for follower in followers:
                follower.close()

    def test_invalidate_replicates(self, primary, fleet_tree, tmp_path):
        follower = follower_of(primary, copy.deepcopy(fleet_tree), tmp_path / "f")
        try:
            primary.publish_priors(sample_priors(fleet_tree))
            wait_follower_at(follower, 1)
            follower.build_forest(0, 0)
            primary.invalidate()  # version 2 in the shared sequence
            wait_until(
                lambda: replication_info(follower).get("cursor", 0) >= 2,
                timeout_s=CONVERGE_S,
                message="invalidate record to reach the follower",
            )
            # The invalidation purged the follower's local snapshot store.
            store = follower.durability_diagnostics()["store"]
            assert store["entries"] == 0
            _, cached = follower.build_forest_traced(0, 0)
            assert not cached, "forest survived a replicated invalidate"
        finally:
            follower.close()

    def test_follower_refuses_local_control_writes(
        self, primary, fleet_tree, tmp_path
    ):
        follower = follower_of(primary, copy.deepcopy(fleet_tree), tmp_path / "f")
        try:
            priors = sample_priors(fleet_tree)
            with pytest.raises(ReplicationRoleError) as error:
                follower.publish_priors(priors)
            assert isinstance(error.value, ValueError)  # HTTP maps it to 400
            with pytest.raises(ReplicationRoleError):
                follower.invalidate()
            assert follower.priors_version == 0  # nothing forked locally
        finally:
            follower.close()

    def test_follower_restart_resumes_from_cursor(
        self, primary, fleet_tree, tmp_path
    ):
        """Acceptance: a follower rebooted over its state_dir resumes from
        the durable cursor — the primary streams no backlog and the
        follower re-applies nothing."""
        state = tmp_path / "f"
        follower = follower_of(primary, copy.deepcopy(fleet_tree), state)
        source = follower._replication_client.source
        try:
            primary.publish_priors(sample_priors(fleet_tree, mass=4.0))
            wait_follower_at(follower, 1)
        finally:
            follower.close()
        assert read_cursor(state / CURSOR_FILENAME, source) == 1

        reborn = follower_of(primary, copy.deepcopy(fleet_tree), state)
        try:
            # Local WAL replay already restored the generation...
            assert reborn.priors_version == 1
            wait_until(
                lambda: replication_info(reborn).get("connected", False),
                timeout_s=CONVERGE_S,
                message="rebooted follower to resubscribe",
            )
            info = replication_info(reborn)
            # ...so the resumed session starts at the cursor and applies
            # nothing it already holds.
            assert info["cursor"] == 1
            assert info["records_applied"] == 0
            # New records still flow after the resume point.
            primary.publish_priors(sample_priors(fleet_tree, mass=5.0))
            wait_follower_at(reborn, 2)
            assert replication_info(reborn)["records_applied"] == 1
        finally:
            reborn.close()

    def test_divergent_follower_resets_to_primary(
        self, primary, fleet_tree, tmp_path
    ):
        """Acceptance: a follower that replayed versions the primary never
        committed rotates its log aside and adopts the primary's state at
        the primary's durable version (the split-brain rule, log-driven)."""
        primary.publish_priors(sample_priors(fleet_tree, mass=6.0))  # v1

        state = tmp_path / "f"
        state.mkdir()
        divergent = ControlLog(state / "control.log")
        for round_index in range(5):
            divergent.append(
                "publish_priors",
                {
                    "priors": sample_priors(fleet_tree, mass=2.0 + round_index),
                    "normalize": True,
                },
            )
        assert divergent.durable_version == 5
        divergent.close()

        follower = follower_of(primary, copy.deepcopy(fleet_tree), state)
        try:
            assert follower.priors_version == 5  # local replay of the fork
            wait_until(
                lambda: replication_info(follower).get("resets", 0) >= 1
                and follower.priors_version == 1,
                timeout_s=CONVERGE_S,
                message="split-brain reset to the primary's generation",
            )
            rotated = list(state.glob("control.log.split-brain*"))
            assert rotated, "divergent log was not rotated aside"
            info = replication_info(follower)
            assert info["cursor"] == 1
            # The reset itself is durable: a reboot replays the synthetic
            # record instead of the divergent fork.
            log = follower.durability_diagnostics()["control_log"]
            assert log["last_version"] == 1
            # The follower now serves the primary's priors byte-identically.
            assert_identical_forests([primary, follower])
        finally:
            follower.close()

    def test_fingerprint_mismatch_is_fenced(self, primary, fleet_tree, tmp_path):
        """A head built over a different pipeline config must never import
        the primary's records — the subscribe is rejected outright."""
        config = dict(POOL_CONFIG, num_targets=POOL_CONFIG["num_targets"] + 2)
        port = primary._replication_server.port
        stranger = EnginePool(
            copy.deepcopy(fleet_tree),
            ServerConfig(**config),
            state_dir=tmp_path / "stranger",
            num_shards=1,
            replicate_from=f"127.0.0.1:{port}",
        )
        stranger.wait_ready()
        try:
            primary.publish_priors(sample_priors(fleet_tree))
            wait_until(
                lambda: replication_info(stranger).get("rejected", 0) >= 1,
                timeout_s=CONVERGE_S,
                message="mismatched follower to be rejected",
            )
            info = replication_info(stranger)
            assert info["records_applied"] == 0
            assert stranger.priors_version == 0
            assert replication_info(primary)["rejects"] >= 1
        finally:
            stranger.close()


# --------------------------------------------------------------------- #
# HTTP admin surface: replication diagnostics and the follower 400
# --------------------------------------------------------------------- #


def _get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


class TestDurabilityEndpoint:
    def test_roles_reported_and_follower_writes_rejected(
        self, primary, fleet_tree, tmp_path
    ):
        follower = follower_of(primary, copy.deepcopy(fleet_tree), tmp_path / "f")
        try:
            primary.publish_priors(sample_priors(fleet_tree))
            wait_follower_at(follower, 1)
            with CORGIHTTPServer(CORGIService(primary), port=0) as head_a, \
                    CORGIHTTPServer(CORGIService(follower), port=0) as head_b:
                primary_info = _get_json(head_a.url + "/admin/durability")
                assert primary_info["replication"]["role"] == "primary"
                assert primary_info["replication"]["last_version"] == 1
                follower_info = _get_json(head_b.url + "/admin/durability")
                assert follower_info["replication"]["role"] == "follower"
                assert follower_info["replication"]["cursor"] == 1
                assert follower_info["replication"]["lag"] == 0
                # A control write sent to the follower head is a 400, with
                # the primary named in the error body.
                priors = sample_priors(fleet_tree)
                with pytest.raises(urllib.error.HTTPError) as error:
                    _post_json(head_b.url + "/admin/priors", {"priors": priors})
                assert error.value.code == 400
                body = json.loads(error.value.read().decode("utf-8"))
                assert "primary" in body["detail"]
                with pytest.raises(urllib.error.HTTPError) as error:
                    _post_json(head_b.url + "/admin/invalidate", {})
                assert error.value.code == 400
                # The same write against the primary head succeeds.
                _post_json(head_a.url + "/admin/priors", {"priors": priors})
                wait_follower_at(follower, 2)
        finally:
            follower.close()


# --------------------------------------------------------------------- #
# Shared snapshot store: warm-boot a new head from a durable sibling
# --------------------------------------------------------------------- #


class TestSeedStore:
    def test_follower_prewarms_read_only_from_primary_store(
        self, primary, fleet_tree, tmp_path
    ):
        """Acceptance: a same-fingerprint head pointed at a sibling's
        snapshot directory imports those forests at boot and serves them
        as cache hits — without ever writing to the shared directory."""
        primary.publish_priors(sample_priors(fleet_tree, mass=7.0))
        before = forest_matrices(primary.build_forest(0, 0))
        wait_until(
            lambda: (primary.durability_diagnostics()["store"] or {}).get("writes", 0)
            >= 1,
            timeout_s=CONVERGE_S,
            message="write-through persistence of the built key",
        )

        state = tmp_path / "f"
        state.mkdir()
        # Ship the durable log so the new head replays to the primary's
        # generation before its pre-warm captures the pool version.
        shutil.copy2(primary._state_dir / "control.log", state / "control.log")
        follower = follower_of(
            primary,
            copy.deepcopy(fleet_tree),
            state,
            seed_store_dir=primary._state_dir / "snapshots",
        )
        try:
            assert follower.priors_version == 1
            assert follower.wait_prewarmed(timeout_s=CONVERGE_S)
            prewarm = follower.durability_diagnostics()["prewarm"]
            assert (
                prewarm["store_prewarm_imported"] + prewarm["store_prewarm_prewarmed"]
                >= 1
            )
            forest, cached = follower.build_forest_traced(0, 0)
            assert cached, "seeded key cold-built on the follower"
            restored = forest_matrices(forest)
            assert set(restored) == set(before)
            for root_id, values in before.items():
                assert np.array_equal(restored[root_id], values), root_id
            seed = follower.durability_diagnostics()["seed_store"]
            assert seed["read_only"] is True
            assert seed["write_errors"] == 0
            # The follower's own write-through lands in its own store, not
            # the shared seed directory.
            assert seed["writes"] == 0
        finally:
            follower.close()


# --------------------------------------------------------------------- #
# kill -9 the primary mid-burst: the flagship convergence scenario
# --------------------------------------------------------------------- #


def _primary_driver(state_dir, port, total_publishes):
    """Child-process primary: publish a burst, then idle until SIGKILL'd.

    Rebuilds the deterministic 7-leaf test tree (the conftest fixture
    cannot cross the fork) — the fingerprint excludes priors, so followers
    built from the same bare tree and config subscribe cleanly.
    """
    tree = tree_for_point(LatLng(37.77, -122.42), height=1, root_resolution=8)
    pool = EnginePool(
        tree,
        ServerConfig(**POOL_CONFIG),
        state_dir=state_dir,
        num_shards=1,
        replication_port=port,
    )
    pool.wait_ready()
    leaves = sorted(str(leaf.node_id) for leaf in tree.leaves())
    for round_index in range(total_publishes):
        priors = {
            leaf: (2.0 + round_index if position == 0 else 1.0)
            for position, leaf in enumerate(leaves)
        }
        pool.publish_priors(priors, normalize=True)
        time.sleep(0.01)
    time.sleep(CONVERGE_S)  # idle; the parent's SIGKILL is the exit path


class TestPrimaryKillMidBurst:
    def test_followers_converge_on_durable_prefix_and_primary_resumes(
        self, tmp_path
    ):
        """Acceptance: SIGKILL the primary mid-burst.  No follower holds a
        record outside the primary's durable on-disk prefix, and a primary
        rebooted over the same log resumes the sequence with both
        followers converging to it."""
        primary_state = tmp_path / "primary"
        port = free_port()
        context = multiprocessing.get_context("fork")
        driver = context.Process(
            target=_primary_driver,
            args=(primary_state, port, 40),
            daemon=False,
        )
        driver.start()

        tree = tree_for_point(LatLng(37.77, -122.42), height=1, root_resolution=8)
        followers = [
            make_head(
                copy.deepcopy(tree),
                tmp_path / f"follower{i}",
                replicate_from=f"127.0.0.1:{port}",
            )
            for i in range(2)
        ]
        reborn = None
        try:
            wait_until(
                lambda: all(
                    replication_info(f).get("records_applied", 0) >= 5
                    for f in followers
                ),
                timeout_s=CONVERGE_S,
                message="both followers applying mid-burst records",
            )
            driver.kill()  # SIGKILL: no drain, no goodbye, maybe a torn tail
            driver.join(timeout=30)
            assert not driver.is_alive()

            # Store-and-forward invariant: everything a follower holds is
            # within the primary's durable prefix.  (Replaying the log also
            # truncates any torn tail, exactly as the reborn primary will.)
            wal = ControlLog(primary_state / "control.log")
            durable = wal.durable_version
            wal.close()
            assert durable >= 5
            for follower in followers:
                assert follower.priors_version <= durable
                assert replication_info(follower)["cursor"] <= durable

            # Reboot the primary over the same log and port: it replays the
            # durable prefix and the followers reconnect and converge.
            reborn = make_head(
                copy.deepcopy(tree), primary_state, replication_port=port
            )
            assert reborn.priors_version == durable
            for follower in followers:
                wait_follower_at(follower, durable)
                assert replication_info(follower)["resets"] == 0
            # The resumed sequence keeps flowing: one more publish lands on
            # every head.
            reborn.publish_priors(sample_priors(tree, mass=9.0))
            for follower in followers:
                wait_follower_at(follower, durable + 1)
            assert_identical_forests([reborn] + followers)
        finally:
            if reborn is not None:
                reborn.close()
            for follower in followers:
                follower.close()
            if driver.is_alive():
                driver.kill()
                driver.join(timeout=10)
