"""Fig. 12 — impact of pruning locations on Geo-Ind constraint violations.

Paper headline: pruning 7 of 49 locations (14.28 %) causes 3.07 % violated
Geo-Ind constraints for CORGI vs 18.58 % for the non-robust baseline, and
CORGI with a larger delta is more robust.  Absolute percentages depend on the
effective tightness epsilon * cell-spacing (see EXPERIMENTS.md); the shape —
CORGI far below the baseline at every pruning count, monotone in the number
of pruned locations — is what this benchmark asserts.
"""

from repro.experiments.pruning_impact import run_pruning_impact_experiment


def test_fig12_pruning_violations(benchmark, config, workload):
    result = benchmark.pedantic(
        run_pruning_impact_experiment,
        args=(config,),
        kwargs={"workload": workload},
        rounds=1,
        iterations=1,
    )
    result.table.print()
    if result.headline:
        print("\nheadline comparison (7 of 49 locations pruned = 14.28%):")
        for key, value in result.headline.items():
            print(f"  {key}: {value:.2f}")

    # CORGI never violates more than the non-robust baseline.
    assert result.corgi_always_below_nonrobust()
    # The non-robust baseline degrades with the number of pruned locations.
    for (num_locations, label), curve in result.curves.items():
        if label != "non-robust" or len(curve) < 2:
            continue
        counts = sorted(curve)
        assert curve[counts[-1]] >= curve[counts[0]] - 1e-6
    # The headline gap: CORGI's violation percentage is far below the baseline's.
    if result.headline:
        assert result.headline["corgi_violation_pct"] <= 0.5 * result.headline["nonrobust_violation_pct"] + 1e-9
