"""CLI for the trace-replay harness: ``python -m repro.loadgen``.

Runs one scenario (or the whole matrix), prints each
:class:`~repro.loadgen.report.ScenarioReport` as markdown, optionally
streams the live terminal dashboard, and exits non-zero when any declared
SLO is violated — which is exactly what the CI ``scenario-matrix`` job
gates on.

Examples
--------
List the matrix::

    python -m repro.loadgen --list

Replay one scenario with the live dashboard::

    python -m repro.loadgen --scenario flash_crowd --dashboard

Replay everything the way CI does, persisting artifacts::

    python -m repro.loadgen --all --report-dir reports/ \
        --dashboard-snapshot reports/dashboard.txt
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.loadgen.dashboard import DashboardLoop
from repro.loadgen.report import ScenarioReport
from repro.loadgen.scenarios import SCENARIOS, run_scenario, soak_factor

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Replay check-in traces as simulated user fleets against a CORGI "
        "service, with an online Bayesian adversary and per-scenario SLO verdicts.",
    )
    which = parser.add_mutually_exclusive_group()
    which.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to replay (repeatable; default: all of them)",
    )
    which.add_argument("--all", action="store_true", help="replay the full scenario matrix")
    which.add_argument("--list", action="store_true", help="list known scenarios and exit")
    parser.add_argument("--seed", type=int, default=0, help="replay seed (default 0)")
    parser.add_argument(
        "--transport",
        choices=("inprocess", "http", "gateway"),
        default="inprocess",
        help="client transport to replay through (default inprocess)",
    )
    parser.add_argument(
        "--events", type=int, default=None, help="override the scenario's event count"
    )
    parser.add_argument(
        "--soak",
        action="store_true",
        help=f"long-soak variant: scale events and fleet by $SCENARIO_SOAK_FACTOR "
        f"(currently {soak_factor()}x)",
    )
    parser.add_argument(
        "--replay-speed",
        type=float,
        default=None,
        help="pace arrivals at this multiple of trace time (default: as fast as possible)",
    )
    parser.add_argument(
        "--dashboard", action="store_true", help="stream the live terminal dashboard to stderr"
    )
    parser.add_argument(
        "--dashboard-snapshot",
        metavar="PATH",
        default=None,
        help="write the final dashboard frame of the last scenario to PATH",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the (single) scenario's report JSON to PATH",
    )
    parser.add_argument(
        "--report-dir",
        metavar="DIR",
        default=None,
        help="write one <scenario>.json report per scenario into DIR",
    )
    return parser


def _names(args: argparse.Namespace) -> List[str]:
    if args.scenario:
        return list(dict.fromkeys(args.scenario))
    return sorted(SCENARIOS)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:20s} {scenario.title} — {scenario.description}")
        return 0
    names = _names(args)
    if args.report is not None and len(names) > 1:
        print("--report takes a single scenario; use --report-dir for a matrix", file=sys.stderr)
        return 2

    reports: List[ScenarioReport] = []
    dashboard: Optional[DashboardLoop] = None
    for name in names:
        print(f"== replaying scenario {name!r} "
              f"(seed={args.seed}, transport={args.transport}) ==", file=sys.stderr)
        sink = None
        if args.dashboard or args.dashboard_snapshot:
            if not args.dashboard:
                sink = open(os.devnull, "w", encoding="utf-8")
            dashboard = DashboardLoop(sys.stderr if args.dashboard else sink)
        try:
            report = run_scenario(
                name,
                seed=args.seed,
                transport=args.transport,
                soak=args.soak,
                num_events=args.events,
                replay_speed=args.replay_speed,
                on_replayer=dashboard.attach if dashboard is not None else None,
            )
        finally:
            if dashboard is not None:
                dashboard.stop()
            if sink is not None:
                sink.close()
        reports.append(report)
        print(report.to_markdown())
        print()
        if args.report_dir is not None:
            os.makedirs(args.report_dir, exist_ok=True)
            path = os.path.join(args.report_dir, f"{name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            print(f"report written to {path}", file=sys.stderr)

    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(reports[0].to_json() + "\n")
        print(f"report written to {args.report}", file=sys.stderr)
    if args.dashboard_snapshot is not None and dashboard is not None:
        with open(args.dashboard_snapshot, "w", encoding="utf-8") as handle:
            handle.write(dashboard.last_frame + "\n")
        print(f"dashboard snapshot written to {args.dashboard_snapshot}", file=sys.stderr)

    failed = [report for report in reports if not report.passed]
    verdict = "PASS" if not failed else f"FAIL ({len(failed)}/{len(reports)} scenarios violated SLOs)"
    print(f"scenario matrix verdict: {verdict}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
