"""Train/test splitting of check-in datasets.

Section 6.2.3 of the paper splits the Gowalla sample 90/10: the training
portion feeds the prior estimation while the test portion supplies the "real
locations" of users in the quality-loss experiments.  The split here is by
check-in (uniform at random, reproducible through the seed) with an optional
per-user stratification so that every user with enough history appears in
both portions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.datasets.checkin import CheckIn, CheckInDataset
from repro.utils.rng import RandomState, as_rng


def train_test_split_checkins(
    dataset: CheckInDataset,
    test_fraction: float = 0.1,
    *,
    seed: RandomState = 0,
    stratify_by_user: bool = False,
) -> Tuple[CheckInDataset, CheckInDataset]:
    """Split *dataset* into train and test portions.

    Parameters
    ----------
    dataset:
        The full check-in dataset.
    test_fraction:
        Fraction of check-ins assigned to the test portion (paper: 0.1).
    seed:
        Seed or generator controlling the assignment.
    stratify_by_user:
        When true, the split is performed within each user's check-ins so
        every active user contributes to both portions.

    Returns
    -------
    (train, test):
        Two new :class:`CheckInDataset` objects; the input is not modified.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(seed)
    train: List[CheckIn] = []
    test: List[CheckIn] = []
    if stratify_by_user:
        groups: Dict[str, List[CheckIn]] = dataset.by_user()
        for user_id in sorted(groups):
            user_checkins = groups[user_id]
            indices = rng.permutation(len(user_checkins))
            cut = max(1, int(round(test_fraction * len(user_checkins)))) if len(user_checkins) > 1 else 0
            for position, index in enumerate(indices):
                (test if position < cut else train).append(user_checkins[int(index)])
    else:
        indices = rng.permutation(len(dataset))
        cut = int(round(test_fraction * len(dataset)))
        for position, index in enumerate(indices):
            (test if position < cut else train).append(dataset[int(index)])
    return (
        CheckInDataset(train, name=f"{dataset.name}[train]"),
        CheckInDataset(test, name=f"{dataset.name}[test]"),
    )
