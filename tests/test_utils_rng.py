"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import as_rng, choice_from_distribution, spawn_rngs, stable_hash_seed


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_different_seeds_differ(self):
        assert as_rng(1).random() != as_rng(2).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(9)
        rng = as_rng(sequence)
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        a, b = spawn_rngs(3, 2)
        assert a.random() != b.random()

    def test_deterministic_from_int_seed(self):
        first = [rng.random() for rng in spawn_rngs(11, 3)]
        second = [rng.random() for rng in spawn_rngs(11, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2


class TestChoiceFromDistribution:
    def test_degenerate_distribution(self):
        rng = as_rng(0)
        assert choice_from_distribution(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_unnormalised_probabilities_accepted(self):
        rng = as_rng(0)
        result = choice_from_distribution(rng, ["a", "b"], [2.0, 2.0])
        assert result in ("a", "b")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            choice_from_distribution(as_rng(0), ["a"], [0.5, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            choice_from_distribution(as_rng(0), [], [])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            choice_from_distribution(as_rng(0), ["a", "b"], [-0.5, 1.5])

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            choice_from_distribution(as_rng(0), ["a", "b"], [0.0, 0.0])


class TestStableHashSeed:
    def test_deterministic(self):
        assert stable_hash_seed("exp", 1, 2) == stable_hash_seed("exp", 1, 2)

    def test_distinct_inputs_differ(self):
        assert stable_hash_seed("exp", 1) != stable_hash_seed("exp", 2)

    def test_in_63_bit_range(self):
        value = stable_hash_seed("anything", 123456)
        assert 0 <= value < 2**63

    def test_base_seed_changes_result(self):
        assert stable_hash_seed("x", base_seed=1) != stable_hash_seed("x", base_seed=2)

    @given(st.text(max_size=20), st.integers(min_value=0, max_value=10**9))
    def test_always_valid_seed(self, text, number):
        value = stable_hash_seed(text, number)
        assert 0 <= value < 2**63
        # Usable as a numpy seed.
        as_rng(value)
