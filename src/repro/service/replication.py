"""Control-plane replication: one primary's control log, tailed by N heads.

PR 6 made the priors/invalidation control plane a durable write-ahead log
that one head replays on boot (:mod:`repro.service.controllog`).  This
module ships that log across heads, following the store-and-forward
durable-queue design of the MSMQ multi-branch synchronization literature:

* A **primary** head keeps accepting ``publish_priors`` / ``invalidate``
  writes exactly as before — the control log allocates the version and
  commits the record with write+fsync.  A :class:`ReplicationServer`
  attached to that log streams every *durable* record to subscribed
  followers over the same CRGF frame codec the netshard transport uses
  (length-prefixed JSON, heartbeat liveness; see
  :mod:`repro.service.netshard`).
* A **follower** head (:class:`ReplicationClient`, owned by its
  :class:`~repro.service.pool.EnginePool`) dials the primary with bounded
  decorrelated-jitter backoff, subscribes from its durable cursor, and for
  each received record runs the store-and-forward commit order: append the
  record *verbatim* (primary's version) to the local control log first,
  apply it to the pool second, advance the fsync'd cursor file third.  A
  crash between receive and apply therefore converges on the follower's
  own boot-time replay — the record is already local — and a crash between
  apply and cursor write merely re-receives records the version check
  then skips.
* **Conflict resolution is by version** — the PR 5 split-brain rule, now
  log-driven: a follower whose replayed version exceeds the primary's
  durable head subscribed into a generation that never happened.  The
  primary answers with a ``reset`` frame carrying its authoritative priors
  and version; the follower rotates its divergent log aside
  (``control.log.split-brain``), adopts the primary's state, and resumes
  tailing from there.

Wire protocol (one JSON object per CRGF frame):

====================  =============================================== =====
frame                 fields                                          from
====================  =============================================== =====
``subscribe``         ``cursor`` (int), ``fingerprint`` (str)         follower
``sub_ack``           ``last_version`` (int)                          primary
``sub_reject``        ``reason`` (str)                                primary
``reset``             ``last_version``, ``priors``, ``normalize``     primary
``record``            ``record`` (one control-log record)             primary
``ack``               ``version`` (int, follower's applied cursor)    follower
``heartbeat``         —                                               both
``bye``               —                                               follower
====================  =============================================== =====

Only heads of the same pipeline fingerprint may pair up (the same
namespace rule the snapshot store enforces on disk); a mismatched
``subscribe`` is rejected, never half-applied.  Replication lag — the
primary's durable head minus each follower's acked cursor — surfaces in
``GET /admin/durability`` on both sides.
"""

from __future__ import annotations

import json
import logging
import os
import queue as queue_module
import select
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.exceptions import CORGIError
from repro.service.controllog import ControlLog
from repro.service.netshard import (
    CLIENT_IDLE_TIMEOUT_S,
    HEARTBEAT_INTERVAL_S,
    LIVENESS_TIMEOUT_S,
    FrameAssembler,
    FrameFormatError,
    encode_frame,
    next_backoff_delay,
)

__all__ = [
    "REPLICATION_SEND_QUEUE",
    "ReplicationClient",
    "ReplicationError",
    "ReplicationRoleError",
    "ReplicationServer",
    "parse_replication_source",
    "read_cursor",
    "write_cursor",
]

logger = logging.getLogger(__name__)

#: Outbound frames buffered per follower connection before the primary
#: evicts it as too slow (it will redial and re-subscribe from its cursor,
#: so eviction loses liveness, never records).
REPLICATION_SEND_QUEUE = 512

#: Socket read chunk for both sides' reader loops.
_READ_CHUNK = 64 << 10

#: Poll granularity of the select loops (also bounds shutdown latency).
_POLL_INTERVAL_S = 0.1

#: Name of a follower's durable cursor file inside its state directory.
CURSOR_FILENAME = "replication.cursor"


class ReplicationError(CORGIError, RuntimeError):
    """Replication-layer fault (connection, protocol, or role misuse)."""


class ReplicationRoleError(ReplicationError, ValueError):
    """A control write landed on a follower head.

    Followers converge on the primary's log; accepting a local
    ``publish_priors`` / ``invalidate`` would fork the version sequence —
    exactly the split-brain this layer exists to prevent.  Subclasses
    :class:`ValueError` so HTTP transports map it to the 400 class.
    """


# --------------------------------------------------------------------- #
# Durable per-source cursor
# --------------------------------------------------------------------- #


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_cursor(path: os.PathLike, source: str, version: int) -> bool:
    """Atomically persist a follower's applied cursor (tmp+fsync+rename).

    Never raises: a cursor that cannot be written degrades to re-receiving
    records the version check will skip, which is exactly the store-and-
    forward contract.
    """
    path = Path(path)
    payload = json.dumps({"source": str(source), "version": int(version)}, sort_keys=True)
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
        return True
    except OSError as error:
        logger.warning("replication cursor write to %s failed: %s", path, error)
        try:
            tmp.unlink()
        except OSError:
            pass
        return False


def read_cursor(path: os.PathLike, source: str) -> int:
    """The durably recorded applied version for ``source`` (0 if none).

    A cursor written against a *different* source is ignored — the version
    sequence is per-primary, and resuming another primary's offsets would
    silently skip records.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return 0
    if not isinstance(payload, dict) or payload.get("source") != str(source):
        return 0
    version = payload.get("version")
    if isinstance(version, int) and not isinstance(version, bool) and version >= 0:
        return version
    return 0


# --------------------------------------------------------------------- #
# Primary side: stream the durable log to subscribed followers
# --------------------------------------------------------------------- #


class _FollowerConn:
    """One accepted follower connection (reader + writer thread pair)."""

    def __init__(self, conn_id: int, sock: socket.socket, peer: str) -> None:
        self.conn_id = conn_id
        self.sock = sock
        self.peer = peer
        self.outbox: "queue_module.Queue[Optional[Dict[str, object]]]" = queue_module.Queue(
            maxsize=REPLICATION_SEND_QUEUE
        )
        # Serializes socket writes between the writer thread and the rare
        # synchronous send (the pre-drop ``sub_reject``) so frames never
        # interleave mid-stream.
        self.write_lock = threading.Lock()
        self.subscribed = False  # dispatcher-owned: only it flips/reads this
        self.cursor = 0
        self.acked = 0
        self.alive = True

    def send(self, message: Dict[str, object]) -> bool:
        """Enqueue one frame; False when the follower is too slow (evict)."""
        if not self.alive:
            return False
        try:
            self.outbox.put_nowait(message)
            return True
        except queue_module.Full:
            return False

    def shutdown(self) -> None:
        self.alive = False
        try:
            self.outbox.put_nowait(None)
        except queue_module.Full:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class ReplicationServer:
    """Primary-side log shipper: accept followers, stream durable records.

    Single-writer by construction: one *dispatcher* thread owns all record
    sends, reading the log's durable sequence through a commit-order index
    — so followers observe records in exactly the order they became
    durable, regardless of which serving thread appended them.  Per-
    connection reader threads only handle heartbeats, subscribes and acks;
    per-connection writer threads drain a bounded outbox (a follower that
    cannot keep up is evicted and redials from its cursor).
    """

    def __init__(
        self,
        log: ControlLog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        fingerprint: str = "",
        state_provider: Optional[Callable[[], Tuple[Dict[str, float], bool]]] = None,
        client_idle_timeout_s: float = CLIENT_IDLE_TIMEOUT_S,
    ) -> None:
        self.log = log
        self.fingerprint = str(fingerprint)
        self._state_provider = state_provider
        self._client_idle_timeout_s = float(client_idle_timeout_s)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._conns: Dict[int, _FollowerConn] = {}
        self._next_conn_id = 0
        self._pending_subscribes: Deque[Tuple[int, int, str]] = deque()
        self._dispatched = 0  # commit-order index into the log's durable records
        self._counters = {
            "connections_accepted": 0,
            "subscribes": 0,
            "rejects": 0,
            "resets": 0,
            "records_streamed": 0,
            "evictions": 0,
            "protocol_errors": 0,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        # The log listener is only a wake-up — ordering comes from reading
        # the durable sequence, never from callback arrival order.
        self.log.add_listener(self._on_append)
        self._threads: List[threading.Thread] = []
        self._start_thread(self._accept_loop, "corgi-repl-accept")
        self._start_thread(self._dispatch_loop, "corgi-repl-dispatch")
        logger.info("replication primary listening on %s:%d", self.host, self.port)

    def _start_thread(self, target: Callable[[], None], name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def _on_append(self, record: Dict[str, object]) -> None:
        with self._wake:
            self._wake.notify_all()

    # -- accept / per-connection loops --------------------------------- #

    def _accept_loop(self) -> None:
        while True:
            try:
                readable, _, _ = select.select([self._listener], [], [], _POLL_INTERVAL_S)
            except (OSError, ValueError):
                return  # listener closed
            if self._closed:
                return
            if not readable:
                continue
            try:
                sock, address = self._listener.accept()
            except OSError:
                continue
            sock.setblocking(True)
            peer = f"{address[0]}:{address[1]}"
            with self._lock:
                if self._closed:
                    sock.close()
                    return
                conn = _FollowerConn(self._next_conn_id, sock, peer)
                self._next_conn_id += 1
                self._conns[conn.conn_id] = conn
                self._counters["connections_accepted"] += 1
            threading.Thread(
                target=self._reader_loop, args=(conn,),
                name=f"corgi-repl-reader-{conn.conn_id}", daemon=True,
            ).start()
            threading.Thread(
                target=self._writer_loop, args=(conn,),
                name=f"corgi-repl-writer-{conn.conn_id}", daemon=True,
            ).start()

    def _reader_loop(self, conn: _FollowerConn) -> None:
        assembler = FrameAssembler()
        last_activity = time.monotonic()
        try:
            while conn.alive and not self._closed:
                try:
                    readable, _, _ = select.select([conn.sock], [], [], _POLL_INTERVAL_S)
                except (OSError, ValueError):
                    break
                if not readable:
                    if time.monotonic() - last_activity > self._client_idle_timeout_s:
                        logger.info("replication follower %s idle; dropping", conn.peer)
                        break
                    continue
                try:
                    data = conn.sock.recv(_READ_CHUNK)
                except OSError:
                    break
                if not data:
                    break
                last_activity = time.monotonic()
                try:
                    assembler.feed(data)
                    while True:
                        message = assembler.next_message()
                        if message is None:
                            break
                        self._dispatch_message(conn, message)
                except FrameFormatError as error:
                    self._bump("protocol_errors")
                    logger.warning(
                        "replication follower %s sent garbage (%s); dropping", conn.peer, error
                    )
                    break
        finally:
            self._drop_conn(conn)

    def _dispatch_message(self, conn: _FollowerConn, message: Dict[str, object]) -> None:
        kind = message.get("kind")
        if kind == "heartbeat":
            conn.send({"kind": "heartbeat"})
        elif kind == "subscribe":
            cursor = message.get("cursor", 0)
            if not isinstance(cursor, int) or isinstance(cursor, bool) or cursor < 0:
                cursor = 0
            fingerprint = str(message.get("fingerprint", ""))
            with self._wake:
                self._pending_subscribes.append((conn.conn_id, cursor, fingerprint))
                self._wake.notify_all()
        elif kind == "ack":
            version = message.get("version")
            if isinstance(version, int) and not isinstance(version, bool):
                conn.acked = max(conn.acked, version)
        elif kind == "bye":
            conn.alive = False
        else:
            self._bump("protocol_errors")

    def _writer_loop(self, conn: _FollowerConn) -> None:
        while True:
            message = conn.outbox.get()
            if message is None:
                return
            try:
                with conn.write_lock:
                    conn.sock.sendall(encode_frame(message))
            except OSError:
                conn.alive = False
                return

    def _drop_conn(self, conn: _FollowerConn) -> None:
        with self._lock:
            self._conns.pop(conn.conn_id, None)
        conn.shutdown()

    # -- dispatcher: the single ordered record writer ------------------- #

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while (
                    not self._closed
                    and not self._pending_subscribes
                    and not self.log.records_after_index(self._dispatched)
                ):
                    self._wake.wait(timeout=_POLL_INTERVAL_S * 5)
                if self._closed:
                    return
                subscribes = list(self._pending_subscribes)
                self._pending_subscribes.clear()
            for conn_id, cursor, fingerprint in subscribes:
                self._handle_subscribe(conn_id, cursor, fingerprint)
            batch = self.log.records_after_index(self._dispatched)
            self._dispatched += len(batch)
            if not batch:
                continue
            with self._lock:
                conns = [c for c in self._conns.values() if c.subscribed]
            for record in batch:
                for conn in conns:
                    self._stream(conn, {"kind": "record", "record": record})

    def _stream(self, conn: _FollowerConn, message: Dict[str, object]) -> None:
        if not conn.send(message):
            self._bump("evictions")
            logger.warning(
                "replication follower %s cannot keep up (%d frames queued); evicting",
                conn.peer,
                REPLICATION_SEND_QUEUE,
            )
            self._drop_conn(conn)
        elif message.get("kind") == "record":
            self._bump("records_streamed")

    def _handle_subscribe(self, conn_id: int, cursor: int, fingerprint: str) -> None:
        with self._lock:
            conn = self._conns.get(conn_id)
        if conn is None or not conn.alive:
            return
        if fingerprint != self.fingerprint:
            self._bump("rejects")
            logger.warning(
                "replication follower %s subscribed with fingerprint %r "
                "(this primary serves %r); rejecting",
                conn.peer,
                fingerprint[:16],
                self.fingerprint[:16],
            )
            # Synchronous send: shutdown() closes the socket immediately, so
            # an outbox-queued reject would race the writer thread and the
            # follower would see a bare EOF instead of the typed refusal.
            try:
                with conn.write_lock:
                    conn.sock.sendall(
                        encode_frame(
                            {
                                "kind": "sub_reject",
                                "reason": "pipeline fingerprint mismatch",
                            }
                        )
                    )
            except OSError:
                pass
            self._drop_conn(conn)
            return
        self._bump("subscribes")
        conn.cursor = cursor
        durable = self.log.durable_version
        if cursor > durable:
            # Split-brain, log-driven: the follower replayed a generation
            # this primary never committed.  Ship the authoritative state
            # so it can reset defensively (the PR 5 rule).
            self._bump("resets")
            priors: Optional[Dict[str, float]] = None
            normalize = False
            if self._state_provider is not None:
                try:
                    priors, normalize = self._state_provider()
                except Exception:  # noqa: BLE001 - a reset without priors still resets
                    logger.exception("replication state provider failed during reset")
            self._stream(
                conn,
                {
                    "kind": "reset",
                    "last_version": durable,
                    "priors": priors,
                    "normalize": bool(normalize),
                },
            )
        else:
            self._stream(conn, {"kind": "sub_ack", "last_version": durable})
            for record in self.log.records_since(cursor):
                self._stream(conn, {"kind": "record", "record": record})
        # Live records flow from here on; any overlap with the backlog is
        # version-deduplicated on the follower.
        conn.subscribed = True

    # -- lifecycle / diagnostics --------------------------------------- #

    def diagnostics(self) -> Dict[str, object]:
        durable = self.log.durable_version
        with self._lock:
            followers = [
                {
                    "peer": conn.peer,
                    "subscribed": conn.subscribed,
                    "cursor": conn.cursor,
                    "acked_version": conn.acked,
                    "lag": max(0, durable - conn.acked),
                }
                for conn in self._conns.values()
            ]
            counters = dict(self._counters)
        return {
            "role": "primary",
            "address": f"{self.host}:{self.port}",
            "fingerprint": self.fingerprint[:16],
            "last_version": durable,
            "followers": followers,
            **counters,
        }

    def close(self) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns.values())
            self._conns.clear()
            self._wake.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in conns:
            conn.shutdown()
        for thread in self._threads:
            thread.join(timeout=2.0)


# --------------------------------------------------------------------- #
# Follower side: tail the primary, commit locally, then apply
# --------------------------------------------------------------------- #


class ReplicationClient:
    """Follower-side tailer owned by an :class:`EnginePool`.

    Runs one daemon session thread: dial the primary (decorrelated-jitter
    backoff between attempts), subscribe from the durable cursor, then for
    every received record run commit-before-apply: local log append
    (primary's version, verbatim), pool apply, fsync'd cursor advance,
    ack.  The pool half of the contract lives in
    ``EnginePool.apply_replicated_control`` and
    ``EnginePool.reset_for_replication``.
    """

    def __init__(
        self,
        pool,
        address: Tuple[str, int],
        *,
        state_dir: os.PathLike,
        fingerprint: str = "",
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        liveness_timeout_s: float = LIVENESS_TIMEOUT_S,
        connect_timeout_s: float = 5.0,
    ) -> None:
        self._pool = pool
        self.address = (str(address[0]), int(address[1]))
        self.source = f"{self.address[0]}:{self.address[1]}"
        self.fingerprint = str(fingerprint)
        self._heartbeat_interval_s = float(heartbeat_interval_s)
        self._liveness_timeout_s = float(liveness_timeout_s)
        self._connect_timeout_s = float(connect_timeout_s)
        self._cursor_path = Path(state_dir) / CURSOR_FILENAME
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._connected = False
        # Resume point: everything up to the local log's durable head was
        # applied by the pool's own boot replay; the cursor file covers the
        # crashed-between-apply-and-ack window (both are safe to resume
        # from — re-received records are version-skipped).
        log = getattr(pool, "_control_log", None)
        log_version = log.durable_version if log is not None else 0
        self._applied = max(read_cursor(self._cursor_path, self.source), log_version)
        self._primary_version = 0
        self._counters = {
            "records_applied": 0,
            "records_skipped": 0,
            "apply_errors": 0,
            "local_commit_errors": 0,
            "resets": 0,
            "reconnects": 0,
            "rejected": 0,
        }
        self._thread = threading.Thread(
            target=self._session_loop, name="corgi-repl-follower", daemon=True
        )
        self._thread.start()

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    @property
    def applied_version(self) -> int:
        with self._lock:
            return self._applied

    # -- session ------------------------------------------------------- #

    def _session_loop(self) -> None:
        delay = 0.0
        while not self._closed.is_set():
            try:
                sock = socket.create_connection(self.address, timeout=self._connect_timeout_s)
            except OSError:
                delay = next_backoff_delay(delay)
                self._closed.wait(delay)
                continue
            sock.setblocking(True)
            with self._lock:
                if self._closed.is_set():
                    sock.close()
                    return
                self._sock = sock
                self._connected = True
            delay = 0.0
            try:
                self._run_session(sock)
            except OSError:
                pass
            finally:
                with self._lock:
                    self._connected = False
                    self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass
            if not self._closed.is_set():
                self._bump("reconnects")
                delay = next_backoff_delay(delay)
                self._closed.wait(delay)

    def _send(self, sock: socket.socket, message: Dict[str, object]) -> None:
        with self._send_lock:
            sock.sendall(encode_frame(message))

    def _run_session(self, sock: socket.socket) -> None:
        with self._lock:
            cursor = self._applied
        self._send(sock, {"kind": "subscribe", "cursor": cursor, "fingerprint": self.fingerprint})
        assembler = FrameAssembler()
        last_frame = time.monotonic()
        last_heartbeat = 0.0
        while not self._closed.is_set():
            now = time.monotonic()
            if now - last_heartbeat >= self._heartbeat_interval_s:
                self._send(sock, {"kind": "heartbeat"})
                last_heartbeat = now
            if now - last_frame > self._liveness_timeout_s:
                logger.warning(
                    "replication primary %s silent for %.2f s; redialing",
                    self.source,
                    now - last_frame,
                )
                return
            try:
                readable, _, _ = select.select([sock], [], [], _POLL_INTERVAL_S)
            except (OSError, ValueError):
                return
            if not readable:
                continue
            data = sock.recv(_READ_CHUNK)
            if not data:
                return
            last_frame = time.monotonic()
            try:
                assembler.feed(data)
                while True:
                    message = assembler.next_message()
                    if message is None:
                        break
                    if not self._handle_message(sock, message):
                        return
            except FrameFormatError as error:
                logger.warning(
                    "replication primary %s sent a malformed frame (%s); redialing",
                    self.source,
                    error,
                )
                return

    def _handle_message(self, sock: socket.socket, message: Dict[str, object]) -> bool:
        kind = message.get("kind")
        if kind == "heartbeat":
            return True
        if kind == "sub_ack":
            version = message.get("last_version")
            if isinstance(version, int) and not isinstance(version, bool):
                with self._lock:
                    self._primary_version = max(self._primary_version, version)
            return True
        if kind == "sub_reject":
            self._bump("rejected")
            logger.error(
                "replication primary %s rejected subscription: %s",
                self.source,
                message.get("reason"),
            )
            return False
        if kind == "reset":
            return self._handle_reset(sock, message)
        if kind == "record":
            return self._handle_record(sock, message.get("record"))
        logger.warning("replication primary %s sent unknown frame %r", self.source, kind)
        return True

    def _handle_reset(self, sock: socket.socket, message: Dict[str, object]) -> bool:
        version = message.get("last_version")
        if not isinstance(version, int) or isinstance(version, bool) or version < 0:
            return False
        self._bump("resets")
        logger.warning(
            "replication: this head replayed v%d but primary %s is at v%d — "
            "divergent generation never happened; resetting defensively",
            self._applied,
            self.source,
            version,
        )
        try:
            self._pool.reset_for_replication(
                version, message.get("priors"), bool(message.get("normalize", False))
            )
        except Exception:  # noqa: BLE001 - a failed reset must not kill the tailer
            self._bump("apply_errors")
            logger.exception("replication reset failed; will retry on reconnect")
            return False
        with self._lock:
            self._applied = version
            self._primary_version = max(self._primary_version, version)
        write_cursor(self._cursor_path, self.source, version)
        self._send(sock, {"kind": "ack", "version": version})
        return True

    def _handle_record(self, sock: socket.socket, record: object) -> bool:
        if not isinstance(record, dict):
            return True
        version = record.get("version")
        if not isinstance(version, int) or isinstance(version, bool) or version <= 0:
            return True
        with self._lock:
            self._primary_version = max(self._primary_version, version)
            applied = self._applied
        if version <= applied:
            self._bump("records_skipped")
            return True
        # Store-and-forward: commit the record locally *before* applying it,
        # so a crash mid-apply converges on this head's own boot replay.
        log = getattr(self._pool, "_control_log", None)
        if log is not None:
            try:
                if not log.append_replicated(record):
                    self._bump("local_commit_errors")
            except Exception:  # noqa: BLE001 - a bad record is skipped, not fatal
                self._bump("local_commit_errors")
                logger.exception("replicated record v%d failed local commit", version)
        try:
            self._pool.apply_replicated_control(record)
        except Exception:  # noqa: BLE001 - surfaced in diagnostics, replayed on reboot
            self._bump("apply_errors")
            logger.exception("replicated record v%d failed to apply", version)
        with self._lock:
            self._applied = version
        self._bump("records_applied")
        write_cursor(self._cursor_path, self.source, version)
        self._send(sock, {"kind": "ack", "version": version})
        return True

    # -- lifecycle / diagnostics --------------------------------------- #

    def diagnostics(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            applied = self._applied
            primary = self._primary_version
            connected = self._connected
        return {
            "role": "follower",
            "source": self.source,
            "fingerprint": self.fingerprint[:16],
            "connected": connected,
            "cursor": applied,
            "primary_version": primary,
            "lag": max(0, primary - applied),
            **counters,
        }

    def close(self) -> None:
        self._closed.set()
        with self._lock:
            sock = self._sock
        if sock is not None:
            try:
                self._send(sock, {"kind": "bye"})
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._thread.join(timeout=2.0)


def parse_replication_source(text: str) -> Tuple[str, int]:
    """Parse a single ``host:port`` replication source (strict, typed)."""
    value = str(text).strip()
    host, _, port_text = value.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"replication source must be host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as error:
        raise ValueError(f"replication source port invalid in {text!r}") from error
    if not 0 < port < 65536:
        raise ValueError(f"replication source port out of range in {text!r}")
    return host, port
