"""Sharded multi-process engine pool behind the CORGI service API.

PR 2 made serving thread-safe in one process; this module makes it scale
with cores and survive worker death.  An :class:`EnginePool` hosts N shard
processes (see :mod:`repro.service.shard`), each running its own
:class:`~repro.server.engine.ForestEngine` replica over the same tree and
config, and exposes the exact forest-provider surface a
:class:`~repro.service.service.CORGIService` expects — so the whole
engine → service → transport stack gains process parallelism without any
caller changing.

Routing is a **consistent-hash ring** over the normalized request key
``(privacy_level, δ, effective ε)``: identical requests always land on the
same shard, so the service's single-flight coalescing keeps collapsing a
burst of identical requests into one build *on one process*, while distinct
keys spread across shards and run truly in parallel.  The ring also defines
each key's failover order — when a shard dies mid-request, the pool fails
the in-flight tickets, retries them on the next live shard along the ring,
and respawns the dead slot in the background (up to ``respawn_limit`` times
per slot).  Worker death is detected by per-shard collector threads that
poll ``Process.is_alive()`` whenever the response queue goes quiet.

Cache lifecycle is a broadcast concern: :meth:`EnginePool.invalidate` and
:meth:`EnginePool.publish_priors` fan out to every shard so a live prior
update flushes all replicas' caches at once (exposed on the wire as
``POST /admin/priors`` / ``POST /admin/invalidate``).

Shards also retire *warm*: :meth:`EnginePool.drain` runs the graceful
hand-off protocol (stop new assignments, flush in-flight work, ship the
shard's live cache to its ring siblings as a versioned snapshot — see
:mod:`repro.service.handoff` — then retire the worker), and on SIGKILL the
crash handler replays the slot's hot-key ledger to the siblings so even an
unplanned failover pre-warms instead of cold-building.  :meth:`respawn`
revives a drained slot and :meth:`rebalance` re-homes cached keys after
the topology settles.

Shards need not live on this host: ``remote_shards`` adds ring slots that
speak the same op vocabulary over TCP (:mod:`repro.service.netshard`) —
consistent-hash routing, failover, drain and warm hand-off all work across
the socket, so a pool can mix worker processes on this machine with
replicas on other machines behind one service.

With ``state_dir`` set, the pool gains a **durable state tier**: control
events (``publish_priors`` / ``invalidate``) are committed to a crash-safe
write-ahead log (:mod:`repro.service.controllog`) before they are applied,
and every built forest is persisted to a compressed snapshot store
(:mod:`repro.service.store`) by a background thread.  A fresh pool booted
over the same directory replays the log — recovering the authoritative
priors generation from disk instead of resetting replicas defensively —
and pre-warms its shards (local *and* remote) from the store, so even a
full-fleet kill -9 restarts warm.  Every durability failure (torn log
tail, corrupt snapshot, disk full) degrades to cold rebuild with typed
diagnostics; none can crash a boot or serve a stale priors generation
(stored payloads are version-checked at import exactly like hand-offs).

The durable control plane also replicates (:mod:`repro.service
.replication`): a head started with ``replication_port`` becomes the
*primary*, streaming every durable control-log record to follower heads
started with ``replicate_from="host:port"``.  Followers commit each
record verbatim to their own log before applying it (store-and-forward),
keep an fsync'd per-source cursor for crash-safe resume, refuse local
control writes (:class:`~repro.service.replication.ReplicationRoleError`),
and reset defensively when their replayed version exceeds the primary's
durable head.  ``seed_store_dir`` additionally lets a follower pre-warm
read-only from another head's snapshot store when both share a pipeline
fingerprint.  Replication lag, cursors and applied counters ride in
:meth:`durability_diagnostics` (``GET /admin/durability``).

Determinism: every shard runs the same serial engine code path, so pooled
forests are byte-identical to single-process ones for every shard count —
local, remote or mixed.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import CORGIError
from repro.core.objective import TargetDistribution
from repro.server.engine import ServerConfig, validate_prior_masses
from repro.server.privacy_forest import PrivacyForest
from repro.service.controllog import ControlLog
from repro.service.handoff import (
    CacheSnapshot,
    SnapshotEntry,
    SnapshotFormatError,
    decode_snapshot,
    encode_snapshot,
)
from repro.service.netshard import NetShardHandle, parse_shard_hosts
from repro.service.replication import (
    ReplicationClient,
    ReplicationRoleError,
    ReplicationServer,
    parse_replication_source,
)
from repro.service.store import SnapshotStore, pipeline_store_fingerprint
from repro.service.shard import (
    CONTROL_TICKET,
    ShardCrashedError,
    ShardHandle,
    ShardSpec,
    ShardState,
    ShardUnavailableError,
    shard_worker_main,
)
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "EnginePool",
    "EnginePoolError",
    "PoolTimeoutError",
    "ShardCrashedError",
    "ShardState",
    "build_ring",
    "ring_failover_order",
]

#: Virtual nodes per shard on the consistent-hash ring.  Plenty for even
#: spread at the shard counts a single host runs (2–64).
RING_VNODES = 32

#: How often collector threads poll ``Process.is_alive()`` while their
#: response queue is silent — the worst-case crash-detection latency.
HEALTH_POLL_INTERVAL_S = 0.1

#: Default cumulative size budget for snapshot payloads in one hand-off
#: (matrix bytes).  Entries past the budget ship key-only and the sibling
#: pre-warms them by rebuilding.
HANDOFF_PAYLOAD_BUDGET_BYTES = 8 << 20

#: Most-recently-used request keys remembered per shard slot — the ledger
#: the pool replays to ring siblings when the slot dies without a drain.
HOT_KEY_LEDGER_SIZE = 128

#: Bound on the write-through persistence queue feeding the snapshot
#: store.  A full queue drops the write (counted) rather than ever
#: back-pressuring the request path.
PERSIST_QUEUE_SIZE = 256

#: Terminal (or respawn-gated) states a collector thread treats as "this
#: generation is over"; DRAINED is reached by an orderly drain, not a crash.
_COLLECTOR_TERMINAL_STATES = (ShardState.STOPPED, ShardState.DEAD, ShardState.DRAINED)


class EnginePoolError(CORGIError):
    """The pool cannot serve the request (every shard dead, pool closed…)."""


class PoolTimeoutError(EnginePoolError):
    """A shard did not answer within ``request_timeout_s``."""


def _normalize_remote_addresses(
    remote_shards: Optional[Sequence[object]],
) -> List[Tuple[str, int]]:
    """Coerce remote slot specs (strings or (host, port) pairs) to addresses."""
    addresses: List[Tuple[str, int]] = []
    for spec in remote_shards or ():
        if isinstance(spec, str):
            addresses.extend(parse_shard_hosts(spec))
        else:
            host, port = spec  # type: ignore[misc]
            addresses.append((str(host), int(port)))
    return addresses


def _stable_hash(token: str) -> int:
    """64-bit stable hash (process-independent, unlike builtin ``hash``)."""
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


def build_ring(num_shards: int, vnodes: int = RING_VNODES) -> List[Tuple[int, int]]:
    """The consistent-hash ring for *num_shards* slots (pure, deterministic).

    Module-level (rather than pool-internal) so routing properties — ring
    order is a permutation of the slots, ownership after any drain sequence
    is unique — can be property-tested without spawning worker processes.
    """
    points = [
        (_stable_hash(f"corgi-shard-{slot}-vnode-{vnode}"), slot)
        for slot in range(num_shards)
        for vnode in range(vnodes)
    ]
    points.sort()
    return points


def ring_failover_order(
    ring: List[Tuple[int, int]], key: Tuple[int, int, float], num_shards: int
) -> List[int]:
    """Every slot in the key's ring-walk order (home shard first).

    Deterministic across processes and runs, and always a permutation of
    ``range(num_shards)`` — so for any non-empty set of live slots, the
    first live slot along the order exists and is unique: every key is
    owned by exactly one live shard, whatever was drained or died.
    """
    privacy_level, delta, epsilon = key
    point = _stable_hash(f"{int(privacy_level)}:{int(delta)}:{float(epsilon)!r}")
    start = bisect.bisect_right(ring, (point, num_shards))
    order: List[int] = []
    seen = set()
    for index in range(len(ring)):
        _, slot = ring[(start + index) % len(ring)]
        if slot not in seen:
            seen.add(slot)
            order.append(slot)
            if len(order) == num_shards:
                break
    return order


class EnginePool:
    """N forest-engine replicas in worker processes behind one provider API.

    Parameters
    ----------
    tree:
        The location tree to serve.  The parent keeps its own handle (for
        request normalization and reattaching returned matrices); each
        worker receives a pickled replica at spawn.
    config:
        Engine configuration, shared by every shard (snapshot — mutating
        the caller's object afterwards is inert, exactly like
        :class:`~repro.server.engine.ForestEngine`).  ``max_workers`` is
        forced to 1 inside shards: the shards are the parallelism.
    targets:
        Optional explicit service-target distribution, forwarded verbatim.
    num_shards:
        *Local* worker-process count.  Sized to cores for CPU-bound LP
        work; may be 0 when ``remote_shards`` is non-empty (a purely
        remote pool).
    remote_shards:
        Socket shard addresses — ``"host:port"`` strings (comma-joined
        accepted) or ``(host, port)`` pairs.  Each address becomes one
        ring slot served by a :class:`~repro.service.netshard.NetShardHandle`
        dialing a ``python -m repro.service.netshard`` server; local and
        remote slots are indistinguishable to routing, failover and drain.
        The remote servers must be built over the same tree and engine
        config as this pool (the replica contract).
    respawn_limit:
        How many times one slot may be respawned after a crash before it is
        declared permanently dead.
    request_timeout_s:
        Upper bound on one request's wait, including failover retries.
    chaos_build_delay_s:
        Test/chaos hook: every shard sleeps this long before each build,
        widening the in-flight window so crash injection is deterministic.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    handoff_payload_budget:
        Cumulative byte budget for forest payloads in one hand-off
        snapshot; entries past it ship key-only and the receiving sibling
        pre-warms them by rebuilding.
    warm_recovery:
        Replay a crashed shard's hot-key ledger to its ring siblings
        (post-crash warm failover).  On by default; benchmarks disable it
        to measure the cold-failover baseline.
    heartbeat_interval_s / liveness_timeout_s / connect_timeout_s:
        Remote-slot liveness knobs (ignored for local slots): how often a
        socket shard is pinged, how long silence means death (the
        socket-transport analogue of ``Process.is_alive`` polling), and
        the per-redial budget of the bounded reconnect backoff.
    state_dir:
        Directory for the durable state tier (``None`` = RAM-only, the
        previous behaviour).  Holds the crash-safe control log
        (``control.log``) replayed on boot and the compressed snapshot
        store (``snapshots/``) that pre-warms booting shards.  The
        directory is created if missing; any failure to open or replay it
        is logged, surfaced in :meth:`durability_diagnostics`, and the
        pool boots cold — durability problems never block serving.

    The pool satisfies the forest-provider duck type
    (``generate_privacy_forest`` / ``build_forest_traced`` / ``tree`` /
    ``config`` / ``publish_leaf_priors`` / ``cache_diagnostics``), so both
    ``CORGIService(EnginePool(...))`` and ``CORGIClient(tree,
    EnginePool(...))`` work unchanged.
    """

    def __init__(
        self,
        tree: LocationTree,
        config: Optional[ServerConfig] = None,
        *,
        targets: Optional[TargetDistribution] = None,
        num_shards: int = 2,
        remote_shards: Optional[Sequence[object]] = None,
        respawn_limit: int = 3,
        request_timeout_s: float = 600.0,
        chaos_build_delay_s: float = 0.0,
        start_method: Optional[str] = None,
        handoff_payload_budget: int = HANDOFF_PAYLOAD_BUDGET_BYTES,
        warm_recovery: bool = True,
        heartbeat_interval_s: float = 0.25,
        liveness_timeout_s: float = 1.0,
        connect_timeout_s: float = 5.0,
        state_dir: Optional[os.PathLike] = None,
        replication_port: Optional[int] = None,
        replication_host: str = "127.0.0.1",
        replicate_from: Optional[str] = None,
        seed_store_dir: Optional[os.PathLike] = None,
    ) -> None:
        addresses = _normalize_remote_addresses(remote_shards)
        if num_shards < 0 or (num_shards < 1 and not addresses):
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replication_port is not None and replicate_from is not None:
            raise ValueError(
                "a head is either a replication primary (replication_port) or a "
                "follower (replicate_from), never both — multi-primary is not "
                "supported"
            )
        if (replication_port is not None or replicate_from is not None) and state_dir is None:
            raise ValueError(
                "replication requires state_dir: the primary streams its durable "
                "control log and a follower keeps its cursor beside its own"
            )
        # Parse before any worker spawns so a malformed address cannot leak
        # half-started shard processes out of a raising constructor.
        replication_source = (
            None if replicate_from is None else parse_replication_source(replicate_from)
        )
        if respawn_limit < 0:
            raise ValueError(f"respawn_limit must be non-negative, got {respawn_limit}")
        if handoff_payload_budget < 0:
            raise ValueError(
                f"handoff_payload_budget must be non-negative, got {handoff_payload_budget}"
            )
        self.tree = tree
        self.config = replace(config) if config is not None else ServerConfig()
        self.config.validate()
        self.local_shards = int(num_shards)
        self.remote_addresses: List[Tuple[str, int]] = addresses
        self.num_shards = self.local_shards + len(addresses)
        self.respawn_limit = int(respawn_limit)
        self.request_timeout_s = float(request_timeout_s)
        self._chaos_build_delay_s = float(chaos_build_delay_s)
        self._handoff_payload_budget = int(handoff_payload_budget)
        self._warm_recovery = bool(warm_recovery)
        self._targets = targets
        self._ctx = multiprocessing.get_context(start_method)
        self._lifecycle_lock = threading.Lock()
        self._ticket_lock = threading.Lock()
        # Serializes parent-tree prior mutation against parent-side prior
        # reads (publish_leaf_priors), so the admin read can never observe a
        # half-applied live update.
        self._tree_lock = threading.Lock()
        self._tickets = itertools.count(1)
        self._closed = False
        # Stats live under their own lock (not the lifecycle lock) so the
        # crash handler can bump them — and fire the user-supplied listener
        # — without ever invoking foreign code while holding a pool lock.
        self._stats_lock = threading.Lock()
        self._stats = {
            "respawns": 0,
            "retries": 0,
            "crash_failures": 0,
            "drains": 0,
            "handoffs": 0,
            "warm_failovers": 0,
            "handoff_payloads": 0,
            "handoff_prewarms": 0,
            "handoff_dropped": 0,
            "store_prewarm_imported": 0,
            "store_prewarm_prewarmed": 0,
            "store_prewarm_skipped": 0,
            "store_prewarm_stale": 0,
            "store_prewarm_dropped": 0,
            "store_persist_dropped": 0,
        }
        self._stats_listener: Optional[Callable[[str, int], None]] = None
        # Per-slot hot-key ledger: the most recently served request keys,
        # replayed to ring siblings when the slot dies without a drain so
        # even SIGKILL failover pre-warms instead of cold-building.
        self._ledger_lock = threading.Lock()
        self._hot_keys: Dict[int, Dict[Tuple[int, int, float], float]] = {}
        # Live-prior-update bookkeeping: a shard spawned (and hence pickled
        # the tree) before the latest publish_priors must have the update
        # re-sent when it becomes READY — see _collect's READY handler.
        self._priors_version = 0
        self._current_priors: Optional[Tuple[Dict[str, float], bool, int]] = None
        # Durable state tier (optional): replay the control log *before*
        # spawning shards, so every worker is stamped with the recovered
        # priors generation and carries the replayed tree priors.
        self._state_dir: Optional[Path] = None
        self._control_log: Optional[ControlLog] = None
        self._store: Optional[SnapshotStore] = None
        self._seed_store: Optional[SnapshotStore] = None
        self._seed_store_dir = seed_store_dir
        self._store_fingerprint = ""
        self._durability_errors: List[str] = []
        self._persist_queue: Optional[queue_module.Queue] = None
        self._persister: Optional[threading.Thread] = None
        self._prewarm_done = threading.Event()
        # Replication role: decided by configuration, enforced before the
        # client/server even starts — a follower must refuse local control
        # writes whether or not its tailer managed to come up.
        self._replication_follower = replicate_from is not None
        self._replication_server: Optional[ReplicationServer] = None
        self._replication_client: Optional[ReplicationClient] = None
        if state_dir is not None:
            self._open_durable_state(state_dir)
        self._ring: List[Tuple[int, int]] = build_ring(self.num_shards)
        # Local worker-process slots first, then one slot per remote
        # address — the ring treats them identically (slot number is all
        # that is hashed), so keys spread across hosts exactly as they
        # spread across processes.
        self._shards: List[ShardHandle] = [
            ShardHandle(slot) for slot in range(self.local_shards)
        ]
        for index, address in enumerate(self.remote_addresses):
            self._shards.append(
                NetShardHandle(
                    self.local_shards + index,
                    address,
                    heartbeat_interval_s=heartbeat_interval_s,
                    liveness_timeout_s=liveness_timeout_s,
                    connect_timeout_s=connect_timeout_s,
                )
            )
        for shard in self._shards:
            self._spawn(shard)
        if self._store is not None:
            self._persist_queue = queue_module.Queue(maxsize=PERSIST_QUEUE_SIZE)
            self._persister = threading.Thread(
                target=self._persist_loop, name="corgi-store-persister", daemon=True
            )
            self._persister.start()
            threading.Thread(
                target=self._store_prewarm, name="corgi-store-prewarm", daemon=True
            ).start()
        else:
            self._prewarm_done.set()
        if replication_port is not None:
            if self._control_log is None:
                self._durability_errors.append(
                    "replication primary disabled: control log unavailable"
                )
            else:
                self._replication_server = ReplicationServer(
                    self._control_log,
                    host=replication_host,
                    port=int(replication_port),
                    fingerprint=self._store_fingerprint,
                    state_provider=self._replication_state,
                )
        if replicate_from is not None:
            if self._state_dir is None or self._control_log is None:
                self._durability_errors.append(
                    "replication follower disabled: durable state unavailable"
                )
            else:
                self._replication_client = ReplicationClient(
                    self,
                    replication_source,
                    state_dir=self._state_dir,
                    fingerprint=self._store_fingerprint,
                    heartbeat_interval_s=heartbeat_interval_s,
                    liveness_timeout_s=liveness_timeout_s,
                    connect_timeout_s=connect_timeout_s,
                )

    # ------------------------------------------------------------------ #
    # Durable state tier: control-log replay, persistence, pre-warm
    # ------------------------------------------------------------------ #

    def _open_durable_state(self, state_dir: os.PathLike) -> None:
        """Open (or create) the state directory and replay the control log.

        Every failure mode — unreadable directory, torn or corrupt log,
        undecodable priors record — is caught, logged, and recorded in
        :meth:`durability_diagnostics`; the pool then boots cold.  A
        durability problem must never crash a boot.
        """
        self._state_dir = Path(state_dir)
        try:
            self._state_dir.mkdir(parents=True, exist_ok=True)
            self._control_log = ControlLog(self._state_dir / "control.log")
            self._recover_from_control_log()
            self._store_fingerprint = pipeline_store_fingerprint(
                self.tree, self.config, self._targets
            )
            self._store = SnapshotStore(
                self._state_dir / "snapshots", fingerprint=self._store_fingerprint
            )
            if self._seed_store_dir is not None:
                # Warm-boot seed shared across heads of the same pipeline
                # fingerprint (typically the primary's snapshot directory):
                # strictly read-only — this head pre-warms from it but all
                # its own write-through persistence stays in its own store.
                self._seed_store = SnapshotStore(
                    self._seed_store_dir,
                    fingerprint=self._store_fingerprint,
                    read_only=True,
                )
        except Exception as error:  # noqa: BLE001 - durability never blocks a boot
            self._durability_errors.append(f"durable state unavailable: {error}")
            logger.exception(
                "durable state tier under %s unavailable; booting cold", state_dir
            )

    def _recover_from_control_log(self) -> None:
        """Apply the last replayed ``publish_priors`` to the parent tree.

        Restores the authoritative priors generation from disk: the version
        of the newest committed publish becomes the pool's priors version
        (so a warm replica announcing it at READY is recognized rather than
        reset), and the masses are re-applied to the parent tree so every
        spawned worker pickles the recovered priors.  A record that fails
        vetting (hand-edited log) is surfaced as a diagnostic and skipped —
        the version still advances so it can never be reissued.
        """
        assert self._control_log is not None
        replay = self._control_log.replay
        if replay.error:
            self._durability_errors.append(f"control-log tail: {replay.error}")
        last_publish: Optional[Dict[str, object]] = None
        for record in replay.records:
            if record.get("type") == "publish_priors":
                last_publish = record
        if last_publish is None:
            return
        version = last_publish.get("version")
        if not isinstance(version, int) or isinstance(version, bool) or version <= 0:
            self._durability_errors.append(
                f"replayed publish_priors carries invalid version {version!r}"
            )
            return
        try:
            vetted = validate_prior_masses(last_publish.get("priors"))
            normalize = bool(last_publish.get("normalize", True))
            with self._tree_lock:
                self.tree.set_leaf_priors(dict(vetted), normalize=normalize)
        except Exception as error:  # noqa: BLE001 - a bad record boots cold
            self._durability_errors.append(f"replayed priors rejected: {error}")
            logger.warning(
                "control-log priors v%s failed to apply (%s); keeping seed priors",
                version,
                error,
            )
            self._priors_version = version
            return
        self._priors_version = version
        self._current_priors = (vetted, normalize, version)
        logger.info(
            "replayed %d control-log record(s); priors generation v%d recovered "
            "from disk",
            len(replay.records),
            version,
        )

    def _schedule_persist(
        self, shard: ShardHandle, key: Tuple[int, int, float], result: Mapping[str, object]
    ) -> None:
        """Queue one freshly built forest for write-through persistence."""
        persist_queue = self._persist_queue
        if persist_queue is None:
            return
        matrices = result.get("matrices")
        if not matrices:
            return
        with shard.lock:
            version = shard.priors_version
        ttl = float(self.config.forest_ttl_s)
        entry = SnapshotEntry(
            privacy_level=key[0],
            delta=key[1],
            epsilon=key[2],
            ttl_remaining_s=ttl if ttl > 0 else None,
            matrices=dict(matrices),
        )
        try:
            persist_queue.put_nowait((shard.slot, version, entry))
        except queue_module.Full:
            self._bump("store_persist_dropped")

    def _persist_loop(self) -> None:
        """Background writer: snapshot-encode queued forests into the store."""
        while True:
            try:
                item = self._persist_queue.get(timeout=0.2)
            except queue_module.Empty:
                if self._closed:
                    return
                continue
            if item is None:
                return
            slot, version, entry = item
            try:
                blob = encode_snapshot(
                    CacheSnapshot(
                        shard_slot=slot, priors_version=version, entries=(entry,)
                    )
                )
                self._store.put(entry.privacy_level, entry.delta, entry.epsilon, blob)
            except Exception:  # noqa: BLE001 - persistence must not die mid-run
                # A snapshot-encode failure is a persistence gap exactly
                # like a failed disk write: count it where the durability
                # endpoint looks, or /admin/durability under-reports.
                self._store.count_write_error()
                logger.exception("snapshot persistence failed for key %s", entry.key)

    def _persist_exported(
        self, slot: int, version: int, raw_entries: List[Dict[str, object]]
    ) -> int:
        """Persist a draining shard's exported payload entries (synchronous)."""
        if self._store is None:
            return 0
        persisted = 0
        for raw in raw_entries:
            if raw.get("matrices") is None:
                continue
            try:
                entry = SnapshotEntry(
                    privacy_level=int(raw["privacy_level"]),
                    delta=int(raw["delta"]),
                    epsilon=float(raw["epsilon"]),
                    ttl_remaining_s=raw.get("ttl_remaining_s"),
                    matrices=raw.get("matrices"),
                )
                blob = encode_snapshot(
                    CacheSnapshot(
                        shard_slot=slot, priors_version=version, entries=(entry,)
                    )
                )
            except Exception as error:  # noqa: BLE001 - skip the one bad entry
                logger.warning("could not persist drained entry %r: %s", raw, error)
                continue
            if self._store.put(entry.privacy_level, entry.delta, entry.epsilon, blob):
                persisted += 1
        return persisted

    def _store_prewarm(self) -> None:
        """Boot-time pre-warm: import every stored snapshot into its home shard.

        Runs on a daemon thread after the shards spawn.  Snapshots whose
        priors version differs from the replayed generation are skipped
        (and counted) — and even for matching ones the shard executor
        re-checks the version at import, so a stored payload can never be
        served under different priors.  Any per-blob failure is counted and
        the loop moves on; the thread can only end by finishing or by pool
        close.
        """
        try:
            try:
                self.wait_ready(timeout_s=self.request_timeout_s)
            except EnginePoolError as error:
                logger.warning("store pre-warm: pool not ready (%s)", error)
                return
            with self._lifecycle_lock:
                pool_version = self._priors_version
            # Own store first, then the shared read-only seed (if any):
            # a key present in both imports twice, which the shard-side
            # idempotent import absorbs — correctness never depends on
            # deduplicating the warm boot.
            sources = [self._store]
            if self._seed_store is not None:
                sources.append(self._seed_store)
            for store, name, blob in (
                (store, name, blob)
                for store in sources
                for name, blob in store.load_all()
            ):
                if self._closed:
                    return
                try:
                    snapshot = decode_snapshot(blob)
                except SnapshotFormatError as error:
                    store.quarantine_blob(name, error)
                    continue
                if snapshot.priors_version != pool_version:
                    self._bump("store_prewarm_stale", len(snapshot.entries))
                    logger.info(
                        "store pre-warm: %s is from priors v%d (pool is at v%d); "
                        "skipping — the key will rebuild on demand",
                        name,
                        snapshot.priors_version,
                        pool_version,
                    )
                    continue
                for entry in snapshot.entries:
                    dest = self._destination_for(entry.key, None)
                    if dest is None:
                        self._bump("store_prewarm_dropped")
                        continue
                    dest_shard = self._shards[dest]
                    deadline = time.monotonic() + self.request_timeout_s
                    single = encode_snapshot(
                        CacheSnapshot(
                            shard_slot=snapshot.shard_slot,
                            priors_version=snapshot.priors_version,
                            entries=(entry,),
                        )
                    )
                    try:
                        counts = self._shard_request(
                            dest_shard, "import_cache", single, deadline
                        )
                    except (EnginePoolError, ShardCrashedError, ShardUnavailableError) as error:
                        self._bump("store_prewarm_dropped")
                        logger.warning(
                            "store pre-warm of %s into shard %d failed: %s",
                            name,
                            dest,
                            error,
                        )
                        continue
                    self._bump("store_prewarm_imported", int(counts.get("imported", 0)))
                    self._bump("store_prewarm_prewarmed", int(counts.get("prewarmed", 0)))
                    self._bump("store_prewarm_skipped", int(counts.get("skipped", 0)))
                    self._record_hot_key(dest, entry.key)
        except Exception:  # noqa: BLE001 - pre-warm must never take the pool down
            logger.exception("store pre-warm thread failed")
        finally:
            self._prewarm_done.set()

    def wait_prewarmed(self, timeout_s: float = 60.0) -> bool:
        """Block until the boot-time store pre-warm finished (True) or timeout."""
        return self._prewarm_done.wait(timeout=timeout_s)

    @property
    def priors_version(self) -> int:
        """The pool's current (possibly disk-replayed) priors generation."""
        with self._lifecycle_lock:
            return self._priors_version

    def durability_diagnostics(self) -> Dict[str, object]:
        """State of the durable tier: log replay, store counters, pre-warm."""
        info: Dict[str, object] = {
            "durable": self._control_log is not None or self._store is not None,
            "state_dir": None if self._state_dir is None else str(self._state_dir),
            "errors": list(self._durability_errors),
            "prewarm_complete": self._prewarm_done.is_set(),
        }
        if self._control_log is not None:
            info["control_log"] = self._control_log.stats()
        if self._store is not None:
            info["store"] = self._store.stats()
        if self._seed_store is not None:
            info["seed_store"] = self._seed_store.stats()
        if self._replication_server is not None:
            info["replication"] = self._replication_server.diagnostics()
        elif self._replication_client is not None:
            info["replication"] = self._replication_client.diagnostics()
        elif self._replication_follower:
            info["replication"] = {"role": "follower", "connected": False}
        with self._stats_lock:
            info["prewarm"] = {
                name: self._stats[name]
                for name in self._stats
                if name.startswith("store_prewarm_")
            }
        return info

    # ------------------------------------------------------------------ #
    # Replication: primary/follower control-plane convergence
    # ------------------------------------------------------------------ #

    def _require_primary(self, operation: str) -> None:
        """Refuse local control writes on a follower head.

        Accepting them would fork the version sequence away from the
        primary's log — the split-brain this layer exists to prevent.
        Operators (and the HTTP admin surface) get a typed 400-class error
        pointing at the primary.
        """
        if self._replication_follower:
            raise ReplicationRoleError(
                f"{operation} refused: this head replicates from "
                f"{getattr(self._replication_client, 'source', 'a primary')} — "
                "control writes go to the primary"
            )

    def _replication_state(self) -> Tuple[Dict[str, float], bool]:
        """The authoritative priors masses shipped in a ``reset`` frame.

        The parent tree's current leaf priors are already normalized, so
        the reset applies them verbatim (``normalize=False``).
        """
        with self._tree_lock:
            priors = {
                str(leaf.node_id): float(leaf.prior) for leaf in self.tree.leaves()
            }
        return priors, False

    def apply_replicated_control(self, record: Mapping[str, object]) -> None:
        """Apply one replicated control record at the *primary's* version.

        The follower-side twin of ``publish_priors`` / ``invalidate``:
        same tree mutation, same broadcast, but no local version
        allocation and no local log append — the replication client
        already committed the record verbatim (store-and-forward), so this
        head's log carries the primary's exact sequence.
        """
        record_type = record.get("type")
        version = record.get("version")
        if not isinstance(version, int) or isinstance(version, bool) or version <= 0:
            raise ValueError(f"replicated record carries invalid version {version!r}")
        if record_type == "publish_priors":
            vetted = validate_prior_masses(record.get("priors"))
            normalize = bool(record.get("normalize", True))
            with self._tree_lock:
                self.tree.set_leaf_priors(dict(vetted), normalize=normalize)
            with self._lifecycle_lock:
                if version > self._priors_version:
                    self._priors_version = version
                payload = (vetted, normalize, version)
                self._current_priors = payload
            answers = self._broadcast("set_priors", payload)
            for slot in answers:
                shard = self._shards[slot]
                with shard.lock:
                    shard.priors_version = max(shard.priors_version, version)
        elif record_type == "invalidate":
            level = record.get("privacy_level")
            level = None if level is None else int(level)
            if self._store is not None:
                self._store.purge(level)
            self._broadcast("invalidate", level)
        else:
            raise ValueError(f"unknown replicated control record type {record_type!r}")

    def reset_for_replication(
        self,
        last_version: int,
        priors: Optional[Mapping[str, float]],
        normalize: bool = False,
    ) -> None:
        """Defensive reset: this head replayed a generation the primary
        never committed (the PR 5 split-brain rule, now log-driven).

        The divergent local log is rotated aside (``control.log
        .split-brain``), a fresh log is seeded with the primary's
        authoritative priors at its durable version (store-and-forward
        applies to the reset itself: a reboot replays it), the parent tree
        adopts those priors, every shard's cache is flushed at the
        primary's version, and the local snapshot store is purged — every
        snapshot it holds was built under versions that never happened.
        """
        version = int(last_version)
        vetted: Optional[Dict[str, float]] = None
        if priors is not None:
            vetted = validate_prior_masses(priors)
        log = self._control_log
        if log is not None:
            log.close()
            self._rotate_split_brain_log(log.path)
            self._control_log = ControlLog(log.path)
            if version > 0 and vetted is not None:
                self._control_log.append_replicated(
                    {
                        "type": "publish_priors",
                        "version": version,
                        "priors": {str(k): float(v) for k, v in vetted.items()},
                        "normalize": bool(normalize),
                        "reset": True,
                    }
                )
        if vetted is not None:
            with self._tree_lock:
                self.tree.set_leaf_priors(dict(vetted), normalize=bool(normalize))
        with self._lifecycle_lock:
            self._priors_version = version
            self._current_priors = (
                None if vetted is None else (vetted, bool(normalize), version)
            )
        if self._store is not None:
            self._store.purge(None)
        if vetted is not None:
            answers = self._broadcast("set_priors", (vetted, bool(normalize), version))
        else:
            answers = self._broadcast("invalidate", None)
        for slot in answers:
            shard = self._shards[slot]
            with shard.lock:
                # Deliberately downward: the replica's old generation never
                # happened, so max() would preserve exactly the lie the
                # reset is erasing.
                shard.priors_version = version
        logger.warning(
            "replication reset complete: this head now serves the primary's "
            "priors generation v%d",
            version,
        )

    def _rotate_split_brain_log(self, path: Path) -> None:
        """Move a divergent control log aside (first free numbered name)."""
        for suffix in [".split-brain"] + [f".split-brain.{n}" for n in range(1, 100)]:
            candidate = path.with_name(path.name + suffix)
            if candidate.exists():
                continue
            try:
                os.replace(path, candidate)
                return
            except FileNotFoundError:
                return  # nothing on disk to rotate
            except OSError as error:
                self._durability_errors.append(f"split-brain log rotation failed: {error}")
                break
        # Rotation failed (or 100 resets?!): delete rather than let the
        # divergent records replay into the reset state on the next boot.
        try:
            path.unlink(missing_ok=True)
        except OSError as error:
            self._durability_errors.append(f"split-brain log removal failed: {error}")

    # ------------------------------------------------------------------ #
    # Consistent-hash routing
    # ------------------------------------------------------------------ #

    def route_key(self, key: Tuple[int, int, float]) -> List[int]:
        """Failover order for a normalized request key: all slots, ring order.

        The first entry is the key's home shard; later entries are the
        siblings tried (in order) when earlier ones are down.  Deterministic
        across processes and runs — the property the routing tests pin.
        """
        return ring_failover_order(self._ring, key, self.num_shards)

    def shard_for(
        self, privacy_level: int, delta: int, *, epsilon: Optional[float] = None
    ) -> int:
        """Home shard slot of one request (after ε-default resolution)."""
        return self.route_key(self._normalize(privacy_level, delta, epsilon))[0]

    def _normalize(
        self, privacy_level: int, delta: int, epsilon: Optional[float]
    ) -> Tuple[int, int, float]:
        effective = float(epsilon if epsilon is not None else self.config.epsilon)
        return (int(privacy_level), int(delta), effective)

    # ------------------------------------------------------------------ #
    # Process lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, shard: ShardHandle) -> None:
        """(Re)launch one slot: a worker process, or a remote session.

        Remote slots have no process to fork — (re)launching one means
        dialing its server again (:meth:`_connect_remote`); the crash and
        respawn machinery is shared, so a lost connection walks the same
        CRASHED → STARTING → READY path (bounded by ``respawn_limit``) a
        SIGKILLed local worker walks.
        """
        if getattr(shard, "is_remote", False):
            self._connect_remote(shard)
            return
        with shard.lock:
            if shard.state in (ShardState.STOPPED, ShardState.DEAD):
                # close() (or respawn exhaustion) won the race between the
                # crash handler releasing the lifecycle lock and this spawn —
                # the slot is terminal, nothing to launch.
                return
            if shard.state is not ShardState.STARTING:
                shard.transition(ShardState.STARTING)
            shard.generation += 1
            generation = shard.generation
            # Record which prior generation this worker will carry.  Read
            # *before* process.start(): any publish_priors bumping the
            # version after this read makes the READY handler re-send the
            # update (a publish landing in between merely causes one
            # redundant, idempotent re-send).
            shard.priors_version = self._priors_version
            spec = ShardSpec(
                shard_id=shard.slot,
                tree=self.tree,
                config=self.config,
                targets=self._targets,
                chaos_build_delay_s=self._chaos_build_delay_s,
                priors_version=shard.priors_version,
            )
            request_queue = self._ctx.Queue()
            response_queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=shard_worker_main,
                args=(spec, request_queue, response_queue),
                name=f"corgi-shard-{shard.slot}",
                daemon=True,
            )
            shard.request_queue = request_queue
            shard.response_queue = response_queue
            shard.process = process
        process.start()
        collector = threading.Thread(
            target=self._collect,
            args=(shard, process, response_queue, generation),
            name=f"corgi-shard-{shard.slot}-collector",
            daemon=True,
        )
        collector.start()

    def _connect_remote(self, shard: ShardHandle) -> None:
        """(Re)dial one remote slot's server on a fresh session generation."""
        with shard.lock:
            if shard.state in (ShardState.STOPPED, ShardState.DEAD):
                return
            if shard.state is not ShardState.STARTING:
                shard.transition(ShardState.STARTING)
            shard.generation += 1
            generation = shard.generation
        shard.start_session(
            generation, on_ready=self._mark_ready, on_crash=self._handle_crash
        )

    def _collect(self, shard: ShardHandle, process, response_queue, generation: int) -> None:
        """Drain one worker generation's responses; detect its death."""
        while True:
            try:
                message = response_queue.get(timeout=HEALTH_POLL_INTERVAL_S)
            except queue_module.Empty:
                with shard.lock:
                    stale = shard.generation != generation
                    terminal = shard.state in _COLLECTOR_TERMINAL_STATES
                if stale or terminal:
                    return
                if not process.is_alive():
                    self._handle_crash(shard, generation)
                    return
                continue
            ticket, status, payload = message
            if ticket == CONTROL_TICKET:
                if status == "ready":
                    announced = None
                    if isinstance(payload, dict):
                        announced = payload.get("priors_version")
                    self._mark_ready(shard, generation, announced)
                continue
            shard.resolve(ticket, status, payload)

    def _mark_ready(
        self,
        shard: ShardHandle,
        generation: int,
        announced_priors_version: Optional[int] = None,
    ) -> None:
        """Transition a freshly-announced worker to READY.

        If the worker was spawned (tree pickled) before the latest
        ``publish_priors``, the update is queued *ahead of* the READY
        transition — the worker drains its queue serially, so the priors
        land before any request submitted post-READY can build on them.
        Without this, a shard respawned around a live update would serve
        forests from outdated priors forever.

        *announced_priors_version* is what the replica itself claims to
        carry.  For a spawned worker it equals what :meth:`_spawn` recorded;
        for a remote shard it is authoritative — a reconnect may find a
        server that kept state (and priors) across the outage, and trusting
        the spawn-time guess would either skip a needed re-send or waste a
        redundant one.
        """
        with self._lifecycle_lock:
            current_version = self._priors_version
            current_priors = self._current_priors
        announced = None
        if announced_priors_version is not None and not isinstance(
            announced_priors_version, bool
        ):
            announced = int(announced_priors_version)
        reset_priors = None
        if announced is not None and announced > current_version:
            # The replica carries a priors generation this pool never
            # published — e.g. a warm netshard server outliving a head-node
            # restart.  Its live priors are unreconcilable with ours, so
            # reset it to this pool's authoritative tree priors (which also
            # flushes its stale forest cache) instead of silently serving
            # split-brain forests next to the other shards.
            with self._tree_lock:
                masses = {leaf.node_id: leaf.prior for leaf in self.tree.leaves()}
            reset_priors = (masses, False, current_version)
            logger.warning(
                "shard %d announced priors version %d > pool version %d; "
                "resetting the replica to this pool's tree priors",
                shard.slot,
                announced,
                current_version,
            )
        with shard.lock:
            if shard.generation != generation or shard.state is not ShardState.STARTING:
                return
            if reset_priors is not None:
                shard.request_queue.put_nowait(
                    ("set_priors", self._next_ticket(), reset_priors)
                )
                shard.priors_version = current_version
            elif announced is not None:
                shard.priors_version = announced
            if current_priors is not None and shard.priors_version < current_version:
                shard.request_queue.put_nowait(
                    ("set_priors", self._next_ticket(), current_priors)
                )
                shard.priors_version = current_version
                logger.info(
                    "re-sent published priors (v%d) to respawned shard %d",
                    current_version,
                    shard.slot,
                )
            shard.transition(ShardState.READY)

    def _handle_crash(self, shard: ShardHandle, generation: int) -> None:
        """Crash path: fail in-flight tickets, respawn or declare the slot dead.

        Before the slot respawns (or is declared dead), the slot's hot-key
        ledger is replayed to its ring siblings on a background thread —
        post-crash warm recovery: by the time failed-over requests land on
        a sibling, the dead shard's hot keys are (being) pre-warmed there
        instead of cold-built on the request path.

        Stat bumps are deferred until the lifecycle lock is released: the
        bump path notifies the user-supplied stats listener, and running
        foreign code (which may raise, block, or call back into the pool)
        from inside the crash handler's critical section could deadlock or
        kill the collector thread that detects shard death.
        """
        bumps: List[Tuple[str, int]] = []
        respawn = False
        try:
            with self._lifecycle_lock:
                with shard.lock:
                    if shard.generation != generation or shard.state in (
                        ShardState.STOPPED,
                        ShardState.DEAD,
                        ShardState.DRAINED,
                    ):
                        return
                    shard.transition(ShardState.CRASHED)
                    exhausted = shard.respawns >= self.respawn_limit
                    closed = self._closed
                failed = shard.fail_pending(
                    ShardCrashedError(
                        f"shard {shard.slot} (generation {generation}) died mid-request"
                    )
                )
                bumps.append(("crash_failures", failed))
                logger.warning(
                    "shard %d died (generation %d, %d request(s) in flight)",
                    shard.slot,
                    generation,
                    failed,
                )
                if not closed:
                    self._start_warm_recovery(shard.slot)
                if closed:
                    with shard.lock:
                        shard.transition(ShardState.STOPPED)
                    return
                if exhausted:
                    with shard.lock:
                        shard.transition(ShardState.DEAD)
                    logger.error(
                        "shard %d exceeded respawn_limit=%d; slot is permanently dead",
                        shard.slot,
                        self.respawn_limit,
                    )
                    return
                with shard.lock:
                    shard.respawns += 1
                bumps.append(("respawns", 1))
                respawn = True
        finally:
            for name, amount in bumps:
                self._bump(name, amount)
        if respawn:
            self._spawn(shard)

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Block until every shard is READY or terminal (spawn rendezvous).

        Slots already DEAD or STOPPED are skipped *immediately* — the state
        is checked before any wait, so a permanently dead slot costs nothing
        instead of stalling the caller for the whole timeout.  If *no* slot
        reaches READY (e.g. the engine constructor raises in every worker),
        this raises :class:`EnginePoolError` instead of reporting a pool
        that cannot serve a single request as ready.
        """
        deadline = time.monotonic() + timeout_s
        ready = 0
        for shard in self._shards:
            while True:
                with shard.lock:
                    state = shard.state
                if state is ShardState.READY:
                    ready += 1
                    break
                if state in (ShardState.DEAD, ShardState.STOPPED, ShardState.DRAINED):
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise PoolTimeoutError(
                        f"shard {shard.slot} not ready within {timeout_s:.1f} s "
                        f"(state {state.value})"
                    )
                # Short waits so a transition to a terminal state (which
                # never sets ready_event) is noticed promptly.
                shard.ready_event.wait(timeout=min(0.05, remaining))
        if ready == 0:
            raise EnginePoolError(
                f"no shard became ready ({self.num_shards} slot(s) dead or stopped); "
                "the pool cannot serve"
            )

    def close(self) -> None:
        """Stop every shard and release resources (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        # Replication first: stop tailing/streaming before the shards the
        # apply path broadcasts into start disappearing.
        if self._replication_client is not None:
            self._replication_client.close()
        if self._replication_server is not None:
            self._replication_server.close()
        for shard in self._shards:
            with shard.lock:
                if shard.state in (
                    ShardState.STARTING,
                    ShardState.READY,
                    ShardState.DRAINING,
                ):
                    try:
                        if shard.request_queue is not None:
                            shard.request_queue.put_nowait(None)
                    except (ValueError, OSError, queue_module.Full):
                        pass
                if shard.state not in (ShardState.STOPPED, ShardState.DEAD):
                    shard.transition(ShardState.STOPPED)
                process = shard.process
            shard.fail_pending(EnginePoolError("engine pool closed"))
            if process is not None:
                try:
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=2.0)
                except (AssertionError, ValueError):
                    pass  # a respawn raced close() and never start()ed this one
        for shard in self._shards:
            for q in (shard.request_queue, shard.response_queue):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
        # Flush the durable tier: the persister drains queued writes (a
        # sentinel lands behind them), then the control log is released.
        if self._persist_queue is not None:
            try:
                self._persist_queue.put_nowait(None)
            except queue_module.Full:
                pass  # the loop also exits on the closed flag
            if self._persister is not None:
                self._persister.join(timeout=5.0)
        if self._control_log is not None:
            self._control_log.close()
        self._prewarm_done.set()
        logger.info("engine pool closed (%d shards)", self.num_shards)

    def __enter__(self) -> "EnginePool":
        try:
            self.wait_ready()
        except BaseException:
            # __exit__ never runs when __enter__ raises — clean up here or
            # leak every worker process and collector thread.
            self.close()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Routed requests with failover
    # ------------------------------------------------------------------ #

    def _next_ticket(self) -> int:
        with self._ticket_lock:
            return next(self._tickets)

    def _pick_shard(self, key: Tuple[int, int, float]) -> Optional[ShardHandle]:
        """First READY shard along the key's ring order; None = worth waiting."""
        any_pending = False
        for slot in self.route_key(key):
            shard = self._shards[slot]
            with shard.lock:
                state = shard.state
            if state is ShardState.READY:
                return shard
            if state in (ShardState.STARTING, ShardState.CRASHED):
                any_pending = True
        if any_pending:
            return None
        raise EnginePoolError(
            "every shard is dead, stopped or drained; the pool cannot serve"
        )

    def _wait_any_progress(self, deadline: float) -> None:
        """Sleep-poll until some shard might be READY again (respawn window)."""
        while time.monotonic() < deadline:
            for shard in self._shards:
                if shard.ready_event.wait(timeout=0.02):
                    return
        raise PoolTimeoutError(
            f"no shard became ready within request_timeout_s={self.request_timeout_s}"
        )

    def _request_routed(self, key: Tuple[int, int, float], op: str, payload) -> object:
        """Run one op on the key's home shard, failing over along the ring."""
        if self._closed:
            raise EnginePoolError("engine pool is closed")
        deadline = time.monotonic() + self.request_timeout_s
        max_attempts = self.num_shards * (self.respawn_limit + 1) + 1
        last_error: Optional[BaseException] = None
        for _ in range(max_attempts):
            shard = self._pick_shard(key)
            if shard is None:
                self._wait_any_progress(deadline)
                continue
            ticket = self._next_ticket()
            try:
                entry = shard.submit(op, payload, ticket)
            except ShardUnavailableError as error:
                last_error = error
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not entry.event.wait(timeout=remaining):
                shard.abandon(ticket)
                raise PoolTimeoutError(
                    f"shard {shard.slot} did not answer {op!r} within "
                    f"{self.request_timeout_s:.1f} s"
                )
            if entry.error is not None:
                if isinstance(entry.error, (ShardCrashedError, ShardUnavailableError)):
                    last_error = entry.error
                    self._bump("retries")
                    logger.info(
                        "retrying %s for key %s after %s", op, key, entry.error
                    )
                    continue
                raise entry.error
            if op == "build":
                self._record_hot_key(shard.slot, key)
                if not entry.result.get("cached"):
                    # Write-through: a freshly built forest goes to the
                    # snapshot store so even an unplanned full-fleet kill -9
                    # restarts warm (a drain is not required for durability).
                    self._schedule_persist(shard, key, entry.result)
            return entry.result
        raise last_error or EnginePoolError(f"request {op!r} exhausted retries")

    # ------------------------------------------------------------------ #
    # Hot-key ledger and hand-off bookkeeping
    # ------------------------------------------------------------------ #

    def set_stats_listener(self, listener: Optional[Callable[[str, int], None]]) -> None:
        """Register a callback fired on every pool-stat increment.

        The CORGI service uses this to mirror hand-off events (``drains``,
        ``handoffs``, ``warm_failovers``) into its own lock-consistent
        :class:`~repro.service.metrics.ServiceMetrics` counters.
        """
        with self._stats_lock:
            self._stats_listener = listener

    def _bump(self, name: str, amount: int = 1) -> None:
        """Increment one pool stat and notify the listener (outside any lock).

        The listener is user-supplied code: it is invoked with no pool lock
        held and inside a try/except, so a listener that raises (or calls
        back into the pool) can never deadlock the crash handler or kill
        the collector thread that detects shard death.
        """
        if amount <= 0:
            return
        with self._stats_lock:
            self._stats[name] = self._stats.get(name, 0) + int(amount)
            listener = self._stats_listener
        if listener is not None:
            try:
                listener(name, int(amount))
            except Exception:  # noqa: BLE001 - monitoring must not break serving
                logger.exception("pool stats listener failed for %r", name)

    def _record_hot_key(self, slot: int, key: Tuple[int, int, float]) -> None:
        """Remember that *slot* served *key* (bounded, most-recent-last)."""
        with self._ledger_lock:
            ledger = self._hot_keys.setdefault(slot, {})
            ledger.pop(key, None)
            ledger[key] = time.monotonic()
            while len(ledger) > HOT_KEY_LEDGER_SIZE:
                ledger.pop(next(iter(ledger)))

    def hot_keys(self, slot: int) -> List[Tuple[int, int, float]]:
        """The slot's remembered hot keys, oldest first (diagnostics/tests)."""
        with self._ledger_lock:
            return list(self._hot_keys.get(int(slot), {}))

    # ------------------------------------------------------------------ #
    # Warm hand-off: graceful drain, respawn, rebalance, crash recovery
    # ------------------------------------------------------------------ #

    def _shard_request(
        self,
        shard: ShardHandle,
        op: str,
        payload,
        deadline: float,
        *,
        allow_draining: bool = False,
    ) -> object:
        """One op on one specific shard (no routing, no failover)."""
        ticket = self._next_ticket()
        entry = shard.submit(op, payload, ticket, allow_draining=allow_draining)
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not entry.event.wait(timeout=remaining):
            shard.abandon(ticket)
            raise PoolTimeoutError(
                f"shard {shard.slot} did not answer {op!r} before the deadline"
            )
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _destination_for(
        self, key: Tuple[int, int, float], exclude_slot: Optional[int]
    ) -> Optional[int]:
        """First READY slot along the key's ring order (skipping *exclude_slot*)."""
        for slot in self.route_key(key):
            if slot == exclude_slot:
                continue
            shard = self._shards[slot]
            with shard.lock:
                state = shard.state
            if state is ShardState.READY:
                return slot
        return None

    def _transfer_entries(
        self,
        source_slot: int,
        source_version: int,
        raw_entries: List[Dict[str, object]],
        deadline: float,
        *,
        exclude_source: bool = True,
    ) -> Dict[str, int]:
        """Ship exported cache entries to each key's owning live sibling.

        Entries are grouped by destination — the first READY shard along
        each key's ring order — encoded into one versioned snapshot blob per
        destination and imported there.  A destination whose priors version
        differs from the source's gets a key-only snapshot (payloads built
        on other priors must never be installed); keys with no live
        destination are dropped and counted.
        """
        groups: Dict[int, List[SnapshotEntry]] = {}
        dropped = 0
        for raw in raw_entries:
            entry = SnapshotEntry(
                privacy_level=int(raw["privacy_level"]),
                delta=int(raw["delta"]),
                epsilon=float(raw["epsilon"]),
                ttl_remaining_s=raw.get("ttl_remaining_s"),
                matrices=raw.get("matrices"),
            )
            dest = self._destination_for(
                entry.key, source_slot if exclude_source else None
            )
            if dest is None or dest == source_slot:
                if dest is None:
                    dropped += 1
                continue
            groups.setdefault(dest, []).append(entry)
        report = {
            "handoff_keys": 0,
            "payloads": 0,
            "imported": 0,
            "prewarmed": 0,
            "skipped": 0,
            "dropped": dropped,
        }
        for dest, entries in sorted(groups.items()):
            dest_shard = self._shards[dest]
            with dest_shard.lock:
                dest_version = dest_shard.priors_version
            has_payloads = any(entry.matrices is not None for entry in entries)
            if has_payloads and dest_version != source_version:
                # Optimization only — the worker re-checks the snapshot's
                # priors version at import time (a publish racing this read
                # would otherwise slip stale payloads through) — but known
                # skew means there is no point shipping the bytes.
                logger.warning(
                    "hand-off %d -> %d: priors version skew (%d vs %d); "
                    "stripping payloads, sibling will pre-warm",
                    source_slot,
                    dest,
                    source_version,
                    dest_version,
                )
                entries = [entry.without_payload() for entry in entries]
            # Payload entries are cheap to install and ship as one blob;
            # each key-only entry is its own op because the receiving worker
            # *rebuilds* it — per-entry ops let live requests interleave
            # with the pre-warms instead of queueing behind the whole replay.
            payload_entries = [entry for entry in entries if entry.matrices is not None]
            keyonly_entries = [entry for entry in entries if entry.matrices is None]
            batches = ([payload_entries] if payload_entries else []) + [
                [entry] for entry in keyonly_entries
            ]
            for batch in batches:
                blob = encode_snapshot(
                    CacheSnapshot(
                        shard_slot=source_slot,
                        priors_version=source_version,
                        entries=tuple(batch),
                    )
                )
                try:
                    counts = self._shard_request(
                        dest_shard, "import_cache", blob, deadline
                    )
                except (ShardCrashedError, ShardUnavailableError) as error:
                    # The destination died mid-import: its keys will fail
                    # over again along the ring; count them as dropped here.
                    logger.warning("hand-off to shard %d failed: %s", dest, error)
                    report["dropped"] += len(batch)
                    continue
                report["handoff_keys"] += len(batch)
                report["payloads"] += sum(
                    1 for entry in batch if entry.matrices is not None
                )
                for name in ("imported", "prewarmed", "skipped"):
                    report[name] += int(counts.get(name, 0))
                for entry in batch:
                    self._record_hot_key(dest, entry.key)
        self._bump("handoffs", report["handoff_keys"])
        self._bump("handoff_payloads", report["payloads"])
        self._bump("handoff_prewarms", report["prewarmed"])
        self._bump("handoff_dropped", report["dropped"])
        return report

    def drain(self, slot: int, timeout_s: Optional[float] = None) -> Dict[str, object]:
        """Gracefully retire one shard: stop, flush, hand off, shut down.

        The protocol, in `ShardState` terms: ``READY -> DRAINING`` (new
        assignments stop routing here immediately), in-flight requests are
        flushed (the worker finishes what it already accepted), the shard's
        live cache is exported and shipped to its ring siblings as a
        versioned snapshot, then the worker retires (``DRAINING ->
        DRAINED``).  A drained slot stays respawnable via :meth:`respawn` /
        :meth:`rebalance`.

        Raises :class:`ValueError` for an unknown slot id or a slot that is
        not READY — the typed 4xx path of ``POST /admin/drain``.
        """
        if self._closed:
            raise EnginePoolError("engine pool is closed")
        if isinstance(slot, bool) or not isinstance(slot, (int, str, float)):
            raise ValueError(f"slot must be an integer, got {slot!r}")
        if isinstance(slot, float) and not slot.is_integer():
            raise ValueError(f"slot must be an integer, got {slot!r}")
        slot = int(slot)
        if not 0 <= slot < self.num_shards:
            raise ValueError(
                f"slot must be in [0, {self.num_shards - 1}], got {slot}"
            )
        shard = self._shards[slot]
        with shard.lock:
            if shard.state is not ShardState.READY:
                raise ValueError(
                    f"shard {slot} is {shard.state.value}; only a ready shard can drain"
                )
            shard.transition(ShardState.DRAINING)
            source_version = shard.priors_version
        timeout = self.request_timeout_s if timeout_s is None else float(timeout_s)
        deadline = time.monotonic() + timeout
        logger.info("draining shard %d (flushing in-flight work)", slot)
        try:
            # Flush: the worker keeps answering what it already accepted;
            # the collector resolves the tickets.  New work cannot arrive
            # (not READY).
            while True:
                with shard.lock:
                    state = shard.state
                    pending = len(shard.pending)
                if state is not ShardState.DRAINING:
                    raise ShardCrashedError(
                        f"shard {slot} left the draining state ({state.value}) "
                        "before the hand-off completed"
                    )
                if pending == 0:
                    break
                if time.monotonic() > deadline:
                    raise PoolTimeoutError(
                        f"shard {slot} still has {pending} request(s) in flight "
                        f"after {timeout:.1f} s; drain aborted"
                    )
                time.sleep(0.005)
            entries = self._shard_request(
                shard,
                "export_cache",
                int(self._handoff_payload_budget),
                deadline,
                allow_draining=True,
            )
            try:
                # Persist before the sibling transfer: the export is the
                # last full copy of this shard's cache, and for the final
                # drain of a fleet shutdown there is no live sibling — the
                # store is what makes the next boot warm.
                persisted = self._persist_exported(slot, source_version, entries)
            except Exception:  # noqa: BLE001 - persistence is best-effort
                logger.exception("persisting drained cache of shard %d failed", slot)
                persisted = 0
            report = self._transfer_entries(slot, source_version, entries, deadline)
            report["persisted"] = persisted
        except BaseException:
            # A failed drain must not strand the slot: the worker is still
            # alive (a death takes the DRAINING -> CRASHED path through the
            # crash handler), so roll back to READY and keep serving.
            with shard.lock:
                if shard.state is ShardState.DRAINING:
                    shard.transition(ShardState.READY)
            logger.warning("drain of shard %d failed; slot returned to ready", slot)
            raise
        # Retire: mark DRAINED *before* the worker exits so the collector
        # treats the dead process as an orderly end, not a crash.
        with shard.lock:
            if shard.state is ShardState.DRAINING:
                shard.transition(ShardState.DRAINED)
            process = shard.process
            request_queue = shard.request_queue
        if request_queue is not None:
            try:
                request_queue.put_nowait(None)
            except (ValueError, OSError, queue_module.Full):
                pass
        if process is not None:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        with self._ledger_lock:
            self._hot_keys.pop(slot, None)
        self._bump("drains", 1)
        logger.info(
            "shard %d drained: %d key(s) handed off (%d with payload, "
            "%d pre-warmed, %d dropped)",
            slot,
            report["handoff_keys"],
            report["payloads"],
            report["prewarmed"],
            report["dropped"],
        )
        return {"slot": slot, "exported": len(entries), **report}

    def drain_all(self, timeout_s: Optional[float] = None) -> List[Dict[str, object]]:
        """Drain every READY shard in slot order (graceful pool shutdown).

        Each drain hands its cache to the shards still live, so the keys
        cascade along the ring; the final shard has no live sibling left and
        retires cold (its entries are counted as dropped).
        """
        reports: List[Dict[str, object]] = []
        for shard in self._shards:
            with shard.lock:
                state = shard.state
            if state is not ShardState.READY:
                continue
            try:
                reports.append(self.drain(shard.slot, timeout_s=timeout_s))
            except (EnginePoolError, ShardCrashedError, ShardUnavailableError) as error:
                logger.warning("drain of shard %d failed: %s", shard.slot, error)
        return reports

    def respawn(self, slot: int) -> None:
        """Relaunch a previously drained slot (``DRAINED -> STARTING``)."""
        if self._closed:
            raise EnginePoolError("engine pool is closed")
        slot = int(slot)
        if not 0 <= slot < self.num_shards:
            raise ValueError(f"slot must be in [0, {self.num_shards - 1}], got {slot}")
        shard = self._shards[slot]
        with shard.lock:
            if shard.state is not ShardState.DRAINED:
                raise ValueError(
                    f"only a drained slot can be respawned; shard {slot} "
                    f"is {shard.state.value}"
                )
            # Claim the slot *before* releasing the lock: a concurrent
            # respawn/rebalance now fails the DRAINED check above instead
            # of double-spawning the worker.
            shard.transition(ShardState.STARTING)
            # The retired generation's queues are dead; release them before
            # _spawn replaces the references.
            for stale_queue in (shard.request_queue, shard.response_queue):
                if stale_queue is not None:
                    stale_queue.close()
                    stale_queue.cancel_join_thread()
            shard.request_queue = None
            shard.response_queue = None
        self._spawn(shard)

    def rebalance(self, timeout_s: Optional[float] = None) -> Dict[str, int]:
        """Revive drained slots and re-home cached keys onto their home shards.

        After a drain sequence, keys live on whichever ring sibling picked
        them up.  ``rebalance`` (1) respawns every DRAINED slot, (2) waits
        for the pool to settle, then (3) has every READY shard export its
        cache and ships each entry whose *home* shard is a different live
        slot to that home — so routing and cache placement agree again.
        Source copies are left in place (they are unreachable through
        routing while the home is live, and merely occupy memory until
        invalidated or expired).
        """
        if self._closed:
            raise EnginePoolError("engine pool is closed")
        respawned = 0
        for shard in self._shards:
            with shard.lock:
                state = shard.state
            if state is ShardState.DRAINED:
                self.respawn(shard.slot)
                respawned += 1
        timeout = self.request_timeout_s if timeout_s is None else float(timeout_s)
        if respawned:
            self.wait_ready(timeout_s=timeout)
        deadline = time.monotonic() + timeout
        summary = {
            "respawned": respawned,
            "moved_keys": 0,
            "imported": 0,
            "prewarmed": 0,
            "dropped": 0,
        }
        for shard in self._shards:
            with shard.lock:
                state = shard.state
                source_version = shard.priors_version
            if state is not ShardState.READY:
                continue
            try:
                entries = self._shard_request(
                    shard, "export_cache", int(self._handoff_payload_budget), deadline
                )
            except (ShardCrashedError, ShardUnavailableError):
                continue
            foreign = [
                raw
                for raw in entries
                if self._destination_for(
                    (int(raw["privacy_level"]), int(raw["delta"]), float(raw["epsilon"])),
                    None,
                )
                not in (None, shard.slot)
            ]
            if not foreign:
                continue
            report = self._transfer_entries(
                shard.slot, source_version, foreign, deadline, exclude_source=False
            )
            summary["moved_keys"] += report["handoff_keys"]
            summary["imported"] += report["imported"]
            summary["prewarmed"] += report["prewarmed"]
            summary["dropped"] += report["dropped"]
        return summary

    def _start_warm_recovery(self, slot: int) -> None:
        """Kick off background ledger replay for a crashed slot.

        Called from the crash handler while it holds the lifecycle lock —
        hence no ``_bump`` here and all slow work on a daemon thread: the
        crash path must stay fast so failover latency is not inflated by
        pre-warm builds.
        """
        if not self._warm_recovery:
            return
        with self._ledger_lock:
            keys = list(self._hot_keys.pop(slot, {}))
        if not keys:
            return
        with self._shards[slot].lock:
            priors_version = self._shards[slot].priors_version
        threading.Thread(
            target=self._warm_recover,
            args=(slot, keys, priors_version),
            name=f"corgi-shard-{slot}-warm-recovery",
            daemon=True,
        ).start()

    def _warm_recover(
        self, slot: int, keys: List[Tuple[int, int, float]], priors_version: int
    ) -> None:
        """Replay a dead slot's hot-key ledger to its ring siblings (best effort)."""
        entries = [
            {
                "privacy_level": key[0],
                "delta": key[1],
                "epsilon": key[2],
                "ttl_remaining_s": None,
                "matrices": None,  # the process died — only the keys survive
            }
            for key in keys
        ]
        deadline = time.monotonic() + self.request_timeout_s
        try:
            report = self._transfer_entries(slot, priors_version, entries, deadline)
        except EnginePoolError as error:
            logger.warning("warm recovery for shard %d failed: %s", slot, error)
            return
        if report["handoff_keys"]:
            self._bump("warm_failovers", 1)
            logger.info(
                "warm recovery for crashed shard %d: %d hot key(s) pre-warmed "
                "on ring siblings",
                slot,
                report["handoff_keys"],
            )

    # ------------------------------------------------------------------ #
    # Forest-provider surface
    # ------------------------------------------------------------------ #

    def build_forest_traced(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> Tuple[PrivacyForest, bool]:
        """Build (or fetch) one forest on the key's home shard.

        The worker ships back plain matrices; the parent reattaches them to
        its own tree handle, so callers receive a normal
        :class:`~repro.server.privacy_forest.PrivacyForest` byte-identical
        to a single-process build.
        """
        key = self._normalize(privacy_level, delta, epsilon)
        payload = (key[0], key[1], key[2], bool(use_cache))
        result = self._request_routed(key, "build", payload)
        forest = PrivacyForest(
            self.tree, result["privacy_level"], result["delta"], result["epsilon"]
        )
        for root_id, matrix in result["matrices"].items():
            forest.add(root_id, matrix)
        return forest, bool(result["cached"])

    def build_forest(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> PrivacyForest:
        """:meth:`build_forest_traced` without the cache flag."""
        forest, _ = self.build_forest_traced(
            privacy_level, delta, epsilon=epsilon, use_cache=use_cache
        )
        return forest

    generate_privacy_forest = build_forest
    generate_forest = build_forest

    def publish_leaf_priors(self, subtree_root_id: str) -> Dict[str, float]:
        """Leaf priors of one sub-tree, served from the parent's tree handle.

        Read under the tree lock so a concurrent :meth:`publish_priors` can
        never be observed half-applied.
        """
        with self._tree_lock:
            leaves = self.tree.descendant_leaves(subtree_root_id)
            return {leaf.node_id: leaf.prior for leaf in leaves}

    # ------------------------------------------------------------------ #
    # Broadcast cache lifecycle
    # ------------------------------------------------------------------ #

    def _broadcast(
        self,
        op: str,
        payload,
        timeout_s: Optional[float] = None,
        *,
        partial: bool = False,
    ) -> Dict[int, object]:
        """Run one op on every shard that can take it; return answers by slot.

        Shards that are respawning are skipped — a fresh worker starts with
        a cold cache, which is exactly the post-broadcast state (and a live
        prior update is re-sent at READY) — and a shard that dies
        mid-broadcast counts as flushed for the same reason.  With
        ``partial=True`` a shard that does not answer within the timeout is
        simply omitted from the result (monitoring must not fail wholesale
        because one worker is deep in a long build); otherwise the timeout
        raises :class:`PoolTimeoutError`.
        """
        timeout_s = self.request_timeout_s if timeout_s is None else float(timeout_s)
        entries = []
        for shard in self._shards:
            ticket = self._next_ticket()
            try:
                entries.append((shard, ticket, shard.submit(op, payload, ticket)))
            except ShardUnavailableError:
                continue
        deadline = time.monotonic() + timeout_s
        results: Dict[int, object] = {}
        for shard, ticket, entry in entries:
            remaining = max(0.0, deadline - time.monotonic())
            if not entry.event.wait(timeout=remaining):
                # Abandoning makes resolve() drop the stray late answer
                # instead of counting it as completed work.
                shard.abandon(ticket)
                if partial:
                    continue
                raise PoolTimeoutError(
                    f"shard {shard.slot} did not answer broadcast {op!r} within "
                    f"{timeout_s:.1f} s"
                )
            if entry.error is not None:
                if isinstance(entry.error, (ShardCrashedError, ShardUnavailableError)):
                    continue
                raise entry.error
            results[shard.slot] = entry.result
        return results

    def invalidate(self, privacy_level: Optional[int] = None) -> int:
        """Drop cached forests on every shard; return the total dropped.

        With a durable tier, the event is committed to the control log
        first (write-ahead: a crash mid-broadcast converges on replay) and
        the matching stored snapshots are purged — an operator invalidation
        must not be resurrected from disk by the next boot's pre-warm.
        """
        self._require_primary("invalidate")
        level = None if privacy_level is None else int(privacy_level)
        if self._control_log is not None:
            self._control_log.append("invalidate", {"privacy_level": level})
        if self._store is not None:
            self._store.purge(level)
        answers = self._broadcast("invalidate", level)
        return sum(int(count) for count in answers.values())

    def publish_priors(
        self, priors: Mapping[str, float], *, normalize: bool = True
    ) -> int:
        """Install new leaf priors everywhere and flush every shard's caches.

        Masses are vetted (finite, non-negative) and the parent tree is
        updated first — so a bad payload never reaches a worker — then the
        update is broadcast.  A shard that cannot take the broadcast right
        now (respawning) gets it re-sent the moment it turns READY, keyed
        by a monotonically increasing priors version, so no replica is left
        serving pre-update priors.  Returns the total number of forests
        flushed across the shards that answered.
        """
        self._require_primary("publish_priors")
        vetted = validate_prior_masses(priors)
        # Mutate the parent tree *before* bumping the version: a worker
        # forked in between then carries the new tree with an old version
        # stamp (one redundant re-send), never the old tree with a new
        # stamp (a silently stale replica).
        with self._tree_lock:
            self.tree.set_leaf_priors(dict(vetted), normalize=normalize)
        with self._lifecycle_lock:
            if self._control_log is not None:
                # Write-ahead: commit (append + fsync) before the broadcast,
                # so a crash in between converges on replay instead of
                # losing the generation.  The log allocates the version —
                # one monotonic sequence shared with invalidation events.
                version = self._control_log.append(
                    "publish_priors",
                    {
                        "priors": {str(k): float(v) for k, v in vetted.items()},
                        "normalize": bool(normalize),
                    },
                )
                version = max(version, self._priors_version + 1)
            else:
                version = self._priors_version + 1
            self._priors_version = version
            # The version rides in the payload so each worker can track its
            # own priors generation (the import_cache skew check).
            payload = (vetted, bool(normalize), version)
            self._current_priors = payload
        answers = self._broadcast("set_priors", payload)
        for slot in answers:
            shard = self._shards[slot]
            with shard.lock:
                shard.priors_version = max(shard.priors_version, version)
        return sum(int(count) for count in answers.values())

    # ------------------------------------------------------------------ #
    # Health and introspection
    # ------------------------------------------------------------------ #

    def health_check(self, timeout_s: float = 5.0) -> Dict[int, bool]:
        """Ping every shard; True = answered within the timeout.

        Partial by design: one busy or dead shard marks only itself
        unhealthy, never its siblings.
        """
        answers = self._broadcast("ping", None, timeout_s=timeout_s, partial=True)
        return {shard.slot: shard.slot in answers for shard in self._shards}

    def shard_states(self) -> List[Dict[str, object]]:
        """Lifecycle snapshot of every slot (parent-side, no worker round-trip)."""
        return [shard.info() for shard in self._shards]

    def pool_stats(self) -> Dict[str, int]:
        """Respawn/retry/crash counters accumulated since construction."""
        with self._stats_lock:
            return dict(self._stats)

    def cache_diagnostics(self, timeout_s: float = 10.0) -> Dict[str, object]:
        """Aggregated engine diagnostics plus pool lifecycle state.

        The per-shard engine numbers are fetched over the request queues;
        the broadcast is partial, so a shard stuck in a long build is merely
        absent from ``shards_reporting`` rather than blocking monitoring or
        zeroing its siblings' counters.  Scalar counters are summed across
        the shards that answered; the summary keeps the single-engine key
        shape (``forest_entries``, ``structure_sharing``, …) so existing
        dashboards and :meth:`CORGIService.snapshot` work unchanged.
        """
        answers = self._broadcast("diagnostics", None, timeout_s=timeout_s, partial=True)
        summed = {
            "forest_entries": 0,
            "forest_expirations": 0,
            "invalidations": 0,
            "handoff_imports": 0,
            "handoff_prewarms": 0,
            "matrix_entries": 0,
        }
        forest_stats = {"hits": 0, "misses": 0, "evictions": 0}
        matrix_stats = {"hits": 0, "misses": 0, "evictions": 0}
        structure = {"groups": 0, "builds": 0, "reuses": 0}
        solver = {
            "solves": 0,
            "warm_solves": 0,
            "cold_solves": 0,
            "basis_reuse_hits": 0,
            "cold_retries": 0,
        }
        solver_time: Dict[str, float] = {}
        solver_backends: set = set()
        solver_native = False
        for diagnostics in answers.values():
            for name in summed:
                summed[name] += int(diagnostics.get(name, 0))
            solver_source = diagnostics.get("solver", {})
            for name in solver:
                solver[name] += int(solver_source.get(name, 0))
            for stage, elapsed in (solver_source.get("time_s") or {}).items():
                solver_time[stage] = solver_time.get(stage, 0.0) + float(elapsed)
            if solver_source.get("backend_resolved"):
                solver_backends.add(str(solver_source["backend_resolved"]))
            solver_native = solver_native or bool(solver_source.get("native_available"))
            for target, source_key in (
                (forest_stats, "forest_stats"),
                (matrix_stats, "matrix_stats"),
                (structure, "structure_sharing"),
            ):
                source = diagnostics.get(source_key, {})
                for name in target:
                    target[name] += int(source.get(name, 0))
        return {
            **summed,
            "forest_stats": forest_stats,
            "forest_ttl_s": float(self.config.forest_ttl_s),
            "matrix_stats": matrix_stats,
            "structure_sharing": structure,
            "solver": {
                "backend_requested": str(self.config.solver_backend),
                # Shards may resolve "auto" differently across hosts; report
                # every backend the reporting shards actually use.
                "backend_resolved": sorted(solver_backends),
                "native_available": solver_native,
                **solver,
                "time_s": solver_time,
            },
            "max_workers": self.num_shards,
            "pool": {
                "num_shards": self.num_shards,
                "local_shards": self.local_shards,
                "remote_shards": [
                    f"{host}:{port}" for host, port in self.remote_addresses
                ],
                "respawn_limit": self.respawn_limit,
                "shards_reporting": sorted(answers),
                "shards": self.shard_states(),
                "hot_keys": {
                    slot: len(self.hot_keys(slot)) for slot in range(self.num_shards)
                },
                "durability": self.durability_diagnostics(),
                **self.pool_stats(),
            },
        }
