"""CI bench-regression gate: fresh BENCH_*.json vs. committed baselines.

The perf benchmarks (``bench_perf_service.py``, ``bench_perf_pipeline.py``)
write their sections to ``BENCH_service.json`` / ``BENCH_pipeline.json`` at
the repo root.  CI re-runs them on every push and this script diffs the
fresh numbers against the baselines committed under
``benchmarks/baselines/``: any gated p50-class latency that regresses by
more than ``--threshold``× (default 2×) **and** by more than
``--min-delta-s`` absolute (default 50 ms — sub-millisecond cache-hit
latencies double on a busy runner without meaning anything) fails the job.

Lower is always better for every gated metric.  A metric missing from the
fresh results fails the gate (a section silently disappearing is itself a
regression); a metric missing from the baseline is reported and skipped,
so a PR that adds a new section lands green and gates from the next PR on.

Usage::

    python benchmarks/ci_gate.py                 # gate both files
    python benchmarks/ci_gate.py --threshold 3.0 --min-delta-s 0.1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Gated metrics per benchmark file: dotted paths to latency scalars
#: (seconds, lower is better).  Every section's headline p50 is listed.
GATES: Dict[str, Tuple[str, ...]] = {
    "BENCH_service.json": (
        "coalescing.service_metrics.latency_s.p50",
        "coalescing.burst_wall_s.coalesced",
        "sharding.burst_wall_s.sharded",
        "sharding.service_metrics.sharded.latency_s.p50",
        "handoff.failover_latency_s.cold_p50",
        "handoff.failover_latency_s.warm_p50",
        "netshard.burst_wall_s",
        "netshard.failover_latency_s.p50",
        "restart.first_response_s.cold_p50",
        "restart.first_response_s.warm_p50",
        "gateway.push_latency_s.p50",
        "gateway.poll_latency_s.p50",
        "replication.propagation_s.p50",
    ),
    "BENCH_pipeline.json": (
        "forest_generation_s.cold",
        "forest_generation_s.warm_matrix_cache",
        "forest_generation_s.warm_forest_cache",
        "lp_incremental_s.structure_reuse",
        "lp_warm_start_s.warm",
    ),
}

#: Required warm-start improvement over rebuild-every-solve when the native
#: HiGHS backend ran the bench (an *improvement* gate — higher is better —
#: unlike the latency regressions above).
NATIVE_WARM_SPEEDUP_MIN = 5.0


def gate_native_warm_speedup(fresh_path: Path) -> List[str]:
    """Enforce the >=5x native warm-start speedup, where the native backend ran.

    ``bench_perf_pipeline.py`` records which solver backend actually
    executed the ``lp_warm_start_s`` section.  On runners with the
    ``repro[native]`` extra installed that is ``highs-native`` and the
    speedup floor applies; on scipy-only environments the fallback backend
    has no warm path to measure, so the gate skips with a note instead of
    failing environments that cannot install highspy.
    """
    if not fresh_path.exists():
        return []  # the missing file itself fails in gate_file
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    section = fresh.get("lp_warm_start_s")
    if not isinstance(section, dict):
        return [
            "BENCH_pipeline.json: lp_warm_start_s section missing from fresh "
            "results — the warm-start benchmark disappeared"
        ]
    backend = section.get("backend")
    speedup = section.get("speedup")
    if backend != "highs-native":
        print(
            f"[ci-gate] BENCH_pipeline.json: lp_warm_start_s ran on backend "
            f"{backend!r} (highspy not installed); native >= "
            f"{NATIVE_WARM_SPEEDUP_MIN:.1f}x improvement gate skipped"
        )
        return []
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        return ["BENCH_pipeline.json: lp_warm_start_s.speedup missing or non-numeric"]
    verdict = "ok" if speedup >= NATIVE_WARM_SPEEDUP_MIN else "TOO SLOW"
    print(
        f"[ci-gate] BENCH_pipeline.json: lp_warm_start_s native speedup "
        f"{speedup:.2f}x (floor {NATIVE_WARM_SPEEDUP_MIN:.1f}x) {verdict}"
    )
    if speedup < NATIVE_WARM_SPEEDUP_MIN:
        return [
            f"BENCH_pipeline.json: native warm-start speedup {speedup:.2f}x "
            f"is below the {NATIVE_WARM_SPEEDUP_MIN:.1f}x floor"
        ]
    return []


@dataclass
class GateRow:
    """One gated metric's comparison, for the step-summary table."""

    file: str
    metric: str
    baseline_s: Optional[float]
    fresh_s: Optional[float]
    verdict: str  # "ok" | "REGRESSION" | "MISSING" | "no baseline"


def render_step_summary(rows: List[GateRow], failures: List[str]) -> str:
    """GitHub-flavoured markdown for ``$GITHUB_STEP_SUMMARY``."""

    def seconds(value: Optional[float]) -> str:
        return "—" if value is None else f"{value:.6f}"

    lines = [
        "## Bench regression gate — " + ("❌ FAILED" if failures else "✅ passed"),
        "",
        "| file | metric | baseline (s) | fresh (s) | ratio | verdict |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        if row.baseline_s and row.fresh_s is not None:
            ratio = f"{row.fresh_s / row.baseline_s:.2f}x"
        else:
            ratio = "—"
        icon = {"ok": "✅", "no baseline": "➖"}.get(row.verdict, "❌")
        lines.append(
            f"| {row.file} | `{row.metric}` | {seconds(row.baseline_s)} | "
            f"{seconds(row.fresh_s)} | {ratio} | {icon} {row.verdict} |"
        )
    if failures:
        lines += ["", "### Failures", ""]
        lines += [f"- {failure}" for failure in failures]
    return "\n".join(lines) + "\n"


def write_step_summary(rows: List[GateRow], failures: List[str]) -> None:
    """Append the per-metric table to ``$GITHUB_STEP_SUMMARY`` when set."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write(render_step_summary(rows, failures))


def lookup(document: object, dotted_path: str) -> Optional[float]:
    """Resolve one dotted path to a float, or None if absent/non-numeric."""
    node = document
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def gate_file(
    name: str,
    fresh_path: Path,
    baseline_path: Path,
    *,
    threshold: float,
    min_delta_s: float,
    rows: Optional[List[GateRow]] = None,
) -> List[str]:
    """Gate one benchmark file; return the list of failure messages.

    When ``rows`` is given, one :class:`GateRow` per gated metric is
    appended for the step-summary table.
    """
    failures: List[str] = []
    if rows is None:
        rows = []
    if not fresh_path.exists():
        rows.extend(
            GateRow(name, dotted_path, None, None, "MISSING") for dotted_path in GATES[name]
        )
        return [f"{name}: fresh results missing at {fresh_path} (did the bench run?)"]
    if not baseline_path.exists():
        print(f"[ci-gate] {name}: no baseline at {baseline_path}; skipping file")
        return []
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    for dotted_path in GATES[name]:
        fresh_value = lookup(fresh, dotted_path)
        baseline_value = lookup(baseline, dotted_path)
        if fresh_value is None:
            rows.append(GateRow(name, dotted_path, baseline_value, None, "MISSING"))
            failures.append(
                f"{name}: {dotted_path} missing from fresh results — "
                "a benchmark section disappeared"
            )
            continue
        if baseline_value is None:
            rows.append(GateRow(name, dotted_path, None, fresh_value, "no baseline"))
            print(
                f"[ci-gate] {name}: {dotted_path} has no baseline yet "
                f"(fresh {fresh_value:.6f}s); will gate once a baseline lands"
            )
            continue
        regressed = (
            fresh_value > baseline_value * threshold
            and fresh_value - baseline_value > min_delta_s
        )
        verdict = "REGRESSION" if regressed else "ok"
        rows.append(GateRow(name, dotted_path, baseline_value, fresh_value, verdict))
        print(
            f"[ci-gate] {name}: {dotted_path}: "
            f"baseline {baseline_value:.6f}s -> fresh {fresh_value:.6f}s "
            f"({fresh_value / baseline_value:.2f}x) {verdict}"
        )
        if regressed:
            failures.append(
                f"{name}: {dotted_path} regressed {fresh_value / baseline_value:.2f}x "
                f"(baseline {baseline_value:.6f}s, fresh {fresh_value:.6f}s, "
                f"threshold {threshold:.1f}x + {min_delta_s:.3f}s slack)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Gate benchmark regressions in CI")
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly-written BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="relative regression factor that fails the gate (default 2.0x)",
    )
    parser.add_argument(
        "--min-delta-s",
        type=float,
        default=0.05,
        help="absolute slack in seconds — regressions smaller than this never "
        "fail (sub-millisecond latencies double on noisy runners)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")

    failures: List[str] = []
    rows: List[GateRow] = []
    for name in GATES:
        failures.extend(
            gate_file(
                name,
                args.fresh_dir / name,
                args.baseline_dir / name,
                threshold=args.threshold,
                min_delta_s=args.min_delta_s,
                rows=rows,
            )
        )
    failures.extend(gate_native_warm_speedup(args.fresh_dir / "BENCH_pipeline.json"))
    write_step_summary(rows, failures)
    if failures:
        print("\n[ci-gate] FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\n[ci-gate] all gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
