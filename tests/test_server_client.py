"""Integration tests for the server (Algorithm 3) and the client (Algorithm 4)."""

import pytest

from repro.client.client import CORGIClient
from repro.client.session import ObfuscationSession
from repro.core.geoind import check_geo_ind
from repro.policy.policy import Policy
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.server.privacy_forest import PrivacyForest
from repro.server.server import CORGIServer, ServerConfig


@pytest.fixture(scope="module")
def server(small_tree_with_priors):
    config = ServerConfig(
        epsilon=2.0,
        num_targets=5,
        robust_iterations=2,
        solver_method="highs-ipm",
        keep_generation_results=True,
    )
    return CORGIServer(small_tree_with_priors, config)


@pytest.fixture(scope="module")
def client(small_tree_with_priors, server, synthetic_dataset):
    user = synthetic_dataset.users()[0]
    return CORGIClient(small_tree_with_priors, server, user_id=user, history=synthetic_dataset)


class TestServerConfig:
    def test_defaults_valid(self):
        ServerConfig().validate()

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ServerConfig(epsilon=0).validate()
        with pytest.raises(ValueError):
            ServerConfig(num_targets=0).validate()
        with pytest.raises(ValueError):
            ServerConfig(robust_iterations=-1).validate()
        with pytest.raises(ValueError):
            ServerConfig(rpb_method="nope").validate()


class TestCORGIServer:
    def test_forest_covers_every_subtree(self, server, small_tree_with_priors):
        forest = server.generate_privacy_forest(privacy_level=1, delta=1)
        assert len(forest) == 1  # only the root at level 1 of a height-1 tree
        assert forest.is_complete()
        forest_level0 = server.generate_privacy_forest(privacy_level=0, delta=0)
        assert len(forest_level0) == 7

    def test_matrices_are_valid_and_private(self, server, small_tree_with_priors):
        forest = server.generate_privacy_forest(privacy_level=1, delta=1)
        root_id = small_tree_with_priors.root.node_id
        matrix = forest.matrix_for_subtree(root_id)
        matrix.validate()
        leaves = small_tree_with_priors.descendant_leaves(root_id)
        distances = small_tree_with_priors.distance_matrix_km([leaf.node_id for leaf in leaves])
        assert check_geo_ind(matrix, distances, epsilon=2.0, rtol=1e-4, atol=1e-5).satisfied

    def test_cache_reuse(self, server):
        first = server.generate_privacy_forest(privacy_level=1, delta=1)
        second = server.generate_privacy_forest(privacy_level=1, delta=1)
        assert first is second
        assert server.cache_size() >= 1
        server.clear_cache()
        assert server.cache_size() == 0

    def test_epsilon_override(self, server):
        forest = server.generate_privacy_forest(privacy_level=1, delta=0, epsilon=3.0)
        assert forest.epsilon == 3.0

    def test_negative_delta_rejected(self, server):
        with pytest.raises(ValueError):
            server.generate_privacy_forest(privacy_level=1, delta=-1)

    def test_handle_request_roundtrip(self, server):
        response = server.handle_request(ObfuscationRequest(privacy_level=1, delta=1))
        assert isinstance(response, PrivacyForestResponse)
        assert response.matrices
        restored = PrivacyForestResponse.from_dict(response.to_dict())
        assert set(restored.matrices) == set(response.matrices)

    def test_publish_leaf_priors(self, server, small_tree_with_priors):
        priors = server.publish_leaf_priors(small_tree_with_priors.root.node_id)
        assert len(priors) == 7
        assert sum(priors.values()) == pytest.approx(1.0)

    def test_generation_results_retained(self, server, small_tree_with_priors):
        server.clear_cache()
        forest = server.generate_privacy_forest(privacy_level=1, delta=1)
        result = forest.generation_result(small_tree_with_priors.root.node_id)
        assert result is not None
        assert len(result.objective_history) >= 2


class TestPrivacyForest:
    def test_lookup_by_location(self, server, small_tree_with_priors):
        forest = server.generate_privacy_forest(privacy_level=1, delta=0)
        center = small_tree_with_priors.root.center
        root_id, matrix = forest.matrix_for_location(center.lat, center.lng)
        assert root_id == small_tree_with_priors.root.node_id
        assert matrix.size == 7

    def test_unknown_subtree_rejected(self, server):
        forest = server.generate_privacy_forest(privacy_level=1, delta=0)
        with pytest.raises(KeyError):
            forest.matrix_for_subtree("h9:99:99")

    def test_add_validates_level(self, small_tree_with_priors, server):
        forest = PrivacyForest(small_tree_with_priors, privacy_level=1, delta=0, epsilon=2.0)
        leaf = small_tree_with_priors.leaves()[0]
        existing = server.generate_privacy_forest(privacy_level=1, delta=0)
        matrix = existing.matrix_for_subtree(small_tree_with_priors.root.node_id)
        with pytest.raises(ValueError):
            forest.add(leaf.node_id, matrix)

    def test_invalid_privacy_level(self, small_tree_with_priors):
        with pytest.raises(ValueError):
            PrivacyForest(small_tree_with_priors, privacy_level=9, delta=0, epsilon=1.0)

    def test_message_validation(self):
        with pytest.raises(ValueError):
            ObfuscationRequest(privacy_level=-1, delta=0)
        with pytest.raises(ValueError):
            ObfuscationRequest(privacy_level=0, delta=-1)
        with pytest.raises(ValueError):
            ObfuscationRequest(privacy_level=0, delta=0, epsilon=0.0)
        request = ObfuscationRequest.from_dict({"privacy_level": 1, "delta": 2})
        assert request.delta == 2


class TestCORGIClient:
    def test_obfuscation_outcome_structure(self, client, small_tree_with_priors):
        center = small_tree_with_priors.root.center
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        outcome = client.obfuscate(center.lat, center.lng, policy, seed=3)
        assert outcome.reported_node_id in {leaf.node_id for leaf in small_tree_with_priors.leaves()}
        assert outcome.real_leaf_id == small_tree_with_priors.leaf_for_latlng(center.lat, center.lng).node_id
        assert outcome.subtree_root_id == small_tree_with_priors.root.node_id
        assert outcome.customized_matrix.size <= outcome.matrix.size
        assert outcome.metadata["privacy_level"] == 1

    def test_reported_location_within_subtree(self, client, small_tree_with_priors):
        center = small_tree_with_priors.root.center
        policy = Policy(privacy_level=1, precision_level=0, delta=0)
        for seed in range(5):
            outcome = client.obfuscate(center.lat, center.lng, policy, seed=seed)
            reported = small_tree_with_priors.node(outcome.reported_node_id)
            assert reported.level == 0

    def test_precision_level_reporting(self, client, small_tree_with_priors):
        center = small_tree_with_priors.root.center
        policy = Policy(privacy_level=1, precision_level=1, delta=0)
        outcome = client.obfuscate(center.lat, center.lng, policy, seed=0)
        assert small_tree_with_priors.node(outcome.reported_node_id).level == 1

    def test_preferences_prune_locations(self, client, small_tree_with_priors):
        # Mark one specific (non-central) leaf as to-be-avoided and check it is
        # pruned out of the customized matrix and never reported.
        center = small_tree_with_priors.root.center
        real_leaf = small_tree_with_priors.leaf_for_latlng(center.lat, center.lng)
        avoided = next(
            leaf for leaf in small_tree_with_priors.leaves() if leaf.node_id != real_leaf.node_id
        )
        small_tree_with_priors.annotate(avoided.node_id, {"avoid": True})
        policy = Policy(privacy_level=1, precision_level=0, preferences=["avoid != True"], delta=1)
        outcome = client.obfuscate(center.lat, center.lng, policy, seed=1)
        assert outcome.pruned_ids == [avoided.node_id]
        assert avoided.node_id not in outcome.customized_matrix
        assert outcome.reported_node_id != avoided.node_id

    def test_report_latlng_wrapper(self, client, small_tree_with_priors):
        center = small_tree_with_priors.root.center
        lat, lng = client.report_latlng(center.lat, center.lng, Policy(privacy_level=1, delta=0), seed=2)
        assert small_tree_with_priors.contains_latlng(lat, lng)

    def test_outside_region_rejected(self, client):
        with pytest.raises(KeyError):
            client.obfuscate(0.0, 0.0, Policy(privacy_level=1, delta=0))

    def test_user_attributes_cached(self, client):
        first = client.user_attributes()
        second = client.user_attributes()
        assert first is second
        assert first is not None

    def test_deterministic_given_seed(self, client, small_tree_with_priors):
        center = small_tree_with_priors.root.center
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        a = client.obfuscate(center.lat, center.lng, policy, seed=77).reported_node_id
        b = client.obfuscate(center.lat, center.lng, policy, seed=77).reported_node_id
        assert a == b


class TestObfuscationSession:
    def test_session_reports(self, client, small_tree_with_priors):
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        session = ObfuscationSession(client, policy)
        center = small_tree_with_priors.root.center
        reports = session.report_many([(center.lat, center.lng)] * 3, seed=0)
        assert len(reports) == 3
        assert len(session.reports) == 3
        for report in reports:
            assert small_tree_with_priors.contains_latlng(*report.reported_latlng)

    def test_session_caches_customized_matrix(self, client, small_tree_with_priors):
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        session = ObfuscationSession(client, policy)
        center = small_tree_with_priors.root.center
        session.report(center.lat, center.lng, seed=1)
        cached = dict(session._customized)
        session.report(center.lat, center.lng, seed=2)
        assert dict(session._customized) == cached

    def test_session_invalidate(self, client, small_tree_with_priors):
        policy = Policy(privacy_level=1, precision_level=0, delta=1)
        session = ObfuscationSession(client, policy)
        center = small_tree_with_priors.root.center
        session.report(center.lat, center.lng, seed=1)
        session.invalidate()
        assert not session._customized
