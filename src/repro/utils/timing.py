"""Wall-clock timing helpers used by the experiment drivers.

The paper reports running-time comparisons in Fig. 10(a) (graph
approximation) and Fig. 14 (precision reduction vs matrix recalculation).
These helpers provide a context manager and a small record type so that the
experiment drivers and the pytest-benchmark harness share one notion of
"elapsed seconds".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class Stopwatch:
    """Accumulates named timing segments.

    Experiment drivers use a stopwatch to report a per-phase breakdown
    (constraint construction, LP solve, RPB update) alongside the totals.
    """

    segments: Dict[str, float] = field(default_factory=dict)
    _starts: Dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        """Start (or restart) the segment *name*."""
        self._starts[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop segment *name* and return the elapsed seconds of this run."""
        if name not in self._starts:
            raise KeyError(f"segment {name!r} was never started")
        elapsed = time.perf_counter() - self._starts.pop(name)
        self.segments[name] = self.segments.get(name, 0.0) + elapsed
        return elapsed

    def record(self, name: str, seconds: float) -> float:
        """Accumulate an externally measured duration into segment *name*.

        Unlike the :meth:`start`/:meth:`stop` pair this has no shared
        pending-start state, so concurrent callers (e.g. parallel engine
        builds, each timing itself with a local :class:`Timer`) can safely
        record into the same stopwatch when the caller serialises the call.
        """
        self.segments[name] = self.segments.get(name, 0.0) + float(seconds)
        return float(seconds)

    def total(self) -> float:
        """Total seconds across all recorded segments."""
        return float(sum(self.segments.values()))

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the recorded segments."""
        return dict(self.segments)


def time_call(func: Callable[..., Any], *args: Any, repeats: int = 1, **kwargs: Any) -> Tuple[Any, float]:
    """Call *func* and return ``(result, best_elapsed_seconds)``.

    With ``repeats > 1`` the call is repeated and the minimum elapsed time is
    reported, mirroring ``timeit`` best-of-N semantics used for the small,
    fast operations in Fig. 14 (precision reduction takes microseconds).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best


def format_seconds(seconds: float) -> str:
    """Human-readable rendering used in printed experiment tables."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    return f"{seconds / 60.0:.2f} min"


def summarize_times(times: List[float]) -> Dict[str, float]:
    """Return min / mean / max statistics for a list of timings."""
    if not times:
        return {"min": 0.0, "mean": 0.0, "max": 0.0, "count": 0}
    return {
        "min": float(min(times)),
        "mean": float(sum(times) / len(times)),
        "max": float(max(times)),
        "count": float(len(times)),
    }
