"""Process-parallel execution of independent robust-generation problems.

Algorithm 3 generates one robust matrix per sub-tree at the privacy level;
the problems share no state, so they fan out across worker processes.  A
task carries only plain arrays (node ids, distances, cost matrix, priors,
constraint pairs) plus scalar knobs, which keeps pickling cheap and avoids
shipping the whole location tree to every worker; the worker rebuilds the
LP objective with :class:`~repro.core.objective.LinearQualityModel`.

Determinism: results are returned in task order regardless of worker count
or completion order (``ProcessPoolExecutor.map`` semantics), and every
worker runs the exact same serial code path as ``max_workers=1``, so the
output is bit-identical to the serial loop.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.geoind import GeoIndConstraintSet
from repro.core.lp import ConstraintStructure
from repro.core.objective import LinearQualityModel
from repro.core.robust import RobustGenerationResult, RobustMatrixGenerator
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class RobustGenerationTask:
    """One self-contained robust-generation problem (picklable).

    Attributes mirror the :class:`~repro.core.robust.RobustMatrixGenerator`
    arguments; ``key`` is an opaque caller-side identifier (the sub-tree
    root id on the server) carried through to correlate results.
    """

    key: str
    node_ids: List[str]
    distance_matrix_km: np.ndarray
    cost_matrix: np.ndarray
    priors: Optional[np.ndarray]
    epsilon: float
    delta: int
    constraint_pairs: Optional[np.ndarray] = None
    constraint_distances_km: Optional[np.ndarray] = None
    constraint_description: str = "custom"
    max_iterations: int = 10
    rpb_method: str = "approx"
    basis_row: str = "real"
    solver_method: str = "highs"
    level: int = 0
    metadata: dict = field(default_factory=dict)

    def constraint_set(self) -> Optional[GeoIndConstraintSet]:
        """Rebuild the constraint set, or None for the all-pairs default."""
        if self.constraint_pairs is None:
            return None
        return GeoIndConstraintSet(
            pairs=self.constraint_pairs,
            distances_km=self.constraint_distances_km,
            description=self.constraint_description,
        )


def execute_robust_task(
    task: RobustGenerationTask,
    *,
    structure: Optional[ConstraintStructure] = None,
) -> RobustGenerationResult:
    """Run Algorithm 1 for one task (the worker entry point).

    ``structure`` optionally injects a pre-built
    :class:`~repro.core.lp.ConstraintStructure` congruent with the task's
    constraint pairs, so sibling problems with identical geometry skip the
    structural assembly; the refreshed coefficients are identical to a cold
    build, so results do not depend on whether a structure was shared.
    """
    quality_model = LinearQualityModel(task.cost_matrix, task.priors)
    generator = RobustMatrixGenerator(
        task.node_ids,
        task.distance_matrix_km,
        quality_model,
        task.epsilon,
        task.delta,
        constraint_set=task.constraint_set(),
        max_iterations=task.max_iterations,
        rpb_method=task.rpb_method,  # type: ignore[arg-type]
        basis_row=task.basis_row,  # type: ignore[arg-type]
        solver_method=task.solver_method,
        structure=structure,
        level=task.level,
    )
    result = generator.generate()
    result.matrix.metadata.update(task.metadata)
    return result


def execute_robust_task_group(
    tasks: Sequence[RobustGenerationTask],
) -> List[RobustGenerationResult]:
    """Execute a batch of congruent tasks sharing one constraint structure.

    The first graph-constrained task builds the structure; every later task
    whose pairs match reuses it (refresh-in-place).  Tasks without explicit
    constraint pairs — the all-pairs formulation, whose constraint set is
    derived from each task's own distance matrix — run unshared, as do tasks
    whose geometry turns out not to match (defensive; the caller groups by
    :func:`~repro.pipeline.fingerprint.structure_fingerprint`, which already
    prevents that).
    """
    structure: Optional[ConstraintStructure] = None
    results: List[RobustGenerationResult] = []
    for task in tasks:
        constraint_set = task.constraint_set()
        if constraint_set is None:
            results.append(execute_robust_task(task))
            continue
        size = len(task.node_ids)
        if structure is None or not structure.compatible_with(size, constraint_set):
            structure = ConstraintStructure(size, constraint_set)
        results.append(execute_robust_task(task, structure=structure))
    return results


def run_robust_tasks(
    tasks: Sequence[RobustGenerationTask],
    *,
    max_workers: int = 1,
) -> List[RobustGenerationResult]:
    """Execute every task, serially or across processes, in task order.

    ``max_workers <= 1`` (or a single task) runs the plain serial loop.
    When worker processes cannot be spawned (restricted environments), the
    executor logs a warning and falls back to the serial path rather than
    failing the request.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    tasks = list(tasks)
    if max_workers == 1 or len(tasks) <= 1:
        return [execute_robust_task(task) for task in tasks]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(tasks))) as pool:
            return list(pool.map(execute_robust_task, tasks))
    except (OSError, BrokenProcessPool) as error:
        # OSError: workers could not be spawned at all; BrokenProcessPool: a
        # worker died mid-run (OOM kill, spawn re-import failure).  Task-level
        # exceptions (e.g. infeasible LPs) propagate with their original type.
        logger.warning(
            "parallel generation unavailable (%s); falling back to serial", error
        )
        return [execute_robust_task(task) for task in tasks]


def run_robust_task_groups(
    groups: Sequence[Sequence[RobustGenerationTask]],
    *,
    max_workers: int = 1,
) -> List[List[RobustGenerationResult]]:
    """Execute groups of congruent tasks, serially or across processes.

    Each group shares one constraint structure (built inside the executing
    worker, so nothing scipy-sparse crosses a process boundary); groups are
    independent and fan out exactly like individual tasks in
    :func:`run_robust_tasks`.  Results are returned per group, in group and
    task order, identical for every worker count.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    groups = [list(group) for group in groups]
    if max_workers == 1 or len(groups) <= 1:
        return [execute_robust_task_group(group) for group in groups]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(groups))) as pool:
            return list(pool.map(execute_robust_task_group, groups))
    except (OSError, BrokenProcessPool) as error:
        logger.warning(
            "parallel generation unavailable (%s); falling back to serial", error
        )
        return [execute_robust_task_group(group) for group in groups]
