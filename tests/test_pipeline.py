"""Tests for the matrix-generation pipeline.

Covers the incremental constraint-structure reuse in the LP layer, the
content-addressed MatrixCache (hit/miss, eviction, fingerprint
sensitivity), the process-parallel executor (parallel == serial), the
server's full-configuration cache keys (no stale forests after a config
change) and the vectorised exact reserved-privacy-budget path
(bit-identical to the original subset-enumeration loop).
"""

import itertools
import math

import numpy as np
import pytest

from repro.core.lp import ConstraintStructure, ObfuscationLP
from repro.core.objective import LinearQualityModel
from repro.core.robust import (
    RobustMatrixGenerator,
    _MASS_CEILING,
    reserved_privacy_budget_exact,
)
from repro.pipeline.cache import MatrixCache
from repro.pipeline.executor import (
    RobustGenerationTask,
    run_robust_task_groups,
    run_robust_tasks,
)
from repro.pipeline.fingerprint import (
    array_digest,
    constraint_set_digest,
    fingerprint_fields,
    geometry_fingerprint,
    problem_fingerprint,
)
from repro.server.server import CORGIServer, ServerConfig

from tests.conftest import TEST_EPSILON


def _fresh_lp(small_location_set, epsilon=TEST_EPSILON, **kwargs):
    return ObfuscationLP(
        small_location_set["node_ids"],
        small_location_set["distance_matrix"],
        small_location_set["quality_model"],
        epsilon,
        constraint_set=small_location_set["graph"].constraint_set(),
        **kwargs,
    )


class TestConstraintStructure:
    def test_refreshed_matrix_matches_cold_assembly(self, small_location_set):
        """The in-place coefficient refresh reproduces a from-scratch A_ub exactly."""
        lp = _fresh_lp(small_location_set)
        budget = np.full((7, 7), 0.3)
        np.fill_diagonal(budget, 0.0)
        refreshed = lp.build_inequalities(budget).toarray()

        # Reference: the seed's one-shot COO assembly.
        size = lp.size
        pairs = lp.constraint_set.pairs
        num_pairs = pairs.shape[0]
        factors = np.exp(lp.effective_epsilons(budget) * lp.constraint_set.distances_km)
        columns = np.tile(np.arange(size), num_pairs)
        rows = np.arange(num_pairs * size)
        i_vars = np.repeat(pairs[:, 0], size) * size + columns
        j_vars = np.repeat(pairs[:, 1], size) * size + columns
        reference = np.zeros((num_pairs * size, size * size))
        reference[rows, i_vars] = 1.0
        reference[rows, j_vars] = -np.repeat(factors, size)
        assert np.array_equal(refreshed, reference)

    def test_incremental_resolve_equals_cold_solve(self, small_location_set):
        """Re-solving through one LP instance equals a cold LP per solve."""
        budgets = [None, np.full((7, 7), 0.2), np.full((7, 7), 0.5)]
        for budget in budgets:
            if budget is not None:
                np.fill_diagonal(budget, 0.0)

        incremental_lp = _fresh_lp(small_location_set)
        for budget in budgets:
            cold = _fresh_lp(small_location_set).solve(reserved_budget=budget)
            warm = incremental_lp.solve(reserved_budget=budget)
            assert warm.status == cold.status == "optimal"
            assert warm.objective_value == pytest.approx(cold.objective_value, abs=1e-12)
            assert np.allclose(warm.matrix.values, cold.matrix.values, atol=1e-12)
        assert incremental_lp.structure.refresh_count == len(budgets)

    def test_structure_shared_across_epsilons(self, small_location_set):
        structure = ConstraintStructure(7, small_location_set["graph"].constraint_set())
        for epsilon in (1.0, 2.0, 4.0):
            shared = _fresh_lp(small_location_set, epsilon=epsilon, structure=structure)
            cold = _fresh_lp(small_location_set, epsilon=epsilon)
            warm_solution = shared.solve_nonrobust()
            cold_solution = cold.solve_nonrobust()
            assert np.allclose(
                warm_solution.matrix.values, cold_solution.matrix.values, atol=1e-12
            )
            assert warm_solution.diagnostics["structure_shared"] is True

    def test_incompatible_structure_rejected(self, small_location_set):
        wrong = ConstraintStructure(
            7,
            small_location_set["graph"].constraint_set(),
        )
        # Same size but different pairs: drop one pair.
        constraints = small_location_set["graph"].constraint_set()
        trimmed = type(constraints)(
            pairs=constraints.pairs[:-2],
            distances_km=constraints.distances_km[:-2],
            description="trimmed",
        )
        with pytest.raises(ValueError):
            ObfuscationLP(
                small_location_set["node_ids"],
                small_location_set["distance_matrix"],
                small_location_set["quality_model"],
                TEST_EPSILON,
                constraint_set=trimmed,
                structure=wrong,
            )

    def test_diagnostics_report_reuse(self, small_location_set):
        lp = _fresh_lp(small_location_set)
        first = lp.solve_nonrobust()
        second = lp.solve_nonrobust()
        assert first.diagnostics["structure_reused"] is False
        assert second.diagnostics["structure_reused"] is True
        assert second.diagnostics["structure_refresh_count"] == 2
        assert first.diagnostics["matrix_build_time_s"] >= 0.0

    def test_generator_reuses_structure_across_iterations(self, small_location_set):
        generator = RobustMatrixGenerator(
            small_location_set["node_ids"],
            small_location_set["distance_matrix"],
            small_location_set["quality_model"],
            TEST_EPSILON,
            delta=1,
            constraint_set=small_location_set["graph"].constraint_set(),
            max_iterations=3,
        )
        result = generator.generate()
        # Non-robust solve + 3 robust iterations over one shared structure.
        assert generator.lp.structure.refresh_count == 4
        assert result.solutions[-1].diagnostics["structure_reused"] is True


class TestFingerprints:
    def test_fingerprint_stable(self):
        a = fingerprint_fields(epsilon=2.0, delta=1, name="x")
        b = fingerprint_fields(delta=1, epsilon=2.0, name="x")
        assert a == b

    def test_fingerprint_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            fingerprint_fields(value=object())

    def test_array_digest_sensitive_to_dtype_and_shape(self):
        data = np.arange(6, dtype=float)
        assert array_digest(data) != array_digest(data.astype(np.float32))
        assert array_digest(data) != array_digest(data.reshape(2, 3))

    def test_geometry_fingerprint_sensitive_to_order(self):
        distances = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert geometry_fingerprint(["a", "b"], distances) != geometry_fingerprint(
            ["b", "a"], distances
        )

    def test_problem_fingerprint_sensitive_to_every_field(self, small_location_set):
        constraints = small_location_set["graph"].constraint_set()
        base = dict(
            quality_digest=small_location_set["quality_model"].digest(),
            constraint_digest=constraint_set_digest(constraints),
            weighting="paper",
            basis_row="real",
            rpb_method="approx",
            max_iterations=4,
            solver_method="highs",
        )
        args = (small_location_set["node_ids"], small_location_set["distance_matrix"], 2.0, 1)
        reference = problem_fingerprint(*args, **base)
        assert problem_fingerprint(*args, **base) == reference

        variations = dict(
            quality_digest="0" * 64,
            constraint_digest="all-pairs-default",
            weighting="euclidean",
            basis_row="max",
            rpb_method="exact",
            max_iterations=5,
            solver_method="highs-ipm",
        )
        for field_name, changed in variations.items():
            kwargs = dict(base)
            kwargs[field_name] = changed
            assert problem_fingerprint(*args, **kwargs) != reference, field_name
        # Scalars in the positional part.
        assert problem_fingerprint(args[0], args[1], 3.0, 1, **base) != reference
        assert problem_fingerprint(args[0], args[1], 2.0, 2, **base) != reference


class TestMatrixCache:
    def test_hit_miss_statistics(self):
        cache = MatrixCache(max_entries=4)
        assert cache.get("missing") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_get_or_compute(self):
        cache = MatrixCache(max_entries=4)
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", factory) == "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = MatrixCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh recency of "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_zero_entries_disables_storage(self):
        cache = MatrixCache(max_entries=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_clear_and_reset(self):
        cache = MatrixCache(max_entries=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        cache.reset_stats()
        assert cache.stats.lookups == 0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            MatrixCache(max_entries=-1)


class TestExecutor:
    def _tasks(self, small_location_set):
        constraints = small_location_set["graph"].constraint_set()
        model = small_location_set["quality_model"]
        return [
            RobustGenerationTask(
                key=f"delta={delta}",
                node_ids=small_location_set["node_ids"],
                distance_matrix_km=small_location_set["distance_matrix"],
                cost_matrix=model.cost_matrix,
                priors=model.priors,
                epsilon=TEST_EPSILON,
                delta=delta,
                constraint_pairs=constraints.pairs,
                constraint_distances_km=constraints.distances_km,
                constraint_description=constraints.description,
                max_iterations=2,
            )
            for delta in (0, 1)
        ]

    def test_parallel_equals_serial(self, small_location_set):
        tasks = self._tasks(small_location_set)
        serial = run_robust_tasks(tasks, max_workers=1)
        parallel = run_robust_tasks(tasks, max_workers=2)
        assert len(serial) == len(parallel) == len(tasks)
        for serial_result, parallel_result in zip(serial, parallel):
            assert np.allclose(
                serial_result.matrix.values, parallel_result.matrix.values, atol=1e-12
            )
            assert serial_result.objective_history == parallel_result.objective_history

    def test_task_equals_direct_generator(self, small_location_set):
        task = self._tasks(small_location_set)[1]
        [from_task] = run_robust_tasks([task], max_workers=1)
        direct = RobustMatrixGenerator(
            small_location_set["node_ids"],
            small_location_set["distance_matrix"],
            small_location_set["quality_model"],
            TEST_EPSILON,
            delta=1,
            constraint_set=small_location_set["graph"].constraint_set(),
            max_iterations=2,
        ).generate()
        assert np.allclose(from_task.matrix.values, direct.matrix.values, atol=1e-12)
        assert from_task.objective_history == pytest.approx(direct.objective_history, abs=1e-12)

    def test_invalid_worker_count(self, small_location_set):
        with pytest.raises(ValueError):
            run_robust_tasks(self._tasks(small_location_set), max_workers=0)

    def test_grouped_equals_ungrouped(self, small_location_set):
        """Sharing one structure across a group changes nothing in the results."""
        tasks = self._tasks(small_location_set)
        ungrouped = run_robust_tasks(tasks, max_workers=1)
        [grouped] = run_robust_task_groups([tasks], max_workers=1)
        split = run_robust_task_groups([[task] for task in tasks], max_workers=2)
        for reference, shared, solo in zip(ungrouped, grouped, [r for g in split for r in g]):
            assert np.array_equal(reference.matrix.values, shared.matrix.values)
            assert np.array_equal(reference.matrix.values, solo.matrix.values)
            assert reference.objective_history == shared.objective_history


@pytest.fixture()
def pipeline_server(small_tree_with_priors):
    config = ServerConfig(
        epsilon=2.0,
        num_targets=5,
        robust_iterations=2,
        keep_generation_results=False,
    )
    return CORGIServer(small_tree_with_priors, config)


class TestServerPipeline:
    def test_forest_cache_hit(self, pipeline_server):
        first = pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        second = pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        assert first is second

    def test_config_change_invalidates_cache(self, pipeline_server):
        """Satellite fix: mutating result-affecting config fields must not serve stale forests."""
        first = pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        pipeline_server.config.robust_iterations = 1
        second = pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        assert first is not second
        pipeline_server.config.rpb_basis_row = "max"
        third = pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        assert third is not second

    def test_external_config_mutation_is_inert(self, small_tree_with_priors):
        """Satellite fix: the server snapshots its config (copy-on-configure).

        Mutating the config object the caller constructed the server with
        must neither change the server's behaviour nor poison its caches —
        the server owns a private copy.
        """
        config = ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=2)
        server = CORGIServer(small_tree_with_priors, config)
        first = server.generate_privacy_forest(privacy_level=1, delta=1)
        config.robust_iterations = 1  # the caller's object, not the server's
        assert server.config.robust_iterations == 2
        second = server.generate_privacy_forest(privacy_level=1, delta=1)
        assert first is second  # same fingerprint, cache hit

    def test_target_config_mutation_refreshes_derived_targets(self, small_tree_with_priors):
        """Mutating num_targets/target_seed on the server's own config must
        regenerate the derived target distribution (not serve one built for
        the old settings) and invalidate cached forests."""
        server = CORGIServer(
            small_tree_with_priors,
            ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=1),
        )
        first = server.generate_privacy_forest(privacy_level=1, delta=0)
        old_targets = server.targets
        server.config.num_targets = 3
        assert server.targets is not old_targets
        assert server.targets.size == 3
        second = server.generate_privacy_forest(privacy_level=1, delta=0)
        assert first is not second

    def test_prior_change_invalidates_cache(self, pipeline_server):
        first = pipeline_server.generate_privacy_forest(privacy_level=1, delta=0)
        leaf = pipeline_server.tree.leaves()[0]
        original_prior = leaf.prior
        try:
            leaf.prior = original_prior * 0.5 + 0.01
            second = pipeline_server.generate_privacy_forest(privacy_level=1, delta=0)
        finally:
            leaf.prior = original_prior
        assert first is not second

    def test_matrix_cache_serves_repeat_subproblems(self, pipeline_server):
        pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        solved = pipeline_server.matrix_cache.stats.misses
        assert solved >= 1
        # Drop only the forest-level cache: the per-sub-tree problems are
        # unchanged, so the rebuild is served from the matrix cache.
        pipeline_server._forest_cache.clear()
        rebuilt = pipeline_server.generate_privacy_forest(privacy_level=1, delta=1)
        assert pipeline_server.matrix_cache.stats.hits >= 1
        assert pipeline_server.matrix_cache.stats.misses == solved
        assert rebuilt.is_complete()

    def test_parallel_forest_equals_serial(self, small_tree_with_priors):
        serial_server = CORGIServer(
            small_tree_with_priors,
            ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=2, max_workers=1),
        )
        parallel_server = CORGIServer(
            small_tree_with_priors,
            ServerConfig(epsilon=2.0, num_targets=5, robust_iterations=2, max_workers=2),
        )
        serial_forest = serial_server.generate_privacy_forest(privacy_level=0, delta=0)
        parallel_forest = parallel_server.generate_privacy_forest(privacy_level=0, delta=0)
        assert len(serial_forest) == len(parallel_forest) == 7
        for (root_id, serial_matrix), (parallel_root, parallel_matrix) in zip(
            serial_forest, parallel_forest
        ):
            assert root_id == parallel_root
            assert np.allclose(serial_matrix.values, parallel_matrix.values, atol=1e-12)

    def test_cache_diagnostics(self, pipeline_server):
        pipeline_server.generate_privacy_forest(privacy_level=1, delta=0)
        diagnostics = pipeline_server.cache_diagnostics()
        assert diagnostics["forest_entries"] >= 1
        assert diagnostics["matrix_entries"] >= 1
        assert 0.0 <= diagnostics["matrix_stats"]["hit_rate"] <= 1.0

    def test_clear_cache_drops_both_layers(self, pipeline_server):
        pipeline_server.generate_privacy_forest(privacy_level=1, delta=0)
        pipeline_server.clear_cache()
        assert pipeline_server.cache_size() == 0
        assert len(pipeline_server.matrix_cache) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_workers=0).validate()
        with pytest.raises(ValueError):
            ServerConfig(matrix_cache_entries=-1).validate()


class TestLinearQualityModel:
    def test_digest_matches_content(self, small_location_set):
        model = small_location_set["quality_model"]
        clone = LinearQualityModel(model.cost_matrix.copy(), model.priors.copy())
        assert clone.digest() == model.digest()
        perturbed = LinearQualityModel(model.cost_matrix + 1e-9, model.priors)
        assert perturbed.digest() != model.digest()

    def test_objective_vector_matches(self, small_location_set):
        model = small_location_set["quality_model"]
        clone = LinearQualityModel(model.cost_matrix, model.priors)
        assert np.array_equal(clone.objective_vector(), model.objective_vector())

    def test_invalid_cost_matrix(self):
        with pytest.raises(ValueError):
            LinearQualityModel(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            LinearQualityModel(np.zeros((0, 0)))


def _reference_exact_rpb(values, distance_matrix_km, delta):
    """The seed's scalar subset-enumeration loop, kept verbatim as the oracle."""
    values = np.asarray(values, dtype=float)
    distances = np.asarray(distance_matrix_km, dtype=float)
    size = values.shape[0]
    budget = np.zeros((size, size))
    if delta == 0:
        return budget
    delta = min(delta, size)
    subsets = []
    for cardinality in range(1, delta + 1):
        subsets.extend(itertools.combinations(range(size), cardinality))
    for i in range(size):
        for j in range(size):
            if i == j or distances[i, j] <= 0:
                continue
            best_ratio = 1.0
            for subset in subsets:
                removed_i = min(values[i, list(subset)].sum(), _MASS_CEILING)
                removed_j = min(values[j, list(subset)].sum(), _MASS_CEILING)
                ratio = (1.0 - removed_j) / (1.0 - removed_i)
                if ratio > best_ratio:
                    best_ratio = ratio
            budget[i, j] = math.log(best_ratio) / distances[i, j]
    return budget


class TestExactRPBVectorization:
    @pytest.mark.parametrize("size,delta", [(4, 1), (5, 2), (6, 3), (3, 5)])
    def test_bit_identical_to_reference(self, size, delta):
        rng = np.random.default_rng(size * 10 + delta)
        values = rng.random((size, size))
        values /= values.sum(axis=1, keepdims=True)
        distances = rng.random((size, size))
        distances = (distances + distances.T) / 2.0
        np.fill_diagonal(distances, 0.0)
        expected = _reference_exact_rpb(values, distances, delta)
        actual = reserved_privacy_budget_exact(values, distances, delta)
        assert np.array_equal(actual, expected)

    def test_bit_identical_on_lp_solution(self, nonrobust_solution, small_location_set):
        values = nonrobust_solution.matrix.values
        distances = small_location_set["distance_matrix"]
        expected = _reference_exact_rpb(values, distances, 2)
        actual = reserved_privacy_budget_exact(values, distances, 2)
        assert np.array_equal(actual, expected)
