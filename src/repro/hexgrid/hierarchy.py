"""Aperture-7 hierarchy between grid resolutions.

Every cell at resolution ``n`` is subdivided into exactly seven cells at
resolution ``n + 1``: the child directly under the parent's centre plus the
six immediate neighbours of that centre child — the classic "flower"
subdivision (generalised balanced ternary), which is also what Uber's H3
uses.  The parent lattice is a sublattice of index 7 of the child lattice,
generated (in child axial coordinates) by ``(2, 1)`` and ``(-1, 3)``.

The key invariants, verified by the property tests:

* every cell has exactly one parent (the flower tiles the plane);
* ``cell_parent(child) == parent`` for every ``child in cell_children(parent)``;
* a cell's descendants ``k`` levels down number exactly ``7**k`` and are
  pairwise disjoint between sibling ancestors — i.e. children partition the
  parent, which is exactly the location-tree requirement of Definition 3.1.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hexgrid.cell import HexCell
from repro.hexgrid.lattice import Axial, axial_add, axial_neighbors, axial_round

#: Number of children per cell.
APERTURE = 7

#: Child offsets (in child-resolution axial coordinates) around the centre
#: child: the centre itself plus its six immediate neighbours.
FLOWER_OFFSETS: Tuple[Axial, ...] = (
    (0, 0),
    (1, 0),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (0, -1),
    (1, -1),
)

#: Images of the parent axial basis vectors in child axial coordinates.  The
#: matrix ``M = [[2, -1], [1, 3]]`` (columns ``(2, 1)`` and ``(-1, 3)``) has
#: determinant 7 and maps the parent lattice onto a sublattice of the child
#: lattice whose points are spaced ``sqrt(7)`` child-units apart.
_M00, _M01 = 2, -1
_M10, _M11 = 1, 3
_DET = _M00 * _M11 - _M01 * _M10  # == 7


def center_child_axial(parent_axial: Axial) -> Axial:
    """Axial coordinates (child resolution) of the centre child of *parent_axial*."""
    q, r = parent_axial
    return (_M00 * q + _M01 * r, _M10 * q + _M11 * r)


def _parent_candidate(child_axial: Axial) -> Axial:
    """Approximate parent axial coordinates of *child_axial* (before flower search)."""
    q, r = child_axial
    # Inverse of M, times det 7: adj(M) = [[3, 1], [-1, 2]].
    qf = (_M11 * q - _M01 * r) / _DET
    rf = (-_M10 * q + _M00 * r) / _DET
    return axial_round(qf, rf)


def cell_parent(cell: HexCell) -> HexCell:
    """Return the parent of *cell* one resolution coarser.

    Raises
    ------
    ValueError
        If *cell* is already at resolution 0.
    """
    if cell.resolution == 0:
        raise ValueError("resolution-0 cells have no parent")
    child_axial = cell.axial
    candidate = _parent_candidate(child_axial)
    for parent_axial in [candidate] + axial_neighbors(candidate):
        center = center_child_axial(parent_axial)
        offset = (child_axial[0] - center[0], child_axial[1] - center[1])
        if offset in FLOWER_OFFSETS:
            return HexCell(cell.resolution - 1, parent_axial[0], parent_axial[1])
    # The flower tiling guarantees a parent exists within the immediate
    # neighbourhood of the rounded candidate; reaching this line indicates a
    # logic error rather than bad input.
    raise AssertionError(f"no parent found for {cell!r}; hierarchy invariant violated")


def cell_children(cell: HexCell) -> List[HexCell]:
    """Return the seven children of *cell* one resolution finer."""
    center = center_child_axial(cell.axial)
    return [
        HexCell(cell.resolution + 1, *axial_add(center, offset))
        for offset in FLOWER_OFFSETS
    ]


def cell_ancestor(cell: HexCell, resolution: int) -> HexCell:
    """Return the ancestor of *cell* at the requested (coarser) resolution.

    ``cell_ancestor(cell, cell.resolution)`` returns *cell* itself.
    """
    if resolution < 0:
        raise ValueError(f"resolution must be non-negative, got {resolution}")
    if resolution > cell.resolution:
        raise ValueError(
            f"ancestor resolution {resolution} is finer than the cell's resolution {cell.resolution}"
        )
    current = cell
    while current.resolution > resolution:
        current = cell_parent(current)
    return current


def cell_descendants(cell: HexCell, resolution: int) -> List[HexCell]:
    """Return all descendants of *cell* at the requested (finer) resolution.

    The result has exactly ``7 ** (resolution - cell.resolution)`` cells.
    """
    if resolution < cell.resolution:
        raise ValueError(
            f"descendant resolution {resolution} is coarser than the cell's resolution {cell.resolution}"
        )
    current = [cell]
    while current and current[0].resolution < resolution:
        next_level: List[HexCell] = []
        for node in current:
            next_level.extend(cell_children(node))
        current = next_level
    return current


def is_ancestor(ancestor: HexCell, descendant: HexCell) -> bool:
    """Whether *ancestor* lies on the parent chain of *descendant* (or equals it)."""
    if ancestor.resolution > descendant.resolution:
        return False
    return cell_ancestor(descendant, ancestor.resolution) == ancestor
