"""Quality loss / utility model (Eqs. 3, 6 and 7).

The utility of reporting an obfuscated location is measured through the
estimation error of travelling distance: if the user is really at ``v_i``,
reports ``v_l`` and the service needs the distance to a target ``v_n`` (a
pick-up point, a restaurant, ...), the error is

    U(v_i, v_l, v_n) = | d(v_i, v_n) - d(v_l, v_n) |          (Eq. 3)

with ``d`` the haversine distance.  Averaging over the prior of real
locations, the rows of the matrix and a distribution over targets gives the
expected quality loss Δ(Z) of Eqs. (6)–(7), which is the LP objective.

Because Δ(Z) is linear in the matrix entries, the whole model reduces to a
cost matrix ``C`` with ``C[i, l] = Σ_n Pr(Q = v_n) U(v_i, v_l, v_n)`` and
``Δ(Z) = Σ_i p_i Σ_l z_{i,l} C[i, l]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix import ObfuscationMatrix
from repro.geometry.haversine import haversine_matrix_km
from repro.utils.hashing import array_digest
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import ensure_probability_vector


def estimation_error_km(
    real: Tuple[float, float],
    reported: Tuple[float, float],
    target: Tuple[float, float],
) -> float:
    """Single-triple utility ``U(v_i, v_l, v_n)`` of Eq. (3), in km."""
    from repro.geometry.haversine import haversine_km

    real_to_target = haversine_km(real[0], real[1], target[0], target[1])
    reported_to_target = haversine_km(reported[0], reported[1], target[0], target[1])
    return abs(real_to_target - reported_to_target)


@dataclass
class TargetDistribution:
    """A finite set of service target locations with selection probabilities.

    The paper samples ``NR_TARGET = 49`` targets uniformly from the leaf
    nodes; :meth:`sample_from_centers` reproduces that workload while custom
    distributions (e.g. popularity-weighted pick-up points) can be supplied
    directly.
    """

    locations: List[Tuple[float, float]]
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        self.locations = [(float(lat), float(lng)) for lat, lng in self.locations]
        self.probabilities = ensure_probability_vector(
            np.asarray(self.probabilities, dtype=float), "target probabilities", normalize=True
        )
        if len(self.locations) != self.probabilities.shape[0]:
            raise ValueError("locations and probabilities must have the same length")

    @property
    def size(self) -> int:
        """Number of target locations."""
        return len(self.locations)

    @classmethod
    def uniform(cls, locations: Sequence[Tuple[float, float]]) -> "TargetDistribution":
        """Uniform distribution over the given target locations."""
        count = len(locations)
        if count == 0:
            raise ValueError("at least one target location is required")
        return cls(list(locations), np.full(count, 1.0 / count))

    @classmethod
    def sample_from_centers(
        cls,
        centers: Sequence[Tuple[float, float]],
        num_targets: int,
        seed: RandomState = None,
        *,
        weights: Optional[Sequence[float]] = None,
    ) -> "TargetDistribution":
        """Sample ``num_targets`` targets (with replacement) from candidate centres.

        This reproduces the paper's workload of targets "randomly selected
        from a list of leaf nodes".
        """
        if num_targets <= 0:
            raise ValueError(f"num_targets must be positive, got {num_targets}")
        if not centers:
            raise ValueError("centers must not be empty")
        rng = as_rng(seed)
        if weights is not None:
            probabilities = ensure_probability_vector(
                np.asarray(weights, dtype=float), "weights", normalize=True
            )
        else:
            probabilities = np.full(len(centers), 1.0 / len(centers))
        indices = rng.choice(len(centers), size=num_targets, p=probabilities)
        chosen = [centers[int(index)] for index in indices]
        return cls.uniform(chosen)


class LinearQualityModel:
    """A linear quality-loss model given directly by its cost matrix.

    This is the minimal interface the LP layer needs: a ``(K, K)`` cost
    matrix ``C`` and a prior ``p`` such that ``Δ(Z) = Σ_i p_i Σ_l z_{i,l}
    C[i, l]``.  :class:`QualityLossModel` derives the cost matrix from
    centres/targets; this base class lets the matrix-generation pipeline
    rebuild an identical objective from plain arrays (e.g. in a worker
    process or from a cache entry) without re-computing haversine distances.

    Parameters
    ----------
    cost_matrix:
        ``(K, K)`` array with ``C[i, l]`` the expected error of reporting
        ``v_l`` from ``v_i``, in km.
    priors:
        Prior probability of each real location (defaults to uniform).
    """

    def __init__(
        self,
        cost_matrix: np.ndarray,
        priors: Optional[Sequence[float]] = None,
    ) -> None:
        cost = np.asarray(cost_matrix, dtype=float)
        if cost.ndim != 2 or cost.shape[0] != cost.shape[1] or cost.shape[0] == 0:
            raise ValueError(f"cost matrix must be square and non-empty, got shape {cost.shape}")
        size = cost.shape[0]
        if priors is None:
            self.priors = np.full(size, 1.0 / size)
        else:
            self.priors = ensure_probability_vector(
                np.asarray(priors, dtype=float), "priors", normalize=True
            )
            if self.priors.shape[0] != size:
                raise ValueError(
                    f"priors must have one entry per centre ({size}), got {self.priors.shape[0]}"
                )
        self._cost = cost

    @property
    def cost_matrix(self) -> np.ndarray:
        """``C[i, l] = E_Q |d(v_i, Q) - d(v_l, Q)|`` in km (read-only view)."""
        return self._cost

    @property
    def size(self) -> int:
        """Number of candidate locations K."""
        return self._cost.shape[0]

    def digest(self) -> str:
        """Content hash of the model (cost matrix + priors).

        Used by the matrix-generation pipeline as the quality-model part of
        cache fingerprints: two models with bit-identical cost matrices and
        priors produce bit-identical LP objectives.
        """
        return array_digest(self._cost, self.priors)

    def expected_loss(self, matrix: ObfuscationMatrix | np.ndarray) -> float:
        """Expected estimation error Δ(Z) of Eq. (7), in km."""
        values = matrix.values if isinstance(matrix, ObfuscationMatrix) else np.asarray(matrix, dtype=float)
        if values.shape != self._cost.shape:
            raise ValueError(
                f"matrix shape {values.shape} does not match the model's {self._cost.shape}"
            )
        per_row = (values * self._cost).sum(axis=1)
        return float(self.priors @ per_row)

    def per_location_loss(self, matrix: ObfuscationMatrix | np.ndarray) -> np.ndarray:
        """Expected error conditioned on each real location (``Δ_q`` per row of Eq. 6)."""
        values = matrix.values if isinstance(matrix, ObfuscationMatrix) else np.asarray(matrix, dtype=float)
        return (values * self._cost).sum(axis=1)

    def objective_vector(self) -> np.ndarray:
        """Flattened LP objective coefficients ``c[i*K + l] = p_i * C[i, l]``.

        Minimising ``c · vec(Z)`` is exactly minimising Δ(Z).
        """
        return (self.priors[:, None] * self._cost).reshape(-1)

    def empirical_loss(
        self,
        matrix: ObfuscationMatrix,
        real_ids: Sequence[str],
        *,
        samples_per_location: int = 1,
        seed: RandomState = None,
    ) -> float:
        """Monte-Carlo estimate of the loss by actually sampling reports.

        Used by the experiments that evaluate on held-out "real locations"
        from the test split rather than on the prior expectation.
        """
        if samples_per_location <= 0:
            raise ValueError("samples_per_location must be positive")
        rng = as_rng(seed)
        total = 0.0
        count = 0
        for real_id in real_ids:
            row_index = matrix.index_of(real_id)
            row = np.clip(matrix.values[row_index], 0.0, None)
            row = row / row.sum()
            reported_indices = rng.choice(matrix.size, size=samples_per_location, p=row)
            for reported_index in reported_indices:
                total += float(self._cost[row_index, int(reported_index)])
                count += 1
        return total / count if count else 0.0


class QualityLossModel(LinearQualityModel):
    """Pre-computed linear quality-loss model over a fixed location set.

    Parameters
    ----------
    centers:
        ``(lat, lng)`` of the K candidate locations, in matrix order.
    targets:
        Distribution over service target locations.
    priors:
        Prior probability of each real location (defaults to uniform).
    """

    def __init__(
        self,
        centers: Sequence[Tuple[float, float]],
        targets: TargetDistribution,
        priors: Optional[Sequence[float]] = None,
    ) -> None:
        if not centers:
            raise ValueError("centers must not be empty")
        self.centers = [(float(lat), float(lng)) for lat, lng in centers]
        self.targets = targets
        super().__init__(self._build_cost_matrix(), priors)

    def _build_cost_matrix(self) -> np.ndarray:
        # center_to_target[i, n] = d(v_i, v_n)
        center_to_target = haversine_matrix_km(self.centers, self.targets.locations)
        # cost[i, l] = sum_n Pr(Q = n) |d(i, n) - d(l, n)|
        diff = np.abs(center_to_target[:, None, :] - center_to_target[None, :, :])
        return np.tensordot(diff, self.targets.probabilities, axes=([2], [0]))
