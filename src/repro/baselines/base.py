"""Common interface for location obfuscation mechanisms.

A mechanism maps a real location (one of a fixed, finite set of location
nodes) to a reported location from the same set.  Matrix-based mechanisms
(CORGI, the non-robust LP baseline, the uniform mechanism) expose their
stochastic matrix directly; sampling-based mechanisms (planar Laplace)
expose an empirical matrix estimated by Monte-Carlo so the same analysis
code (quality loss, Geo-Ind checking, Bayesian attacks) applies to all of
them.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.core.matrix import ObfuscationMatrix
from repro.utils.rng import RandomState, as_rng


class ObfuscationMechanism(abc.ABC):
    """Abstract base class for mechanisms defined over a fixed set of location nodes."""

    #: Human-readable mechanism name used in experiment tables.
    name: str = "mechanism"

    def __init__(self, node_ids: Sequence[str]) -> None:
        if not node_ids:
            raise ValueError("node_ids must not be empty")
        self.node_ids: List[str] = [str(node_id) for node_id in node_ids]
        self._node_index = {node_id: position for position, node_id in enumerate(self.node_ids)}
        if len(self._node_index) != len(self.node_ids):
            raise ValueError("node_ids must be unique")

    @property
    def size(self) -> int:
        """Number of candidate locations."""
        return len(self.node_ids)

    def index_of(self, node_id: str) -> int:
        """Index of a node id within the mechanism's location set."""
        try:
            return self._node_index[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not covered by this mechanism") from None

    @abc.abstractmethod
    def obfuscate(self, real_id: str, seed: RandomState = None) -> str:
        """Sample a reported location id for the real location *real_id*."""

    def obfuscate_many(self, real_id: str, count: int, seed: RandomState = None) -> List[str]:
        """Sample *count* reports for one real location (default: repeated calls)."""
        rng = as_rng(seed)
        return [self.obfuscate(real_id, rng) for _ in range(count)]

    def to_matrix(self, *, num_samples: int = 0, seed: RandomState = None) -> ObfuscationMatrix:
        """Return the mechanism's obfuscation matrix.

        Matrix-based mechanisms return it exactly and ignore the sampling
        arguments; sampling-based mechanisms estimate it empirically with
        ``num_samples`` draws per row (and must be given ``num_samples > 0``).
        """
        if num_samples <= 0:
            raise NotImplementedError(
                f"{type(self).__name__} has no closed-form matrix; pass num_samples > 0 to estimate one"
            )
        rng = as_rng(seed)
        values = np.zeros((self.size, self.size))
        for row, real_id in enumerate(self.node_ids):
            for reported_id in self.obfuscate_many(real_id, num_samples, rng):
                values[row, self.index_of(reported_id)] += 1.0
        values /= float(num_samples)
        return ObfuscationMatrix(values=values, node_ids=self.node_ids, metadata={"empirical": True})
