"""Property tests for the aperture-7 hierarchy and the geographic grid system."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.haversine import LatLng
from repro.geometry.projection import BoundingBox
from repro.hexgrid.cell import HexCell
from repro.hexgrid.grid import HexGridSystem
from repro.hexgrid.hierarchy import (
    APERTURE,
    FLOWER_OFFSETS,
    cell_ancestor,
    cell_children,
    cell_descendants,
    cell_parent,
    center_child_axial,
    is_ancestor,
)

cell_strategy = st.builds(
    HexCell,
    resolution=st.integers(1, 9),
    q=st.integers(-60, 60),
    r=st.integers(-60, 60),
)


class TestHierarchyInvariants:
    def test_aperture_is_seven(self):
        assert APERTURE == 7
        assert len(FLOWER_OFFSETS) == 7

    def test_children_count_and_uniqueness(self):
        cell = HexCell(4, 3, -2)
        children = cell_children(cell)
        assert len(children) == 7
        assert len(set(children)) == 7
        assert all(child.resolution == 5 for child in children)

    def test_parent_of_every_child_is_cell(self):
        cell = HexCell(3, -4, 6)
        for child in cell_children(cell):
            assert cell_parent(child) == cell

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            cell_parent(HexCell(0, 0, 0))

    def test_center_child_axial_determinant(self):
        # The map (q, r) -> (2q - r, q + 3r) must scale areas by 7.
        assert center_child_axial((1, 0)) == (2, 1)
        assert center_child_axial((0, 1)) == (-1, 3)

    @given(cell_strategy)
    @settings(max_examples=120, deadline=None)
    def test_every_cell_has_exactly_one_parent(self, cell):
        parent = cell_parent(cell)
        assert parent.resolution == cell.resolution - 1
        assert cell in cell_children(parent)

    @given(st.builds(HexCell, resolution=st.integers(0, 8), q=st.integers(-30, 30), r=st.integers(-30, 30)))
    @settings(max_examples=80, deadline=None)
    def test_siblings_partition(self, cell):
        # The 7 children of neighbouring parents never overlap.
        own_children = set(cell_children(cell))
        for dq, dr in [(1, 0), (0, 1), (-1, 1)]:
            neighbor = HexCell(cell.resolution, cell.q + dq, cell.r + dr)
            assert own_children.isdisjoint(cell_children(neighbor))


class TestAncestorsDescendants:
    def test_ancestor_at_own_resolution(self):
        cell = HexCell(5, 7, -2)
        assert cell_ancestor(cell, 5) == cell

    def test_ancestor_two_levels_up(self):
        cell = HexCell(5, 7, -2)
        ancestor = cell_ancestor(cell, 3)
        assert ancestor.resolution == 3
        assert is_ancestor(ancestor, cell)

    def test_ancestor_below_rejected(self):
        with pytest.raises(ValueError):
            cell_ancestor(HexCell(3, 0, 0), 4)
        with pytest.raises(ValueError):
            cell_ancestor(HexCell(3, 0, 0), -1)

    def test_descendants_count(self):
        cell = HexCell(4, 1, 1)
        assert len(cell_descendants(cell, 4)) == 1
        assert len(cell_descendants(cell, 5)) == 7
        assert len(cell_descendants(cell, 6)) == 49
        assert len(set(cell_descendants(cell, 6))) == 49

    def test_descendants_coarser_rejected(self):
        with pytest.raises(ValueError):
            cell_descendants(HexCell(4, 0, 0), 3)

    def test_descendants_have_this_ancestor(self):
        cell = HexCell(2, -3, 1)
        for descendant in cell_descendants(cell, 4):
            assert cell_ancestor(descendant, 2) == cell

    def test_is_ancestor_false_for_finer(self):
        assert not is_ancestor(HexCell(5, 0, 0), HexCell(3, 0, 0))

    @given(cell_strategy, st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_descendants_partition_between_siblings(self, cell, depth):
        resolution = cell.resolution + depth
        if resolution > 11:
            resolution = cell.resolution + 1
        mine = set(cell_descendants(cell, resolution))
        sibling = HexCell(cell.resolution, cell.q + 1, cell.r)
        theirs = set(cell_descendants(sibling, resolution))
        assert mine.isdisjoint(theirs)


@pytest.fixture(scope="module")
def grid():
    return HexGridSystem(LatLng(37.77, -122.42))


class TestHexGridSystem:
    def test_edge_lengths_shrink_by_sqrt7(self, grid):
        for resolution in range(0, 10):
            ratio = grid.edge_length_km(resolution) / grid.edge_length_km(resolution + 1)
            assert ratio == pytest.approx(math.sqrt(7.0))

    def test_neighbor_spacing(self, grid):
        assert grid.neighbor_spacing_km(5) == pytest.approx(math.sqrt(3.0) * grid.edge_length_km(5))

    def test_area_consistency(self, grid):
        # 7 children cover the same area as their parent.
        assert 7 * grid.cell_area_km2(6) == pytest.approx(grid.cell_area_km2(5))

    def test_invalid_resolution_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.edge_length_km(-1)
        with pytest.raises(ValueError):
            grid.latlng_to_cell(37.77, -122.42, 99)

    def test_invalid_base_edge(self):
        with pytest.raises(ValueError):
            HexGridSystem(LatLng(0, 0), base_edge_km=0)

    def test_origin_cell_is_zero(self, grid):
        for resolution in (0, 3, 7):
            cell = grid.latlng_to_cell(37.77, -122.42, resolution)
            assert cell.axial == (0, 0)

    def test_center_roundtrip(self, grid):
        for resolution in (6, 7, 8, 9):
            cell = grid.latlng_to_cell(37.80, -122.40, resolution)
            center = grid.cell_center_latlng(cell)
            assert grid.latlng_to_cell(center.lat, center.lng, resolution) == cell

    @given(st.floats(-0.05, 0.05), st.floats(-0.05, 0.05), st.integers(6, 10))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, dlat, dlng, resolution):
        grid = HexGridSystem(LatLng(37.77, -122.42))
        lat, lng = 37.77 + dlat, -122.42 + dlng
        cell = grid.latlng_to_cell(lat, lng, resolution)
        center = grid.cell_center_latlng(cell)
        assert grid.latlng_to_cell(center.lat, center.lng, resolution) == cell

    def test_neighbor_distances(self, grid):
        cell = grid.latlng_to_cell(37.77, -122.42, 8)
        spacing = grid.neighbor_spacing_km(8)
        from repro.hexgrid.lattice import axial_neighbors, diagonal_neighbors

        for q, r in axial_neighbors(cell.axial):
            assert grid.cell_distance_km(cell, HexCell(8, q, r)) == pytest.approx(spacing, rel=1e-2)
        for q, r in diagonal_neighbors(cell.axial):
            assert grid.cell_distance_km(cell, HexCell(8, q, r)) == pytest.approx(
                math.sqrt(3.0) * spacing, rel=1e-2
            )

    def test_boundary_has_six_vertices_at_edge_length(self, grid):
        cell = grid.latlng_to_cell(37.78, -122.41, 7)
        vertices = grid.cell_boundary_xy(cell)
        cx, cy = grid.cell_center_xy(cell)
        assert len(vertices) == 6
        for x, y in vertices:
            assert math.hypot(x - cx, y - cy) == pytest.approx(grid.edge_length_km(7), rel=1e-9)

    def test_boundary_latlng(self, grid):
        cell = grid.latlng_to_cell(37.78, -122.41, 7)
        assert len(grid.cell_boundary_latlng(cell)) == 6

    def test_distance_matrix_symmetric(self, grid):
        cells = grid.subdivide(grid.latlng_to_cell(37.77, -122.42, 7), 1)
        matrix = grid.cell_distance_matrix_km(cells)
        assert matrix.shape == (7, 7)
        assert (matrix >= 0).all()
        assert abs(matrix - matrix.T).max() < 1e-12

    def test_planar_vs_haversine_distance(self, grid):
        cells = grid.subdivide(grid.latlng_to_cell(37.77, -122.42, 7), 1)
        for cell in cells[1:]:
            planar = grid.planar_cell_distance_km(cells[0], cell)
            haversine = grid.cell_distance_km(cells[0], cell)
            assert planar == pytest.approx(haversine, rel=5e-3)

    def test_polyfill_covers_region(self, grid):
        region = BoundingBox(37.74, -122.47, 37.80, -122.38)
        cells = grid.polyfill(region, 7)
        assert len(cells) > 5
        for cell in cells:
            center = grid.cell_center_latlng(cell)
            assert region.contains(center.lat, center.lng)

    def test_cells_covering_disk(self, grid):
        center = LatLng(37.77, -122.42)
        cells = grid.cells_covering_disk(center, 1.0, 9)
        assert cells
        for cell in cells:
            assert grid.cell_center_latlng(cell).distance_km(center) <= 1.0 + 1e-6

    def test_cells_covering_disk_negative_radius(self, grid):
        with pytest.raises(ValueError):
            grid.cells_covering_disk(LatLng(0, 0), -1.0, 5)

    def test_subdivide_counts(self, grid):
        root = grid.latlng_to_cell(37.77, -122.42, 6)
        assert len(grid.subdivide(root, 0)) == 1
        assert len(grid.subdivide(root, 2)) == 49

    def test_subdivide_negative_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.subdivide(HexCell(5, 0, 0), -1)

    def test_for_region_constructor(self):
        region = BoundingBox(37.7, -122.5, 37.8, -122.4)
        grid = HexGridSystem.for_region(region)
        assert grid.origin.lat == pytest.approx(region.center.lat)
