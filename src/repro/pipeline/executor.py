"""Process-parallel execution of independent robust-generation problems.

Algorithm 3 generates one robust matrix per sub-tree at the privacy level;
the problems share no state, so they fan out across worker processes.  A
task carries only plain arrays (node ids, distances, cost matrix, priors,
constraint pairs) plus scalar knobs, which keeps pickling cheap and avoids
shipping the whole location tree to every worker; the worker rebuilds the
LP objective with :class:`~repro.core.objective.LinearQualityModel`.

Determinism: results are returned in task order regardless of worker count
or completion order (``ProcessPoolExecutor.map`` semantics), and every
worker runs the exact same serial code path as ``max_workers=1``, so the
output is bit-identical to the serial loop.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.geoind import GeoIndConstraintSet
from repro.core.lp import ConstraintStructure
from repro.core.objective import LinearQualityModel
from repro.core.robust import RobustGenerationResult, RobustMatrixGenerator
from repro.core.solver import SolverSession, create_session
from repro.pipeline.fingerprint import structure_fingerprint
from repro.utils.logging import get_logger

logger = get_logger(__name__)

class _ThreadLocalSolverState(threading.local):
    """Per-thread cache of the most recent (structure, solver session) pair.

    Keyed by structure fingerprint + solver knobs.  A worker process that
    executes many congruent groups in sequence — every point of an ε/δ sweep
    over the same location set routes here — keeps ONE persistent solver
    session and batches all its solves through it instead of building a fresh
    LP model per point.  Bounded to a single entry: sweeps are homogeneous,
    and one structure + one native model is the memory budget per worker.

    The cache MUST be thread-local, not merely process-local: the serving
    engine runs ``execute_robust_task_group`` inline on the request thread
    when ``max_workers == 1``, and concurrent requests for distinct keys
    solve on different threads of the same process.  A shared structure's
    refresh-in-place coefficients (and a shared warm session) would then be
    mutated mid-solve by a sibling thread, producing *valid-looking but
    different* LP solutions run to run.  ``threading.local`` gives every
    request thread — and every pool worker process, whose work runs on its
    main thread — its own slot.
    """

    def __init__(self) -> None:
        self.key = None
        self.structure = None
        self.session = None

    def __getitem__(self, name: str):
        return getattr(self, name)

    def __setitem__(self, name: str, value) -> None:
        setattr(self, name, value)


_WORKER_SOLVER_STATE = _ThreadLocalSolverState()


@dataclass
class RobustGenerationTask:
    """One self-contained robust-generation problem (picklable).

    Attributes mirror the :class:`~repro.core.robust.RobustMatrixGenerator`
    arguments; ``key`` is an opaque caller-side identifier (the sub-tree
    root id on the server) carried through to correlate results.
    """

    key: str
    node_ids: List[str]
    distance_matrix_km: np.ndarray
    cost_matrix: np.ndarray
    priors: Optional[np.ndarray]
    epsilon: float
    delta: int
    constraint_pairs: Optional[np.ndarray] = None
    constraint_distances_km: Optional[np.ndarray] = None
    constraint_description: str = "custom"
    max_iterations: int = 10
    rpb_method: str = "approx"
    basis_row: str = "real"
    solver_method: str = "highs"
    solver_backend: str = "auto"
    level: int = 0
    metadata: dict = field(default_factory=dict)

    def constraint_set(self) -> Optional[GeoIndConstraintSet]:
        """Rebuild the constraint set, or None for the all-pairs default."""
        if self.constraint_pairs is None:
            return None
        return GeoIndConstraintSet(
            pairs=self.constraint_pairs,
            distances_km=self.constraint_distances_km,
            description=self.constraint_description,
        )


def execute_robust_task(
    task: RobustGenerationTask,
    *,
    structure: Optional[ConstraintStructure] = None,
    session: Optional[SolverSession] = None,
) -> RobustGenerationResult:
    """Run Algorithm 1 for one task (the worker entry point).

    ``structure`` optionally injects a pre-built
    :class:`~repro.core.lp.ConstraintStructure` congruent with the task's
    constraint pairs, so sibling problems with identical geometry skip the
    structural assembly; the refreshed coefficients are identical to a cold
    build, so results do not depend on whether a structure was shared.

    ``session`` optionally injects a shared
    :class:`~repro.core.solver.SolverSession` (the per-worker warm solver).
    Its warm state is **reset at the task boundary**: basis reuse spans the
    ``t`` solves *within* one Algorithm-1 run — where the solve sequence is
    fixed — but never leaks across tasks, so a task's result stays
    independent of which tasks its worker happened to execute before it
    (the grouping/worker-count/shard byte-identity contract).  What carries
    across tasks is the expensive part: the persistent native model and its
    stacked sparsity pattern.
    """
    quality_model = LinearQualityModel(task.cost_matrix, task.priors)
    if session is not None:
        session.reset()
    generator = RobustMatrixGenerator(
        task.node_ids,
        task.distance_matrix_km,
        quality_model,
        task.epsilon,
        task.delta,
        constraint_set=task.constraint_set(),
        max_iterations=task.max_iterations,
        rpb_method=task.rpb_method,  # type: ignore[arg-type]
        basis_row=task.basis_row,  # type: ignore[arg-type]
        solver_method=task.solver_method,
        solver_backend=task.solver_backend,
        structure=structure,
        session=session,
        level=task.level,
    )
    result = generator.generate()
    result.matrix.metadata.update(task.metadata)
    return result


def execute_robust_task_group(
    tasks: Sequence[RobustGenerationTask],
) -> List[RobustGenerationResult]:
    """Execute a batch of congruent tasks sharing one structure and solver session.

    The first graph-constrained task builds the structure and the solver
    session; every later task whose pairs match reuses both (coefficient
    refresh-in-place, persistent native model).  Both also persist in a
    per-process slot keyed by structure fingerprint + solver knobs, so a
    worker that executes many congruent groups across calls — an ε/δ sweep
    fanned out point by point — batches every solve through one session
    instead of rebuilding the model per point.  Tasks without explicit
    constraint pairs — the all-pairs formulation, whose constraint set is
    derived from each task's own distance matrix — run unshared, as do tasks
    whose geometry turns out not to match (defensive; the caller groups by
    :func:`~repro.pipeline.fingerprint.structure_fingerprint`, which already
    prevents that).  Warm solver state is reset between tasks (see
    :func:`execute_robust_task`), so results are identical to unshared
    serial execution.
    """
    results: List[RobustGenerationResult] = []
    state = _WORKER_SOLVER_STATE
    for task in tasks:
        constraint_set = task.constraint_set()
        if constraint_set is None:
            results.append(execute_robust_task(task))
            continue
        size = len(task.node_ids)
        key = (
            structure_fingerprint(size, task.constraint_pairs),
            str(task.solver_backend),
            str(task.solver_method),
        )
        if (
            state["key"] != key
            or state["structure"] is None
            or not state["structure"].compatible_with(size, constraint_set)
        ):
            state["structure"] = ConstraintStructure(size, constraint_set)
            state["session"] = create_session(
                task.solver_backend, solver_method=task.solver_method
            )
            state["key"] = key
        results.append(
            execute_robust_task(
                task, structure=state["structure"], session=state["session"]
            )
        )
    return results


def run_robust_tasks(
    tasks: Sequence[RobustGenerationTask],
    *,
    max_workers: int = 1,
) -> List[RobustGenerationResult]:
    """Execute every task, serially or across processes, in task order.

    ``max_workers <= 1`` (or a single task) runs the plain serial loop.
    When worker processes cannot be spawned (restricted environments), the
    executor logs a warning and falls back to the serial path rather than
    failing the request.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    tasks = list(tasks)
    if max_workers == 1 or len(tasks) <= 1:
        return [execute_robust_task(task) for task in tasks]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(tasks))) as pool:
            return list(pool.map(execute_robust_task, tasks))
    except (OSError, BrokenProcessPool) as error:
        # OSError: workers could not be spawned at all; BrokenProcessPool: a
        # worker died mid-run (OOM kill, spawn re-import failure).  Task-level
        # exceptions (e.g. infeasible LPs) propagate with their original type.
        logger.warning(
            "parallel generation unavailable (%s); falling back to serial", error
        )
        return [execute_robust_task(task) for task in tasks]


def run_robust_task_groups(
    groups: Sequence[Sequence[RobustGenerationTask]],
    *,
    max_workers: int = 1,
) -> List[List[RobustGenerationResult]]:
    """Execute groups of congruent tasks, serially or across processes.

    Each group shares one constraint structure (built inside the executing
    worker, so nothing scipy-sparse crosses a process boundary); groups are
    independent and fan out exactly like individual tasks in
    :func:`run_robust_tasks`.  Results are returned per group, in group and
    task order, identical for every worker count.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    groups = [list(group) for group in groups]
    if max_workers == 1 or len(groups) <= 1:
        return [execute_robust_task_group(group) for group in groups]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(groups))) as pool:
            return list(pool.map(execute_robust_task_group, groups))
    except (OSError, BrokenProcessPool) as error:
        logger.warning(
            "parallel generation unavailable (%s); falling back to serial", error
        )
        return [execute_robust_task_group(group) for group in groups]
