"""Serving tier of the CORGI framework: engine ← service ← transport.

The server side is split into three layers (mirroring the persistence /
logic / control separation the related DB-nets work argues for):

* :class:`~repro.server.engine.ForestEngine` — pure matrix generation over
  the pipeline layer (no request semantics);
* :class:`~repro.service.service.CORGIService` — request validation and
  normalization, single-flight coalescing of identical ``(privacy_level,
  δ, ε)`` requests, bounded batching, admission control and
  :class:`~repro.service.metrics.ServiceMetrics`;
* :mod:`repro.service.http` — a stdlib-only HTTP JSON transport reusing
  the wire formats of :mod:`repro.server.messages`;
* :class:`~repro.service.pool.EnginePool` /
  :mod:`repro.service.shard` — N engine replicas in worker processes with
  consistent-hash routing, crash respawn and broadcast cache invalidation,
  behind the same service API;
* :mod:`repro.service.netshard` — the cross-host shard transport: the same
  op vocabulary over length-prefixed TCP frames, with heartbeat liveness
  and bounded reconnect, so ring slots can live on other machines;
* :mod:`repro.service.controllog` / :mod:`repro.service.store` — the
  durable state tier: a crash-safe priors/invalidation write-ahead log
  replayed on boot, plus a compressed, checksummed snapshot store that
  pre-warms a restarted fleet (``EnginePool(state_dir=...)``);
* :mod:`repro.service.gateway` — the asyncio push front-end: clients hold
  one connection, subscribe to keys, and get refreshed matrices *pushed*
  on invalidate/priors events (async single-flight over a bounded
  executor, per-connection queues, slow-consumer eviction, generation
  tags).  The sync HTTP transport stays a thin adapter over the same core.

Client-side counterparts (the transport protocol, ``InProcessTransport``
and ``HTTPTransport``) live in :mod:`repro.client.transport`.
"""

from repro.service.controllog import ControlLog, ControlLogFormatError
from repro.service.handoff import (
    CacheSnapshot,
    SnapshotEntry,
    SnapshotFormatError,
    decode_snapshot,
    encode_snapshot,
)
from repro.service.gateway import (
    AsyncCORGIService,
    GatewayConfig,
    GatewayProtocolError,
    GatewayServer,
    serve_gateway,
)
from repro.service.http import CORGIHTTPServer, serve_http
from repro.service.metrics import ServiceMetrics
from repro.service.netshard import (
    FrameFormatError,
    NetShardHandle,
    NetShardServer,
    RemoteShardError,
)
from repro.service.pool import EnginePool, EnginePoolError, PoolTimeoutError
from repro.service.service import CORGIService, ServiceConfig, ServiceOverloadedError
from repro.service.shard import ShardCrashedError, ShardState
from repro.service.store import SnapshotStore, StoreFormatError

__all__ = [
    "CORGIService",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServiceMetrics",
    "CORGIHTTPServer",
    "serve_http",
    "AsyncCORGIService",
    "GatewayConfig",
    "GatewayProtocolError",
    "GatewayServer",
    "serve_gateway",
    "EnginePool",
    "EnginePoolError",
    "PoolTimeoutError",
    "ShardCrashedError",
    "ShardState",
    "FrameFormatError",
    "NetShardHandle",
    "NetShardServer",
    "RemoteShardError",
    "CacheSnapshot",
    "SnapshotEntry",
    "SnapshotFormatError",
    "decode_snapshot",
    "encode_snapshot",
    "ControlLog",
    "ControlLogFormatError",
    "SnapshotStore",
    "StoreFormatError",
]
