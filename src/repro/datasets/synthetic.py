"""Synthetic Gowalla-like check-in generator.

The real Gowalla dump is unavailable offline, so the experiments run on a
synthetic dataset that reproduces the statistical structure the paper's
pipeline actually consumes:

* **spatial clustering** — check-ins concentrate around a set of venues whose
  popularity follows a heavy-tailed (Zipf) distribution, giving the dense,
  highly non-uniform leaf priors the San Francisco sample exhibits;
* **per-user routine** — every user has a home venue (visited mostly at
  night), usually an office venue (visited during work hours on weekdays)
  and a personal set of frequently visited venues, which is exactly the
  signal the paper's heuristics mine to label ``home``/``office`` locations;
* **outliers** — a small fraction of check-ins happen at rarely visited
  venues at odd hours (the paper's "outlier" locations);
* **format compatibility** — records use the Gowalla schema and can be dumped
  with :func:`repro.datasets.gowalla.write_gowalla`.

The default configuration matches the scale of the paper's sample: ~38,500
check-ins inside the San Francisco bounding box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.checkin import CheckIn, CheckInDataset
from repro.datasets.region import SAN_FRANCISCO
from repro.geometry.haversine import EARTH_RADIUS_KM
from repro.geometry.projection import BoundingBox
from repro.utils.rng import RandomState, as_rng


@dataclass
class SyntheticConfig:
    """Configuration of the synthetic Gowalla-like workload.

    The defaults reproduce the scale of the paper's San Francisco sample
    (38,523 check-ins).  All knobs are plain numbers so experiment configs
    can sweep them.
    """

    region: BoundingBox = field(default_factory=lambda: SAN_FRANCISCO)
    num_users: int = 400
    num_venues: int = 900
    num_checkins: int = 38_523
    #: Zipf exponent of venue popularity (1.0 ≈ classic check-in skew).
    popularity_exponent: float = 1.0
    #: Standard deviation (km) of the Gaussian jitter around a venue.
    venue_jitter_km: float = 0.08
    #: Number of spatial hot-spot clusters venues are drawn around.
    num_hotspots: int = 12
    #: Standard deviation (km) of venue placement around a hot-spot centre.
    hotspot_spread_km: float = 1.6
    #: Fraction of check-ins that are at the user's home venue.
    home_fraction: float = 0.28
    #: Fraction of check-ins at the user's office venue.
    office_fraction: float = 0.22
    #: Fraction of check-ins that are outliers (rare venue, odd hour).
    outlier_fraction: float = 0.03
    #: Fraction of users who have an office routine at all.
    employed_fraction: float = 0.8
    #: Start of the simulated observation window.
    start_time: datetime = field(default_factory=lambda: datetime(2010, 2, 1, tzinfo=timezone.utc))
    #: Length of the observation window in days.
    duration_days: int = 240

    def validate(self) -> None:
        """Raise :class:`ValueError` for configurations that cannot be generated."""
        if self.num_users <= 0 or self.num_venues <= 0 or self.num_checkins <= 0:
            raise ValueError("num_users, num_venues and num_checkins must be positive")
        fractions = self.home_fraction + self.office_fraction + self.outlier_fraction
        if fractions >= 1.0:
            raise ValueError("home + office + outlier fractions must be < 1")
        if not 0.0 <= self.employed_fraction <= 1.0:
            raise ValueError("employed_fraction must be in [0, 1]")
        if self.num_hotspots <= 0:
            raise ValueError("num_hotspots must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")


@dataclass
class _Venue:
    venue_id: str
    lat: float
    lng: float
    popularity: float


@dataclass
class _UserProfile:
    user_id: str
    home: _Venue
    office: Optional[_Venue]
    favourites: List[_Venue]


class GowallaLikeGenerator:
    """Generates a reproducible synthetic check-in dataset.

    Examples
    --------
    >>> generator = GowallaLikeGenerator(SyntheticConfig(num_checkins=500), seed=1)
    >>> dataset = generator.generate()
    >>> len(dataset)
    500
    """

    def __init__(self, config: Optional[SyntheticConfig] = None, seed: RandomState = 0) -> None:
        self.config = config or SyntheticConfig()
        self.config.validate()
        self._rng = as_rng(seed)
        self._venues: List[_Venue] = []
        self._profiles: List[_UserProfile] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def generate(self) -> CheckInDataset:
        """Generate the full synthetic dataset."""
        self._venues = self._make_venues()
        self._profiles = self._make_profiles(self._venues)
        checkins = self._make_checkins(self._venues, self._profiles)
        dataset = CheckInDataset(checkins, name="synthetic-gowalla-sf")
        return dataset

    def ground_truth(self) -> Dict[str, Dict[str, object]]:
        """Per-user ground truth (home / office venue ids) for evaluating heuristics.

        Only available after :meth:`generate` has been called.
        """
        if not self._profiles:
            raise RuntimeError("call generate() before requesting the ground truth")
        truth: Dict[str, Dict[str, object]] = {}
        for profile in self._profiles:
            truth[profile.user_id] = {
                "home_venue": profile.home.venue_id,
                "home_latlng": (profile.home.lat, profile.home.lng),
                "office_venue": profile.office.venue_id if profile.office else None,
                "office_latlng": (profile.office.lat, profile.office.lng) if profile.office else None,
            }
        return truth

    # ------------------------------------------------------------------ #
    # Generation internals
    # ------------------------------------------------------------------ #

    def _make_venues(self) -> List[_Venue]:
        config = self.config
        rng = self._rng
        hotspots = [config.region.sample_point(rng) for _ in range(config.num_hotspots)]
        ranks = np.arange(1, config.num_venues + 1, dtype=float)
        popularity = 1.0 / np.power(ranks, config.popularity_exponent)
        popularity = popularity / popularity.sum()
        venues: List[_Venue] = []
        for index in range(config.num_venues):
            hotspot = hotspots[int(rng.integers(0, config.num_hotspots))]
            lat, lng = self._jitter(hotspot.lat, hotspot.lng, config.hotspot_spread_km)
            lat, lng = self._clip_to_region(lat, lng)
            venues.append(
                _Venue(
                    venue_id=f"venue-{index:05d}",
                    lat=lat,
                    lng=lng,
                    popularity=float(popularity[index]),
                )
            )
        return venues

    def _make_profiles(self, venues: List[_Venue]) -> List[_UserProfile]:
        config = self.config
        rng = self._rng
        profiles: List[_UserProfile] = []
        num_venues = len(venues)
        for index in range(config.num_users):
            home = venues[int(rng.integers(0, num_venues))]
            office: Optional[_Venue] = None
            if rng.random() < config.employed_fraction:
                office = venues[int(rng.integers(0, num_venues))]
            favourite_count = int(rng.integers(3, 9))
            favourites = [venues[int(rng.integers(0, num_venues))] for _ in range(favourite_count)]
            profiles.append(
                _UserProfile(
                    user_id=f"user-{index:05d}",
                    home=home,
                    office=office,
                    favourites=favourites,
                )
            )
        return profiles

    def _make_checkins(self, venues: List[_Venue], profiles: List[_UserProfile]) -> List[CheckIn]:
        config = self.config
        rng = self._rng
        popularity = np.array([venue.popularity for venue in venues])
        popularity = popularity / popularity.sum()
        checkins: List[CheckIn] = []
        window_seconds = config.duration_days * 24 * 3600
        for _ in range(config.num_checkins):
            profile = profiles[int(rng.integers(0, len(profiles)))]
            draw = rng.random()
            if draw < config.home_fraction:
                venue = profile.home
                timestamp = self._sample_time(rng, window_seconds, kind="night")
            elif profile.office is not None and draw < config.home_fraction + config.office_fraction:
                venue = profile.office
                timestamp = self._sample_time(rng, window_seconds, kind="work")
            elif draw < config.home_fraction + config.office_fraction + config.outlier_fraction:
                venue = venues[int(rng.integers(0, len(venues)))]
                timestamp = self._sample_time(rng, window_seconds, kind="odd")
            else:
                if profile.favourites and rng.random() < 0.5:
                    venue = profile.favourites[int(rng.integers(0, len(profile.favourites)))]
                else:
                    venue = venues[int(rng.choice(len(venues), p=popularity))]
                timestamp = self._sample_time(rng, window_seconds, kind="day")
            lat, lng = self._jitter(venue.lat, venue.lng, config.venue_jitter_km)
            lat, lng = self._clip_to_region(lat, lng)
            checkins.append(
                CheckIn(
                    user_id=profile.user_id,
                    timestamp=timestamp,
                    lat=lat,
                    lng=lng,
                    location_id=venue.venue_id,
                )
            )
        checkins.sort(key=lambda c: c.timestamp)
        return checkins

    def _sample_time(self, rng: np.random.Generator, window_seconds: int, kind: str) -> datetime:
        day_offset = int(rng.integers(0, max(1, window_seconds // 86_400)))
        if kind == "night":
            hour = int(rng.choice([22, 23, 0, 1, 2, 3, 4, 5]))
        elif kind == "work":
            hour = int(rng.integers(9, 18))
        elif kind == "odd":
            hour = int(rng.choice([2, 3, 4, 23]))
        else:
            hour = int(rng.integers(8, 23))
        minute = int(rng.integers(0, 60))
        second = int(rng.integers(0, 60))
        base = self.config.start_time + timedelta(days=day_offset)
        return base.replace(hour=hour % 24, minute=minute, second=second)

    def _jitter(self, lat: float, lng: float, sigma_km: float) -> Tuple[float, float]:
        rng = self._rng
        dlat_km = float(rng.normal(0.0, sigma_km))
        dlng_km = float(rng.normal(0.0, sigma_km))
        dlat = math.degrees(dlat_km / EARTH_RADIUS_KM)
        dlng = math.degrees(dlng_km / (EARTH_RADIUS_KM * max(math.cos(math.radians(lat)), 1e-9)))
        return (lat + dlat, lng + dlng)

    def _clip_to_region(self, lat: float, lng: float) -> Tuple[float, float]:
        region = self.config.region
        return (
            min(max(lat, region.min_lat), region.max_lat),
            min(max(lng, region.min_lng), region.max_lng),
        )


def generate_paper_scale_dataset(seed: RandomState = 7) -> CheckInDataset:
    """Convenience: the default 38,523-check-in San Francisco dataset."""
    return GowallaLikeGenerator(SyntheticConfig(), seed=seed).generate()


def generate_small_dataset(num_checkins: int = 2_000, seed: RandomState = 7) -> CheckInDataset:
    """Convenience: a small dataset for tests and quick examples."""
    config = SyntheticConfig(num_checkins=num_checkins, num_users=60, num_venues=150)
    return GowallaLikeGenerator(config, seed=seed).generate()
