"""Tests for the dataset substrate: records, Gowalla format, synthetic generation, splits."""

import io
from datetime import datetime, timezone

import pytest

from repro.datasets.checkin import CheckIn, CheckInDataset
from repro.datasets.gowalla import load_gowalla, parse_gowalla_line, write_gowalla
from repro.datasets.region import SAN_FRANCISCO, TIMES_SQUARE_NYC, named_region
from repro.datasets.splits import train_test_split_checkins
from repro.datasets.synthetic import (
    GowallaLikeGenerator,
    SyntheticConfig,
    generate_small_dataset,
)
from repro.geometry.projection import BoundingBox


def make_checkin(user="u1", hour=12, lat=37.77, lng=-122.42, location="v1", weekday_day=5):
    # 2010-02-01 is a Monday; weekday_day selects the day of the month.
    return CheckIn(
        user_id=user,
        timestamp=datetime(2010, 2, weekday_day, hour, 30, tzinfo=timezone.utc),
        lat=lat,
        lng=lng,
        location_id=location,
    )


class TestCheckIn:
    def test_valid(self):
        checkin = make_checkin()
        assert checkin.latlng.lat == 37.77

    def test_invalid_coordinates(self):
        with pytest.raises(ValueError):
            make_checkin(lat=100.0)
        with pytest.raises(ValueError):
            make_checkin(lng=999.0)

    def test_naive_timestamp_becomes_utc(self):
        checkin = CheckIn("u", datetime(2010, 1, 1, 5, 0), 0.0, 0.0, "v")
        assert checkin.timestamp.tzinfo is not None

    def test_night_flag(self):
        assert make_checkin(hour=23).is_night
        assert make_checkin(hour=3).is_night
        assert not make_checkin(hour=12).is_night

    def test_work_hours_flag(self):
        assert make_checkin(hour=10, weekday_day=1).is_work_hours  # Monday
        assert not make_checkin(hour=10, weekday_day=6).is_work_hours  # Saturday
        assert not make_checkin(hour=20, weekday_day=1).is_work_hours


class TestCheckInDataset:
    def setup_method(self):
        self.dataset = CheckInDataset(
            [
                make_checkin(user="a", location="v1"),
                make_checkin(user="a", location="v2", lat=37.75),
                make_checkin(user="b", location="v1", lng=-122.40),
            ],
            name="test",
        )

    def test_len_iter_getitem(self):
        assert len(self.dataset) == 3
        assert len(list(self.dataset)) == 3
        assert self.dataset[0].user_id == "a"

    def test_users_and_locations(self):
        assert self.dataset.users() == ["a", "b"]
        assert self.dataset.locations() == ["v1", "v2"]

    def test_by_user_grouping(self):
        groups = self.dataset.by_user()
        assert len(groups["a"]) == 2
        assert len(groups["b"]) == 1

    def test_by_location_and_counts(self):
        assert len(self.dataset.by_location()["v1"]) == 2
        assert self.dataset.location_counts()["v1"] == 2

    def test_for_user(self):
        assert len(self.dataset.for_user("a")) == 2

    def test_within_region(self):
        box = BoundingBox(37.76, -122.43, 37.78, -122.39)
        assert len(self.dataset.within(box)) == 2

    def test_bounding_box(self):
        box = self.dataset.bounding_box()
        assert box.min_lat == pytest.approx(37.75)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(ValueError):
            CheckInDataset().bounding_box()

    def test_add_and_extend(self):
        dataset = CheckInDataset()
        dataset.add(make_checkin())
        dataset.extend([make_checkin(), make_checkin()])
        assert len(dataset) == 3

    def test_summary(self):
        summary = self.dataset.summary()
        assert summary["num_checkins"] == 3
        assert summary["num_users"] == 2
        assert CheckInDataset().summary()["num_checkins"] == 0

    def test_sort_by_time(self):
        ordered = self.dataset.sort_by_time()
        times = [c.timestamp for c in ordered]
        assert times == sorted(times)


class TestGowallaFormat:
    VALID_LINE = "196514\t2010-07-24T13:45:06Z\t53.3648119\t-2.2723465833\t145064"

    def test_parse_valid_line(self):
        checkin = parse_gowalla_line(self.VALID_LINE)
        assert checkin is not None
        assert checkin.user_id == "196514"
        assert checkin.location_id == "145064"
        assert checkin.lat == pytest.approx(53.3648119)

    def test_parse_space_separated(self):
        checkin = parse_gowalla_line("1 2010-07-24T13:45:06Z 10.0 20.0 99")
        assert checkin is not None and checkin.location_id == "99"

    def test_parse_blank_and_malformed(self):
        assert parse_gowalla_line("") is None
        assert parse_gowalla_line("only three fields here") is None
        assert parse_gowalla_line("1\tnot-a-date\t1.0\t2.0\t3") is None
        assert parse_gowalla_line("1\t2010-07-24T13:45:06Z\t999\t2.0\t3") is None

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "checkins.txt"
        original = [make_checkin(user="u1"), make_checkin(user="u2", lat=37.70)]
        assert write_gowalla(original, path) == 2
        loaded = load_gowalla(path)
        assert len(loaded) == 2
        assert loaded[0].user_id == "u1"
        assert loaded[1].lat == pytest.approx(37.70, abs=1e-6)

    def test_write_to_stream(self):
        stream = io.StringIO()
        write_gowalla([make_checkin()], stream)
        assert "\t" in stream.getvalue()

    def test_load_with_region_filter(self, tmp_path):
        path = tmp_path / "checkins.txt"
        write_gowalla([make_checkin(lat=37.77), make_checkin(lat=10.0)], path)
        loaded = load_gowalla(path, region=SAN_FRANCISCO)
        assert len(loaded) == 1

    def test_load_with_max_records(self, tmp_path):
        path = tmp_path / "checkins.txt"
        write_gowalla([make_checkin() for _ in range(5)], path)
        assert len(load_gowalla(path, max_records=3)) == 3

    def test_load_skips_malformed(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text(self.VALID_LINE + "\n" + "garbage line\n", encoding="utf-8")
        assert len(load_gowalla(path)) == 1


class TestRegions:
    def test_named_region_lookup(self):
        assert named_region("sf") is SAN_FRANCISCO
        assert named_region("Times_Square") is TIMES_SQUARE_NYC

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            named_region("atlantis")


class TestSyntheticGenerator:
    def test_generates_requested_size(self, synthetic_dataset):
        assert len(synthetic_dataset) == 2_000

    def test_all_checkins_in_region(self, synthetic_dataset):
        for checkin in synthetic_dataset:
            assert SAN_FRANCISCO.contains(checkin.lat, checkin.lng)

    def test_reproducible(self):
        config = SyntheticConfig(num_checkins=200, num_users=10, num_venues=30)
        first = GowallaLikeGenerator(config, seed=5).generate()
        second = GowallaLikeGenerator(config, seed=5).generate()
        assert [(c.user_id, c.lat, c.lng) for c in first] == [(c.user_id, c.lat, c.lng) for c in second]

    def test_different_seeds_differ(self):
        config = SyntheticConfig(num_checkins=200, num_users=10, num_venues=30)
        first = GowallaLikeGenerator(config, seed=1).generate()
        second = GowallaLikeGenerator(config, seed=2).generate()
        assert [(c.lat, c.lng) for c in first] != [(c.lat, c.lng) for c in second]

    def test_popularity_is_skewed(self, synthetic_dataset):
        counts = sorted(synthetic_dataset.location_counts().values(), reverse=True)
        # The busiest venue should see several times the median traffic.
        assert counts[0] >= 3 * counts[len(counts) // 2]

    def test_home_checkins_are_mostly_at_night(self, synthetic_dataset):
        generator = GowallaLikeGenerator(SyntheticConfig(num_checkins=800, num_users=20, num_venues=50), seed=8)
        dataset = generator.generate()
        truth = generator.ground_truth()
        night, total = 0, 0
        for checkin in dataset:
            if checkin.location_id == truth[checkin.user_id]["home_venue"]:
                total += 1
                night += int(checkin.is_night)
        assert total > 0
        assert night / total > 0.5

    def test_ground_truth_requires_generation(self):
        generator = GowallaLikeGenerator(SyntheticConfig(num_checkins=10))
        with pytest.raises(RuntimeError):
            generator.ground_truth()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_checkins=0).validate()
        with pytest.raises(ValueError):
            SyntheticConfig(home_fraction=0.9, office_fraction=0.2).validate()
        with pytest.raises(ValueError):
            SyntheticConfig(employed_fraction=1.5).validate()
        with pytest.raises(ValueError):
            SyntheticConfig(num_hotspots=0).validate()

    def test_gowalla_format_compatibility(self, tmp_path, synthetic_dataset):
        path = tmp_path / "synthetic.txt"
        write_gowalla(list(synthetic_dataset)[:50], path)
        assert len(load_gowalla(path)) == 50

    def test_generate_small_dataset_helper(self):
        assert len(generate_small_dataset(100, seed=1)) == 100


class TestSplits:
    def test_split_sizes(self, synthetic_dataset):
        train, test = train_test_split_checkins(synthetic_dataset, 0.1, seed=0)
        assert len(train) + len(test) == len(synthetic_dataset)
        assert abs(len(test) - 0.1 * len(synthetic_dataset)) <= 1

    def test_split_disjoint_and_complete(self, synthetic_dataset):
        train, test = train_test_split_checkins(synthetic_dataset, 0.2, seed=1)
        def key(c):
            return (c.user_id, c.timestamp, c.lat, c.lng, c.location_id)

        combined = sorted(map(key, train)) + sorted(map(key, test))
        assert sorted(combined) == sorted(map(key, synthetic_dataset))

    def test_split_reproducible(self, synthetic_dataset):
        train1, _ = train_test_split_checkins(synthetic_dataset, 0.1, seed=7)
        train2, _ = train_test_split_checkins(synthetic_dataset, 0.1, seed=7)
        assert [c.timestamp for c in train1] == [c.timestamp for c in train2]

    def test_stratified_split_covers_users(self, synthetic_dataset):
        train, test = train_test_split_checkins(
            synthetic_dataset, 0.2, seed=3, stratify_by_user=True
        )
        active_users = {u for u, cs in synthetic_dataset.by_user().items() if len(cs) >= 5}
        assert active_users <= set(train.users())
        assert active_users <= set(test.users())

    def test_invalid_fraction(self, synthetic_dataset):
        with pytest.raises(ValueError):
            train_test_split_checkins(synthetic_dataset, 0.0)
        with pytest.raises(ValueError):
            train_test_split_checkins(synthetic_dataset, 1.0)
