"""Optimal Bayesian inference adversary.

The adversary knows the published obfuscation matrix ``Z`` and the prior
``p`` over real locations (both are public in the CORGI trust model).  Upon
observing a reported location ``y`` it forms the posterior

    Pr(X = v_i | Y = y)  ∝  p_i · z_{i, y}

and produces either a maximum-a-posteriori guess or the estimate minimising
the expected distance error (the optimal-inference attack of Shokri et al.).
The privacy metrics derived from this adversary complement the worst-case
Geo-Ind guarantee with an average-case view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.matrix import ObfuscationMatrix
from repro.utils.validation import ensure_probability_vector


@dataclass
class AttackResult:
    """Posterior and point estimates for one observed report."""

    reported_id: str
    posterior: np.ndarray
    map_estimate: str
    bayes_estimate: str
    expected_error_km: float


class BayesianAttacker:
    """Optimal Bayesian adversary against a known obfuscation matrix.

    Parameters
    ----------
    matrix:
        The published obfuscation matrix.
    priors:
        Prior probability of every real location, in matrix order.
    distance_matrix_km:
        Pairwise distances between the matrix's locations; needed for the
        distance-minimising estimate and the error metrics.
    """

    def __init__(
        self,
        matrix: ObfuscationMatrix,
        priors: Sequence[float],
        distance_matrix_km: np.ndarray,
    ) -> None:
        self.matrix = matrix
        self.priors = ensure_probability_vector(np.asarray(priors, dtype=float), "priors", normalize=True)
        if self.priors.shape[0] != matrix.size:
            raise ValueError(
                f"priors must have {matrix.size} entries, got {self.priors.shape[0]}"
            )
        self.distances = np.asarray(distance_matrix_km, dtype=float)
        if self.distances.shape != (matrix.size, matrix.size):
            raise ValueError(
                f"distance matrix shape {self.distances.shape} does not match matrix size {matrix.size}"
            )

    # ------------------------------------------------------------------ #
    # Posterior computation
    # ------------------------------------------------------------------ #

    def posterior(self, reported_id: str) -> np.ndarray:
        """Posterior distribution over real locations given a reported id."""
        return self.matrix.posterior(self.priors, reported_id)

    def posterior_table(self) -> np.ndarray:
        """All posteriors as a ``(K, K)`` array: row = reported id, column = real location."""
        table = np.zeros((self.matrix.size, self.matrix.size))
        for row, reported_id in enumerate(self.matrix.node_ids):
            table[row] = self.posterior(reported_id)
        return table

    # ------------------------------------------------------------------ #
    # Point estimates
    # ------------------------------------------------------------------ #

    def map_estimate(self, reported_id: str) -> str:
        """Maximum-a-posteriori guess of the real location."""
        posterior = self.posterior(reported_id)
        return self.matrix.node_ids[int(np.argmax(posterior))]

    def bayes_estimate(self, reported_id: str) -> str:
        """Guess minimising the posterior-expected distance error."""
        posterior = self.posterior(reported_id)
        expected_errors = self.distances.T @ posterior
        return self.matrix.node_ids[int(np.argmin(expected_errors))]

    def attack(self, reported_id: str) -> AttackResult:
        """Full attack output for one observed report."""
        posterior = self.posterior(reported_id)
        expected_errors = self.distances.T @ posterior
        best = int(np.argmin(expected_errors))
        return AttackResult(
            reported_id=reported_id,
            posterior=posterior,
            map_estimate=self.matrix.node_ids[int(np.argmax(posterior))],
            bayes_estimate=self.matrix.node_ids[best],
            expected_error_km=float(expected_errors[best]),
        )

    # ------------------------------------------------------------------ #
    # Aggregate metrics
    # ------------------------------------------------------------------ #

    def expected_inference_error_km(self) -> float:
        """Unconditional expected error of the optimal (distance-minimising) attack.

        ``Σ_y Pr(Y = y) min_{x'} Σ_x Pr(X = x | Y = y) d(x, x')`` — the classic
        "expected inference error" privacy metric; larger is more private.
        """
        reported_marginal = self.priors @ self.matrix.values
        total = 0.0
        for column, reported_id in enumerate(self.matrix.node_ids):
            weight = float(reported_marginal[column])
            if weight <= 0:
                continue
            posterior = self.posterior(reported_id)
            expected_errors = self.distances.T @ posterior
            total += weight * float(expected_errors.min())
        return total

    def recovery_rate(self) -> float:
        """Probability that the MAP guess equals the true location.

        ``Σ_x p_x Σ_y z_{x,y} [MAP(y) = x]`` — smaller is more private.
        """
        map_guess: Dict[str, str] = {
            reported_id: self.map_estimate(reported_id) for reported_id in self.matrix.node_ids
        }
        total = 0.0
        for row, real_id in enumerate(self.matrix.node_ids):
            for column, reported_id in enumerate(self.matrix.node_ids):
                if map_guess[reported_id] == real_id:
                    total += self.priors[row] * self.matrix.values[row, column]
        return float(total)

    def prior_expected_error_km(self) -> float:
        """Expected error of the best prior-only guess (no report observed).

        Serves as the reference point: a mechanism is "useless to the
        attacker" when the posterior expected error stays close to this.
        """
        expected_errors = self.distances.T @ self.priors
        return float(expected_errors.min())
