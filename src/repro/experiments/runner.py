"""Run every figure experiment end to end.

``python -m repro.experiments.runner --scale small`` reproduces all six
figures of Section 6.2, prints the result tables and (optionally) writes
them to a JSON file.  The benchmark harness wraps the same driver functions
individually; this runner exists so the whole evaluation can be reproduced
with one command and its output pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

from repro.experiments.config import ExperimentConfig, get_scale
from repro.experiments.convergence import run_convergence_experiment
from repro.experiments.graph_approx import run_graph_approx_experiment
from repro.experiments.precision_timing import run_precision_timing_experiment
from repro.experiments.privacy_level import run_privacy_level_experiment
from repro.experiments.privacy_params import run_privacy_params_experiment
from repro.experiments.pruning_impact import run_pruning_impact_experiment
from repro.experiments.workloads import build_workload
from repro.utils.logging import configure_cli_logging, get_logger

logger = get_logger(__name__)

#: Experiment registry: name -> (figure, driver function).
EXPERIMENTS = {
    "convergence": ("Fig. 9", run_convergence_experiment),
    "graph_approx": ("Fig. 10", run_graph_approx_experiment),
    "privacy_params": ("Fig. 11", run_privacy_params_experiment),
    "pruning_impact": ("Fig. 12", run_pruning_impact_experiment),
    "privacy_level": ("Fig. 13", run_privacy_level_experiment),
    "precision_timing": ("Fig. 14", run_precision_timing_experiment),
}


def run_all(
    config: Optional[ExperimentConfig] = None,
    *,
    only: Optional[list] = None,
    print_tables: bool = True,
) -> Dict[str, object]:
    """Run the selected experiments and return their result objects keyed by name."""
    config = config or get_scale()
    selected = list(EXPERIMENTS) if not only else [name for name in EXPERIMENTS if name in set(only)]
    workload = build_workload(config)
    results: Dict[str, object] = {}
    for name in selected:
        figure, driver = EXPERIMENTS[name]
        logger.info("running %s (%s) at scale %s", name, figure, config.name)
        start = time.perf_counter()
        result = driver(config, workload=workload)
        elapsed = time.perf_counter() - start
        results[name] = result
        if print_tables:
            for attribute in ("table", "runtime_table", "constraint_table"):
                table = getattr(result, attribute, None)
                if table is not None:
                    table.print()
            print(f"[{figure}] {name} finished in {elapsed:.1f} s")
    return results


def results_to_json(results: Dict[str, object]) -> Dict[str, object]:
    """Convert result objects to a JSON-friendly structure (tables + scalar summaries)."""
    payload: Dict[str, object] = {}
    for name, result in results.items():
        entry: Dict[str, object] = {}
        for attribute in ("table", "runtime_table", "constraint_table"):
            table = getattr(result, attribute, None)
            if table is not None:
                entry[attribute] = table.to_dict()
        for attribute in (
            "headline",
            "iterations_to_converge",
            "mean_runtime_reduction_pct",
            "mean_constraint_reduction_pct",
            "mean_time_ratio",
        ):
            value = getattr(result, attribute, None)
            if value is not None:
                entry[attribute] = value
        payload[name] = entry
    return payload


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Reproduce the CORGI evaluation figures")
    parser.add_argument("--scale", default=None, help="small (default) or paper")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for independent LP generations (default 1 = serial; "
        "results are identical for every value)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"subset of experiments to run (choices: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--output", default=None, help="write results as JSON to this path")
    parser.add_argument("--verbose", action="store_true", help="enable debug logging")
    args = parser.parse_args(argv)

    configure_cli_logging(verbose=args.verbose)
    config = get_scale(args.scale)
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        config = config.derive(max_workers=args.workers)
    results = run_all(config, only=args.only)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(results_to_json(results), handle, indent=2, default=str)
        print(f"wrote results to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
