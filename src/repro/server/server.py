"""CORGI server (Algorithm 3): the in-process facade over the forest engine.

Given a customization request carrying only the privacy level and the prune
count δ, the server iterates over every node at the privacy level, collects
the leaves of its sub-tree, and generates a robust obfuscation matrix for
them with Algorithm 1.  The Geo-Ind constraints are formulated on the
12-neighbour graph approximation by default (Section 4.2), and distances
``d_{i,j}`` are measured in the projected plane so that the graph weights,
the LP constraints and the violation checks all use one consistent metric.

Since the engine/transport split, the heavy lifting lives in
:class:`~repro.server.engine.ForestEngine` (pure matrix generation over the
pipeline layer: fingerprinting, matrix/forest caches, constraint-structure
sharing across congruent sibling sub-trees, worker fan-out).
:class:`CORGIServer` remains the stable in-process entry point — it owns an
engine and forwards to it — while request-level serving concerns
(validation, single-flight coalescing, batching, admission control,
metrics) live in :class:`~repro.service.service.CORGIService` and the wire
transports in :mod:`repro.service.http` / :mod:`repro.client.transport`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.objective import TargetDistribution
from repro.server.engine import ForestEngine, ServerConfig
from repro.server.messages import ObfuscationRequest, PrivacyForestResponse
from repro.server.privacy_forest import PrivacyForest
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["CORGIServer", "ServerConfig", "ForestEngine"]


class CORGIServer:
    """The untrusted, computation-heavy side of CORGI.

    Parameters
    ----------
    tree:
        The location tree for the area of interest (step 1 of Figure 1); its
        leaf priors should already be set from public check-in statistics.
    config:
        Generation parameters (defaults follow the paper's experimental
        setup).  The engine snapshots the config (copy-on-configure):
        mutating the object you passed in afterwards is inert, while
        mutating ``server.config`` invalidates derived state — see
        :class:`~repro.server.engine.ServerConfig`.
    targets:
        Optional explicit service-target distribution; when omitted, targets
        are sampled uniformly from the tree's leaf centres.
    """

    def __init__(
        self,
        tree: LocationTree,
        config: Optional[ServerConfig] = None,
        *,
        targets: Optional[TargetDistribution] = None,
    ) -> None:
        self.engine = ForestEngine(tree, config, targets=targets)

    # ------------------------------------------------------------------ #
    # Engine state (delegated)
    # ------------------------------------------------------------------ #

    @property
    def tree(self) -> LocationTree:
        """The location tree served by the engine."""
        return self.engine.tree

    @property
    def config(self) -> ServerConfig:
        """The engine's (owned) configuration."""
        return self.engine.config

    @property
    def targets(self) -> TargetDistribution:
        """The service-target distribution used in the LP objective."""
        return self.engine.targets

    @targets.setter
    def targets(self, value: Optional[TargetDistribution]) -> None:
        self.engine.targets = value

    @property
    def matrix_cache(self):
        """The engine's content-addressed per-sub-tree matrix cache."""
        return self.engine.matrix_cache

    @property
    def _forest_cache(self) -> Dict[str, Tuple[PrivacyForest, float]]:
        return self.engine._forest_cache

    @property
    def stopwatch(self):
        """The engine's per-phase stopwatch."""
        return self.engine.stopwatch

    # ------------------------------------------------------------------ #
    # Matrix generation (Algorithm 3)
    # ------------------------------------------------------------------ #

    def generate_privacy_forest(
        self,
        privacy_level: int,
        delta: int,
        *,
        epsilon: Optional[float] = None,
        use_cache: bool = True,
    ) -> PrivacyForest:
        """Generate (or fetch from cache) the privacy forest for the given parameters."""
        return self.engine.build_forest(
            privacy_level, delta, epsilon=epsilon, use_cache=use_cache
        )

    #: Alias used by callers that think in terms of "the forest" rather than
    #: "the privacy forest" (and by the perf harness).
    generate_forest = generate_privacy_forest

    def _generate_subtree_matrix(
        self,
        subtree_root_id: str,
        delta: int,
        epsilon: float,
    ) -> Tuple:
        """Generate the robust leaf-level matrix for one sub-tree (Algorithm 1)."""
        return self.engine.generate_subtree_matrix(subtree_root_id, delta, epsilon)

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    def handle_request(self, request: ObfuscationRequest) -> PrivacyForestResponse:
        """Serve one user request: generate the forest and package it as a response.

        This is the minimal, concurrency-unaware path; production serving
        (coalescing, admission control, metrics) goes through
        :class:`~repro.service.service.CORGIService`, which produces
        identical responses.
        """
        forest = self.engine.build_forest(
            request.privacy_level,
            request.delta,
            epsilon=request.epsilon,
        )
        return PrivacyForestResponse(
            privacy_level=forest.privacy_level,
            delta=forest.delta,
            epsilon=forest.epsilon,
            matrices={root_id: matrix for root_id, matrix in forest},
        )

    def publish_leaf_priors(self, subtree_root_id: str) -> Dict[str, float]:
        """Leaf priors of one sub-tree (the small vector footnote 5 lets users query)."""
        return self.engine.publish_leaf_priors(subtree_root_id)

    def clear_cache(self) -> None:
        """Drop every cached privacy forest and per-sub-tree matrix."""
        self.engine.clear_cache()

    def invalidate(self, privacy_level: Optional[int] = None) -> int:
        """Drop cached forests — all of them, or only one privacy level's."""
        return self.engine.invalidate(privacy_level)

    def publish_priors(self, priors: Dict[str, float], *, normalize: bool = True) -> int:
        """Install new leaf priors and flush every cache (live prior update)."""
        return self.engine.publish_priors(priors, normalize=normalize)

    def cache_size(self) -> int:
        """Number of cached forests."""
        return self.engine.cache_size()

    def cache_diagnostics(self) -> Dict[str, object]:
        """Forest- and matrix-cache state for monitoring and the perf harness."""
        return self.engine.cache_diagnostics()
