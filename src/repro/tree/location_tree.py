"""The location tree of Definition 3.1.

The tree is balanced (every leaf is at level 0, the root at level ``H``),
each non-leaf node has exactly seven children (the aperture of the
underlying hexagonal grid) and the children of a node partition it.  The
tree is the shared vocabulary between the server (which generates
obfuscation matrices for the sub-trees rooted at the user's privacy level)
and the user (who picks the sub-tree containing their real location,
evaluates preferences over its leaves and selects the precision level for
reporting).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.haversine import LatLng, pairwise_haversine_km
from repro.hexgrid.cell import HexCell
from repro.hexgrid.grid import HexGridSystem
from repro.hexgrid.hierarchy import cell_ancestor
from repro.tree.node import LocationNode
from repro.utils.validation import ensure_probability_vector


class LocationTree:
    """Balanced hierarchical index over a geographic area of interest.

    Instances are normally created through
    :func:`repro.tree.builder.build_location_tree`; the constructor wires the
    node objects together and validates the structural invariants.

    Parameters
    ----------
    grid:
        The hexagonal grid system the nodes' cells belong to.
    root_cell:
        Cell of the coarsest resolution covering the area of interest.
    height:
        Number of levels below the root (the paper's ``H``); leaves sit
        ``height`` resolutions finer than the root.
    """

    def __init__(self, grid: HexGridSystem, root_cell: HexCell, height: int) -> None:
        if height < 1:
            raise ValueError(f"tree height must be >= 1, got {height}")
        if root_cell.resolution + height > grid.max_resolution:
            raise ValueError(
                "leaf resolution "
                f"{root_cell.resolution + height} exceeds the grid's max resolution {grid.max_resolution}"
            )
        self.grid = grid
        self.root_cell = root_cell
        self.height = int(height)
        self._nodes: Dict[str, LocationNode] = {}
        self._levels: Dict[int, List[str]] = {level: [] for level in range(height + 1)}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build(self) -> None:
        root = self._make_node(self.root_cell, level=self.height, parent_id=None)
        frontier = [root]
        for level in range(self.height - 1, -1, -1):
            next_frontier: List[LocationNode] = []
            for parent in frontier:
                for child_cell in self.grid.subdivide(parent.cell, 1):
                    child = self._make_node(child_cell, level=level, parent_id=parent.node_id)
                    parent.children_ids.append(child.node_id)
                    next_frontier.append(child)
            frontier = next_frontier

    def _make_node(self, cell: HexCell, level: int, parent_id: Optional[str]) -> LocationNode:
        node = LocationNode(
            node_id=cell.cell_id,
            cell=cell,
            level=level,
            center=self.grid.cell_center_latlng(cell),
            parent_id=parent_id,
        )
        self._nodes[node.node_id] = node
        self._levels[level].append(node.node_id)
        return node

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> LocationNode:
        """The root node (level ``H``)."""
        return self._nodes[self.root_cell.cell_id]

    @property
    def leaf_resolution(self) -> int:
        """Hex-grid resolution of the leaf nodes."""
        return self.root_cell.resolution + self.height

    def level_to_resolution(self, level: int) -> int:
        """Hex-grid resolution of nodes at tree *level*."""
        self._check_level(level)
        return self.root_cell.resolution + (self.height - level)

    def resolution_to_level(self, resolution: int) -> int:
        """Tree level of nodes whose cells have the given resolution."""
        level = self.root_cell.resolution + self.height - resolution
        self._check_level(level)
        return level

    def node(self, node_id: str) -> LocationNode:
        """Return the node with the given id.

        Raises
        ------
        KeyError
            If the node does not belong to this tree.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not part of this location tree") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[LocationNode]:
        return iter(self._nodes.values())

    def nodes_at_level(self, level: int) -> List[LocationNode]:
        """All nodes at tree *level* (level 0 = leaves, ``height`` = root)."""
        self._check_level(level)
        return [self._nodes[node_id] for node_id in self._levels[level]]

    def leaves(self) -> List[LocationNode]:
        """All leaf nodes (level 0)."""
        return self.nodes_at_level(0)

    def num_nodes_at_level(self, level: int) -> int:
        """Number of nodes at *level* (``7 ** (height - level)``)."""
        self._check_level(level)
        return len(self._levels[level])

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def parent(self, node_id: str) -> Optional[LocationNode]:
        """Parent node, or ``None`` for the root."""
        node = self.node(node_id)
        if node.parent_id is None:
            return None
        return self._nodes[node.parent_id]

    def children(self, node_id: str) -> List[LocationNode]:
        """Children of the node (empty for leaves)."""
        node = self.node(node_id)
        return [self._nodes[child_id] for child_id in node.children_ids]

    def ancestor_at_level(self, node_id: str, level: int) -> LocationNode:
        """Ancestor of *node_id* at the requested (higher or equal) level."""
        node = self.node(node_id)
        self._check_level(level)
        if level < node.level:
            raise ValueError(
                f"level {level} is below the node's level {node.level}; ancestors are at higher levels"
            )
        ancestor_cell = cell_ancestor(node.cell, self.level_to_resolution(level))
        return self.node(ancestor_cell.cell_id)

    def descendants_at_level(self, node_id: str, level: int) -> List[LocationNode]:
        """Descendants of *node_id* at the requested (lower or equal) level, BFS order."""
        node = self.node(node_id)
        self._check_level(level)
        if level > node.level:
            raise ValueError(
                f"level {level} is above the node's level {node.level}; descendants are at lower levels"
            )
        current = [node]
        while current and current[0].level > level:
            next_level: List[LocationNode] = []
            for item in current:
                next_level.extend(self._nodes[cid] for cid in item.children_ids)
            current = next_level
        return current

    def descendant_leaves(self, node_id: str) -> List[LocationNode]:
        """Leaf descendants of *node_id* (the ``V_{i,0}`` of the paper)."""
        return self.descendants_at_level(node_id, 0)

    def subtree_node_ids(self, node_id: str) -> List[str]:
        """All node ids in the subtree rooted at *node_id* (BFS order)."""
        result: List[str] = []
        queue = deque([node_id])
        while queue:
            current = queue.popleft()
            result.append(current)
            queue.extend(self._nodes[current].children_ids)
        return result

    def bfs(self) -> Iterator[LocationNode]:
        """Breadth-first traversal from the root."""
        queue = deque([self.root.node_id])
        while queue:
            node_id = queue.popleft()
            node = self._nodes[node_id]
            yield node
            queue.extend(node.children_ids)

    def dfs(self) -> Iterator[LocationNode]:
        """Depth-first (pre-order) traversal from the root."""
        stack = [self.root.node_id]
        while stack:
            node_id = stack.pop()
            node = self._nodes[node_id]
            yield node
            stack.extend(reversed(node.children_ids))

    # ------------------------------------------------------------------ #
    # Geography
    # ------------------------------------------------------------------ #

    def leaf_for_latlng(self, lat: float, lng: float) -> LocationNode:
        """Leaf node containing the geographic point.

        Raises
        ------
        KeyError
            If the point falls outside the area covered by the tree.
        """
        cell = self.grid.latlng_to_cell(lat, lng, self.leaf_resolution)
        if cell.cell_id not in self._nodes:
            raise KeyError(
                f"point ({lat:.5f}, {lng:.5f}) is outside the location tree's area of interest"
            )
        return self._nodes[cell.cell_id]

    def node_for_latlng(self, lat: float, lng: float, level: int) -> LocationNode:
        """Node at *level* containing the geographic point (via its leaf)."""
        leaf = self.leaf_for_latlng(lat, lng)
        return self.ancestor_at_level(leaf.node_id, level)

    def contains_latlng(self, lat: float, lng: float) -> bool:
        """Whether the point falls inside the tree's area of interest."""
        cell = self.grid.latlng_to_cell(lat, lng, self.leaf_resolution)
        return cell.cell_id in self._nodes

    def distance_km(self, node_id_a: str, node_id_b: str) -> float:
        """Haversine distance between two node centres (km)."""
        node_a = self.node(node_id_a)
        node_b = self.node(node_id_b)
        return node_a.center.distance_km(node_b.center)

    def distance_matrix_km(self, node_ids: Sequence[str]) -> np.ndarray:
        """Symmetric distance matrix (km) between the centres of the given nodes."""
        centers = [self.node(node_id).center.as_tuple() for node_id in node_ids]
        return pairwise_haversine_km(centers)

    def centers(self, node_ids: Sequence[str]) -> List[LatLng]:
        """Centres of the given nodes, in order."""
        return [self.node(node_id).center for node_id in node_ids]

    # ------------------------------------------------------------------ #
    # Priors
    # ------------------------------------------------------------------ #

    def set_leaf_priors(self, priors: Dict[str, float], *, normalize: bool = True) -> None:
        """Assign prior probabilities to the leaves and aggregate them upwards.

        Parameters
        ----------
        priors:
            Mapping from leaf node id to (possibly unnormalised) prior mass.
            Leaves missing from the mapping receive zero mass.
        normalize:
            Rescale the provided masses to sum to 1 over the leaves.  When
            false, the masses must already sum to 1.
        """
        leaf_ids = [node.node_id for node in self.leaves()]
        unknown = set(priors) - set(self._nodes)
        if unknown:
            raise KeyError(f"priors refer to unknown nodes: {sorted(unknown)[:5]}")
        non_leaf = [node_id for node_id in priors if not self._nodes[node_id].is_leaf]
        if non_leaf:
            raise ValueError(f"priors must be given for leaf nodes only, got {sorted(non_leaf)[:5]}")
        masses = np.array([float(priors.get(node_id, 0.0)) for node_id in leaf_ids])
        masses = ensure_probability_vector(masses, "leaf priors", normalize=normalize)
        for node_id, mass in zip(leaf_ids, masses):
            self._nodes[node_id].prior = float(mass)
        self._aggregate_priors()

    def _aggregate_priors(self) -> None:
        for level in range(1, self.height + 1):
            for node in self.nodes_at_level(level):
                node.prior = float(sum(self._nodes[cid].prior for cid in node.children_ids))

    def leaf_priors(self, node_ids: Optional[Sequence[str]] = None) -> np.ndarray:
        """Prior vector over the given leaves (defaults to all leaves, tree order)."""
        if node_ids is None:
            node_ids = [node.node_id for node in self.leaves()]
        values = []
        for node_id in node_ids:
            node = self.node(node_id)
            if not node.is_leaf:
                raise ValueError(f"{node_id!r} is not a leaf node")
            values.append(node.prior)
        return np.asarray(values, dtype=float)

    def conditional_leaf_priors(self, node_ids: Sequence[str]) -> np.ndarray:
        """Priors over the given leaves re-normalised to sum to 1.

        This is the prior distribution used inside one sub-tree of the
        privacy forest: the server conditions on the user being somewhere in
        that sub-tree.  Falls back to the uniform distribution when the
        sub-tree carries no prior mass at all.
        """
        raw = self.leaf_priors(node_ids)
        total = raw.sum()
        if total <= 0:
            return np.full(len(raw), 1.0 / len(raw))
        return raw / total

    # ------------------------------------------------------------------ #
    # Attributes
    # ------------------------------------------------------------------ #

    def annotate(self, node_id: str, attributes: Dict[str, object]) -> None:
        """Merge *attributes* into the node's attribute dictionary."""
        self.node(node_id).update_attributes(attributes)

    def annotate_many(self, attribute_map: Dict[str, Dict[str, object]]) -> None:
        """Merge attributes for many nodes at once (``{node_id: {attr: value}}``)."""
        for node_id, attributes in attribute_map.items():
            self.annotate(node_id, attributes)

    # ------------------------------------------------------------------ #
    # Validation / summary
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the structural invariants of Definition 3.1.

        Raises
        ------
        AssertionError
            If any invariant is violated (balanced levels, 7 children per
            internal node, consistent parent/child links, disjoint children).
        """
        for level in range(self.height + 1):
            expected = 7 ** (self.height - level)
            actual = self.num_nodes_at_level(level)
            assert actual == expected, f"level {level}: expected {expected} nodes, found {actual}"
        for node in self:
            if node.is_leaf:
                assert not node.children_ids, f"leaf {node.node_id} has children"
            else:
                assert len(node.children_ids) == 7, f"node {node.node_id} has {len(node.children_ids)} children"
                child_cells = set()
                for child_id in node.children_ids:
                    child = self.node(child_id)
                    assert child.parent_id == node.node_id
                    assert child.level == node.level - 1
                    child_cells.add(child.cell)
                assert len(child_cells) == 7, f"node {node.node_id} has duplicate children"

    def summary(self) -> Dict[str, object]:
        """Small structural summary used by examples and logs."""
        return {
            "height": self.height,
            "root": self.root.node_id,
            "leaf_resolution": self.leaf_resolution,
            "num_leaves": self.num_nodes_at_level(0),
            "num_nodes": len(self),
            "leaf_edge_km": self.grid.edge_length_km(self.leaf_resolution),
        }

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.height:
            raise ValueError(f"level must be in [0, {self.height}], got {level}")

    def __repr__(self) -> str:
        return (
            f"LocationTree(root={self.root_cell.cell_id}, height={self.height}, "
            f"leaves={self.num_nodes_at_level(0)})"
        )
