"""Client side of the push gateway: one held connection, pushed refreshes.

Two clients over the same newline-delimited JSON frame protocol
(:mod:`repro.service.gateway`):

* :class:`GatewayClient` — blocking API for scripts and tests.  A daemon
  reader thread drains the held socket and installs pushed forests into a
  per-key store; callers block on :meth:`wait_forest` instead of polling.
* :class:`AsyncGatewayClient` — coroutine API for holding *many*
  connections from one event loop (the 1 000-connection stress test and
  the push-latency bench use it; a thread per held socket would not scale).

Both enforce the **generation guard**: a pushed forest is installed only
if its generation is strictly newer than the one held for that key, so an
initial-snapshot frame that raced a refresh push can never roll the client
back to a stale matrix (dropped frames are counted in ``stale_dropped``).
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.client.transport import ResponseForest
from repro.server.messages import PrivacyForestResponse
from repro.service.gateway import (
    MAX_FRAME_BYTES,
    GatewayProtocolError,
    decode_gateway_frame,
    encode_gateway_frame,
    key_from_wire,
)
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["AsyncGatewayClient", "GatewayClient", "GatewayPush"]

#: ``(privacy_level, delta, epsilon)`` as resolved by the server.
ClientKey = Tuple[int, int, float]


@dataclass
class GatewayPush:
    """One installed forest push."""

    key: ClientKey
    generation: int
    reason: str
    response: Dict[str, object]

    def forest(self) -> ResponseForest:
        """The pushed payload as a client-side :class:`ResponseForest`."""
        return ResponseForest.from_response(PrivacyForestResponse.from_dict(self.response))


class _PushStore:
    """Shared install logic: generation guard plus bookkeeping (no locking)."""

    def __init__(self) -> None:
        self.forests: Dict[ClientKey, GatewayPush] = {}
        self.generations_seen: Dict[ClientKey, List[int]] = {}
        self.subscribed: Dict[ClientKey, int] = {}
        self.subscribe_acks: List[ClientKey] = []
        self.errors: List[Dict[str, object]] = []
        self.pushes = 0
        self.stale_dropped = 0
        self.heartbeats = 0
        self.last_pong: Optional[object] = None
        self.closed_by_server = False

    def apply(self, frame: Dict[str, object]) -> None:
        """Fold one server frame into the store."""
        kind = frame.get("type")
        if kind == "forest":
            key = key_from_wire(frame["key"])  # type: ignore[arg-type]
            generation = int(frame["generation"])  # type: ignore[arg-type]
            self.generations_seen.setdefault(key, []).append(generation)
            held = self.forests.get(key)
            if held is not None and generation <= held.generation:
                self.stale_dropped += 1  # never roll back to an older matrix
                return
            self.forests[key] = GatewayPush(
                key=key,
                generation=generation,
                reason=str(frame.get("reason", "")),
                response=frame["response"],  # type: ignore[arg-type]
            )
            self.pushes += 1
        elif kind == "subscribed":
            key = key_from_wire(frame["key"])  # type: ignore[arg-type]
            generation = int(frame.get("generation", 1))  # type: ignore[arg-type]
            held = self.forests.get(key)
            if held is not None and generation < held.generation:
                # The server forgot the key (its state is pruned when the
                # last subscriber leaves) and restarted its generation
                # count: a new epoch.  Clear the held entry so the epoch's
                # pushes are installed rather than dropped as stale.
                del self.forests[key]
            self.subscribed[key] = generation
            self.subscribe_acks.append(key)
        elif kind == "heartbeat":
            self.heartbeats += 1
        elif kind == "pong":
            self.last_pong = frame.get("nonce")
        elif kind == "error":
            self.errors.append(frame)
        elif kind == "goodbye":
            self.closed_by_server = True
        # hello / unsubscribed frames carry no state worth keeping.


class GatewayClient:
    """Blocking gateway client holding one push connection.

    Usable as a context manager.  All waiting is condition-based (the
    reader thread notifies on every frame) — no polling loops.
    """

    def __init__(self, host: str, port: int, *, connect_timeout_s: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout_s)
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._cond = threading.Condition()
        self._store = _PushStore()
        self._closed = False
        self._reader = threading.Thread(
            target=self._reader_loop, name="gateway-client-reader", daemon=True
        )
        self._reader.start()

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        """Drop the held connection and stop the reader thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- sending -------------------------------------------------------- #

    def _send(self, payload: Dict[str, object]) -> None:
        frame = encode_gateway_frame(payload)
        with self._send_lock:
            self._sock.sendall(frame)

    def subscribe(
        self,
        privacy_level: int,
        delta: int,
        epsilon: Optional[float] = None,
        *,
        wait_s: Optional[float] = 10.0,
    ) -> Optional[ClientKey]:
        """Subscribe to a key; returns the server-resolved key (or ``None``
        when ``wait_s`` is ``None`` — the ack then arrives asynchronously).

        Only frames arriving *after* this send count: every subscribe —
        including a re-subscribe to an already-acked key — is acked with
        its own ``subscribed`` frame, and earlier async errors (say, a
        ``refresh_failed`` from a prior subscription) never bleed into
        this call's verdict.
        """
        with self._cond:
            acks_before = len(self._store.subscribe_acks)
            errors_before = len(self._store.errors)
        self._send(
            {
                "op": "subscribe",
                "privacy_level": privacy_level,
                "delta": delta,
                "epsilon": epsilon,
            }
        )
        if wait_s is None:
            return None
        deadline = time.monotonic() + wait_s
        with self._cond:
            while True:
                if len(self._store.subscribe_acks) > acks_before:
                    return self._store.subscribe_acks[acks_before]
                for error in self._store.errors[errors_before:]:
                    if error.get("error") in ("bad_request", "too_many_subscriptions"):
                        raise GatewayProtocolError(
                            f"subscribe rejected: {error.get('error')}: {error.get('detail')}"
                        )
                self._raise_if_dead()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("no subscribe acknowledgement within deadline")
                self._cond.wait(timeout=remaining)

    def ping(self, nonce: object = None) -> None:
        self._send({"op": "ping", "nonce": nonce})

    # -- receiving ------------------------------------------------------ #

    def _reader_loop(self) -> None:
        try:
            while True:
                line = self._file.readline(MAX_FRAME_BYTES + 2)
                if not line:
                    break
                try:
                    frame = decode_gateway_frame(line)
                except GatewayProtocolError:
                    logger.warning("gateway client dropped an undecodable frame")
                    continue
                with self._cond:
                    self._store.apply(frame)
                    self._cond.notify_all()
        except (OSError, ValueError):
            pass  # socket torn down under us — close() or server death
        finally:
            with self._cond:
                self._closed = True
                self._cond.notify_all()

    def _raise_if_dead(self) -> None:
        if self._closed:
            raise ConnectionError("gateway connection closed")

    def wait_forest(
        self,
        key: ClientKey,
        *,
        min_generation: int = 1,
        timeout_s: float = 30.0,
    ) -> GatewayPush:
        """Block until a forest for *key* at ``generation >= min_generation``
        is held, and return it."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                held = self._store.forests.get(key)
                if held is not None and held.generation >= min_generation:
                    return held
                self._raise_if_dead()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no forest for {key} at generation >= {min_generation} "
                        f"within {timeout_s:.1f}s"
                    )
                self._cond.wait(timeout=remaining)

    def held(self, key: ClientKey) -> Optional[GatewayPush]:
        """The currently installed push for *key* (``None`` before the first)."""
        with self._cond:
            return self._store.forests.get(key)

    def stats(self) -> Dict[str, int]:
        """Client-side frame bookkeeping (pushes, stale drops, heartbeats)."""
        with self._cond:
            return {
                "pushes": self._store.pushes,
                "stale_dropped": self._store.stale_dropped,
                "heartbeats": self._store.heartbeats,
                "errors": len(self._store.errors),
            }

    def generations_seen(self, key: ClientKey) -> List[int]:
        """Every pushed generation observed for *key*, in arrival order."""
        with self._cond:
            return list(self._store.generations_seen.get(key, []))


class AsyncGatewayClient:
    """Coroutine gateway client — hold hundreds of connections on one loop.

    Unlike :class:`GatewayClient` there is no background reader: the owner
    pumps frames explicitly via :meth:`pump_until` / :meth:`wait_forest`,
    which keeps a 1 000-client fleet at one task per client.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self.store = _PushStore()

    @classmethod
    async def open(cls, host: str, port: int) -> "AsyncGatewayClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 2
        )
        return cls(reader, writer)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    async def send(self, payload: Dict[str, object]) -> None:
        self._writer.write(encode_gateway_frame(payload))
        await self._writer.drain()

    async def subscribe(
        self, privacy_level: int, delta: int, epsilon: Optional[float] = None
    ) -> None:
        await self.send(
            {
                "op": "subscribe",
                "privacy_level": privacy_level,
                "delta": delta,
                "epsilon": epsilon,
            }
        )

    async def _pump_one(self) -> bool:
        """Read and fold one frame; ``False`` on EOF."""
        line = await self._reader.readline()
        if not line:
            self.store.closed_by_server = True
            return False
        try:
            frame = decode_gateway_frame(line)
        except GatewayProtocolError:
            logger.warning("gateway client dropped an undecodable frame")
            return True
        self.store.apply(frame)
        return True

    async def pump_until(self, predicate, *, timeout_s: float = 30.0) -> None:
        """Fold frames until ``predicate(store)`` holds (or raise on timeout/EOF)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while not predicate(self.store):
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError("gateway predicate not satisfied within deadline")
            try:
                alive = await asyncio.wait_for(self._pump_one(), timeout=remaining)
            except asyncio.TimeoutError:
                raise TimeoutError("gateway predicate not satisfied within deadline") from None
            if not alive and not predicate(self.store):
                raise ConnectionError("gateway connection closed by server")

    async def wait_forest(
        self, key: ClientKey, *, min_generation: int = 1, timeout_s: float = 30.0
    ) -> GatewayPush:
        """Pump until a forest for *key* at ``generation >= min_generation`` is held."""
        await self.pump_until(
            lambda store: (
                store.forests.get(key) is not None
                and store.forests[key].generation >= min_generation
            ),
            timeout_s=timeout_s,
        )
        return self.store.forests[key]
