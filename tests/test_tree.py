"""Tests for the location tree: structure, navigation, priors, builders."""

import numpy as np
import pytest

from repro.datasets.region import SAN_FRANCISCO
from repro.geometry.haversine import LatLng
from repro.tree.builder import build_location_tree, tree_for_point, tree_for_region
from repro.tree.location_tree import LocationTree
from repro.tree.priors import (
    aggregate_priors,
    checkin_counts_by_cell,
    conditional_priors,
    priors_from_checkins,
    priors_from_counts,
    uniform_priors,
)
from repro.hexgrid.grid import HexGridSystem


class TestTreeStructure:
    def test_node_counts_per_level(self, medium_tree):
        assert medium_tree.num_nodes_at_level(2) == 1
        assert medium_tree.num_nodes_at_level(1) == 7
        assert medium_tree.num_nodes_at_level(0) == 49
        assert len(medium_tree) == 57

    def test_validate_passes(self, medium_tree):
        medium_tree.validate()

    def test_root_properties(self, medium_tree):
        root = medium_tree.root
        assert root.is_root
        assert not root.is_leaf
        assert root.level == medium_tree.height

    def test_leaves_are_level_zero(self, medium_tree):
        assert all(leaf.is_leaf and leaf.level == 0 for leaf in medium_tree.leaves())

    def test_level_resolution_mapping(self, medium_tree):
        assert medium_tree.level_to_resolution(medium_tree.height) == medium_tree.root_cell.resolution
        assert medium_tree.level_to_resolution(0) == medium_tree.leaf_resolution
        assert medium_tree.resolution_to_level(medium_tree.leaf_resolution) == 0

    def test_invalid_level_rejected(self, medium_tree):
        with pytest.raises(ValueError):
            medium_tree.nodes_at_level(medium_tree.height + 1)
        with pytest.raises(ValueError):
            medium_tree.level_to_resolution(-1)

    def test_unknown_node_rejected(self, medium_tree):
        with pytest.raises(KeyError):
            medium_tree.node("h1:999:999")

    def test_contains(self, medium_tree):
        assert medium_tree.root.node_id in medium_tree
        assert "nonsense" not in medium_tree

    def test_bfs_visits_all_nodes_once(self, medium_tree):
        visited = [node.node_id for node in medium_tree.bfs()]
        assert len(visited) == len(medium_tree)
        assert len(set(visited)) == len(medium_tree)
        assert visited[0] == medium_tree.root.node_id

    def test_dfs_visits_all_nodes_once(self, medium_tree):
        visited = [node.node_id for node in medium_tree.dfs()]
        assert len(set(visited)) == len(medium_tree)

    def test_height_must_be_positive(self, medium_tree):
        with pytest.raises(ValueError):
            LocationTree(medium_tree.grid, medium_tree.root_cell, 0)

    def test_height_beyond_max_resolution_rejected(self):
        grid = HexGridSystem(LatLng(37.77, -122.42), max_resolution=8)
        root = grid.latlng_to_cell(37.77, -122.42, 7)
        with pytest.raises(ValueError):
            LocationTree(grid, root, 2)


class TestNavigation:
    def test_parent_child_links(self, medium_tree):
        for node in medium_tree.nodes_at_level(1):
            parent = medium_tree.parent(node.node_id)
            assert parent is not None and parent.node_id == medium_tree.root.node_id
            children = medium_tree.children(node.node_id)
            assert len(children) == 7
            assert all(child.parent_id == node.node_id for child in children)

    def test_root_has_no_parent(self, medium_tree):
        assert medium_tree.parent(medium_tree.root.node_id) is None

    def test_ancestor_at_level(self, medium_tree):
        leaf = medium_tree.leaves()[10]
        assert medium_tree.ancestor_at_level(leaf.node_id, 0) == leaf
        ancestor = medium_tree.ancestor_at_level(leaf.node_id, 2)
        assert ancestor.node_id == medium_tree.root.node_id

    def test_ancestor_below_level_rejected(self, medium_tree):
        with pytest.raises(ValueError):
            medium_tree.ancestor_at_level(medium_tree.root.node_id, 0)

    def test_descendant_leaves_counts(self, medium_tree):
        assert len(medium_tree.descendant_leaves(medium_tree.root.node_id)) == 49
        level1 = medium_tree.nodes_at_level(1)[0]
        assert len(medium_tree.descendant_leaves(level1.node_id)) == 7

    def test_descendants_above_level_rejected(self, medium_tree):
        leaf = medium_tree.leaves()[0]
        with pytest.raises(ValueError):
            medium_tree.descendants_at_level(leaf.node_id, 1)

    def test_subtree_node_ids(self, medium_tree):
        level1 = medium_tree.nodes_at_level(1)[0]
        subtree = medium_tree.subtree_node_ids(level1.node_id)
        assert len(subtree) == 1 + 7
        assert subtree[0] == level1.node_id

    def test_descendant_leaves_partition_root(self, medium_tree):
        all_leaves = {leaf.node_id for leaf in medium_tree.leaves()}
        union = set()
        for node in medium_tree.nodes_at_level(1):
            leaves = {leaf.node_id for leaf in medium_tree.descendant_leaves(node.node_id)}
            assert union.isdisjoint(leaves)
            union |= leaves
        assert union == all_leaves


class TestGeography:
    def test_leaf_for_latlng_center(self, medium_tree):
        leaf = medium_tree.leaves()[5]
        found = medium_tree.leaf_for_latlng(leaf.center.lat, leaf.center.lng)
        assert found.node_id == leaf.node_id

    def test_point_outside_raises(self, medium_tree):
        with pytest.raises(KeyError):
            medium_tree.leaf_for_latlng(0.0, 0.0)

    def test_contains_latlng(self, medium_tree):
        root_center = medium_tree.root.center
        assert medium_tree.contains_latlng(root_center.lat, root_center.lng)
        assert not medium_tree.contains_latlng(0.0, 0.0)

    def test_node_for_latlng_levels(self, medium_tree):
        center = medium_tree.root.center
        node1 = medium_tree.node_for_latlng(center.lat, center.lng, 1)
        assert node1.level == 1
        node2 = medium_tree.node_for_latlng(center.lat, center.lng, 2)
        assert node2.node_id == medium_tree.root.node_id

    def test_distance_matrix(self, medium_tree):
        ids = [leaf.node_id for leaf in medium_tree.leaves()[:5]]
        matrix = medium_tree.distance_matrix_km(ids)
        assert matrix.shape == (5, 5)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)

    def test_distance_km_symmetric(self, medium_tree):
        a, b = medium_tree.leaves()[0].node_id, medium_tree.leaves()[1].node_id
        assert medium_tree.distance_km(a, b) == pytest.approx(medium_tree.distance_km(b, a))

    def test_centers(self, medium_tree):
        ids = [leaf.node_id for leaf in medium_tree.leaves()[:3]]
        centers = medium_tree.centers(ids)
        assert len(centers) == 3


class TestPriors:
    def test_set_leaf_priors_normalises_and_aggregates(self, medium_tree):
        leaf_ids = [leaf.node_id for leaf in medium_tree.leaves()]
        medium_tree.set_leaf_priors({leaf_ids[0]: 3.0, leaf_ids[1]: 1.0})
        priors = medium_tree.leaf_priors()
        assert priors.sum() == pytest.approx(1.0)
        assert priors[0] == pytest.approx(0.75)
        assert medium_tree.root.prior == pytest.approx(1.0)

    def test_priors_on_non_leaf_rejected(self, medium_tree):
        with pytest.raises(ValueError):
            medium_tree.set_leaf_priors({medium_tree.root.node_id: 1.0})

    def test_priors_unknown_node_rejected(self, medium_tree):
        with pytest.raises(KeyError):
            medium_tree.set_leaf_priors({"h0:99:99": 1.0})

    def test_conditional_leaf_priors_uniform_fallback(self, medium_tree):
        leaf_ids = [leaf.node_id for leaf in medium_tree.leaves()]
        medium_tree.set_leaf_priors({leaf_ids[0]: 1.0})
        subtree = medium_tree.nodes_at_level(1)[-1]
        sub_ids = [leaf.node_id for leaf in medium_tree.descendant_leaves(subtree.node_id)]
        if leaf_ids[0] not in sub_ids:
            conditional = medium_tree.conditional_leaf_priors(sub_ids)
            assert np.allclose(conditional, 1.0 / len(sub_ids))

    def test_leaf_priors_rejects_internal_nodes(self, medium_tree):
        with pytest.raises(ValueError):
            medium_tree.leaf_priors([medium_tree.root.node_id])

    def test_priors_from_checkins(self, small_tree, synthetic_dataset):
        priors = priors_from_checkins(small_tree, synthetic_dataset, apply=True)
        assert sum(priors.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in priors.values())
        assert small_tree.root.prior == pytest.approx(1.0)

    def test_priors_from_checkins_no_smoothing(self, small_tree, synthetic_dataset):
        priors = priors_from_checkins(small_tree, synthetic_dataset, smoothing=0.0, apply=False)
        assert sum(priors.values()) == pytest.approx(1.0)

    def test_priors_negative_smoothing_rejected(self, small_tree, synthetic_dataset):
        with pytest.raises(ValueError):
            priors_from_checkins(small_tree, synthetic_dataset, smoothing=-1.0)

    def test_checkin_counts(self, small_tree, synthetic_dataset):
        counts = checkin_counts_by_cell(small_tree, synthetic_dataset)
        assert all(count >= 0 for count in counts.values())
        assert set(counts) <= {leaf.node_id for leaf in small_tree.leaves()}

    def test_uniform_priors(self, medium_tree):
        priors = uniform_priors(medium_tree)
        values = list(priors.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_aggregate_and_conditional_priors(self, medium_tree):
        uniform_priors(medium_tree)
        level1_ids = [node.node_id for node in medium_tree.nodes_at_level(1)]
        aggregated = aggregate_priors(medium_tree, level1_ids)
        assert aggregated.sum() == pytest.approx(1.0)
        conditional = conditional_priors(medium_tree, level1_ids[:3])
        assert conditional.sum() == pytest.approx(1.0)

    def test_priors_from_counts(self, medium_tree):
        leaf_ids = [leaf.node_id for leaf in medium_tree.leaves()]
        priors = priors_from_counts(medium_tree, {leaf_ids[0]: 10, leaf_ids[1]: 30})
        assert priors[leaf_ids[1]] == pytest.approx(0.75)

    def test_priors_from_counts_rejects_unknown(self, medium_tree):
        with pytest.raises(KeyError):
            priors_from_counts(medium_tree, {"bogus": 1.0})

    def test_priors_from_counts_rejects_negative(self, medium_tree):
        leaf = medium_tree.leaves()[0].node_id
        with pytest.raises(ValueError):
            priors_from_counts(medium_tree, {leaf: -5.0})


class TestAttributesOnNodes:
    def test_annotate_single(self, medium_tree):
        leaf = medium_tree.leaves()[0]
        medium_tree.annotate(leaf.node_id, {"popular": True})
        assert medium_tree.node(leaf.node_id).get_attribute("popular") is True

    def test_annotate_many(self, medium_tree):
        ids = [leaf.node_id for leaf in medium_tree.leaves()[:3]]
        medium_tree.annotate_many({node_id: {"checkin_count": 5} for node_id in ids})
        assert all(medium_tree.node(node_id).get_attribute("checkin_count") == 5 for node_id in ids)

    def test_get_attribute_default(self, medium_tree):
        assert medium_tree.root.get_attribute("missing", "fallback") == "fallback"


class TestBuilders:
    def test_tree_for_region_covers_center(self):
        tree = tree_for_region(SAN_FRANCISCO, height=1, root_resolution=7)
        center = SAN_FRANCISCO.center
        assert tree.contains_latlng(center.lat, center.lng)
        assert tree.num_nodes_at_level(0) == 7

    def test_tree_for_point(self):
        tree = tree_for_point(LatLng(40.75, -73.98), height=1, root_resolution=8)
        assert tree.contains_latlng(40.75, -73.98)

    def test_build_location_tree_summary(self, medium_tree):
        summary = medium_tree.summary()
        assert summary["num_leaves"] == 49
        assert summary["height"] == 2

    def test_build_with_existing_grid(self):
        grid = HexGridSystem(LatLng(37.77, -122.42))
        root = grid.latlng_to_cell(37.77, -122.42, 8)
        tree = build_location_tree(grid, root, 1)
        assert len(tree.leaves()) == 7

    def test_repr(self, medium_tree):
        assert "LocationTree" in repr(medium_tree)
        assert "LocationNode" in repr(medium_tree.root)
