"""Matrix-generation pipeline: incremental structure reuse, caching, parallelism.

This package turns the LP hot path of Algorithms 1 and 3 into a staged
pipeline:

* :mod:`repro.pipeline.fingerprint` — canonical content-addressed keys for
  LP / robust-generation problems;
* :mod:`repro.pipeline.cache` — an LRU :class:`MatrixCache` with hit/miss
  statistics, keyed by those fingerprints;
* :mod:`repro.pipeline.executor` — process-parallel fan-out of independent
  per-sub-tree robust generations with deterministic, order-stable results.

The structural half of the incremental story lives in
:class:`repro.core.lp.ConstraintStructure`, which the LP builds once per
location set and refreshes per iteration.  See PERFORMANCE.md for the
architecture overview and the perf harness.
"""

from repro.pipeline.cache import CacheStats, MatrixCache
from repro.pipeline.executor import (
    RobustGenerationTask,
    execute_robust_task,
    execute_robust_task_group,
    run_robust_task_groups,
    run_robust_tasks,
)
from repro.pipeline.fingerprint import (
    FINGERPRINT_VERSION,
    array_digest,
    constraint_set_digest,
    fingerprint_fields,
    geometry_fingerprint,
    problem_fingerprint,
    structure_fingerprint,
)

__all__ = [
    "CacheStats",
    "MatrixCache",
    "RobustGenerationTask",
    "execute_robust_task",
    "execute_robust_task_group",
    "run_robust_task_groups",
    "run_robust_tasks",
    "FINGERPRINT_VERSION",
    "array_digest",
    "constraint_set_digest",
    "fingerprint_fields",
    "geometry_fingerprint",
    "problem_fingerprint",
    "structure_fingerprint",
]
