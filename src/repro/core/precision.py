"""Matrix precision reduction (Section 4.5, Algorithm 2, Eq. 17).

The server always generates the obfuscation matrix at the highest precision
(level 0, the leaf nodes of the chosen sub-tree).  When the user's policy
asks for a coarser precision level ``l`` the matrix is *reduced* rather than
recalculated: rows and columns of leaf nodes are folded into their ancestors
at level ``l`` using

    z^l_{i,j} = Σ_{m ∈ leaves(v_i)} p_m Σ_{n ∈ leaves(v_j)} z^0_{m,n}  /  p_{v_i}

(Eq. 17), which Proposition 4.6 shows preserves both the probability unit
measure and ε-Geo-Ind.  The operation is a handful of matrix aggregations —
this is what makes Fig. 14's "precision reduction vs matrix recalculation"
comparison so lopsided.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.exceptions import PrecisionReductionError
from repro.core.matrix import ObfuscationMatrix
from repro.tree.location_tree import LocationTree
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def precision_reduction(
    matrix: ObfuscationMatrix,
    tree: LocationTree,
    level: int,
    *,
    leaf_priors: Optional[Dict[str, float]] = None,
) -> ObfuscationMatrix:
    """Reduce a leaf-level obfuscation matrix to tree level *level*.

    Parameters
    ----------
    matrix:
        Obfuscation matrix whose node ids are leaf nodes of *tree* (level 0).
        The matrix may already be pruned; only the leaves it still covers are
        aggregated.
    tree:
        The location tree providing the ancestor relationships and, when
        *leaf_priors* is not supplied, the leaf priors ``p_m``.
    level:
        Target precision level ``l`` (0 returns a copy of the input).
    leaf_priors:
        Optional priors per leaf id overriding the tree's stored priors.
        When every involved prior is zero a uniform weighting is used, which
        corresponds to an uninformative prior.

    Returns
    -------
    ObfuscationMatrix
        Matrix over the distinct level-*level* ancestors of the input leaves,
        ordered by first appearance of their descendants in the input matrix.
    """
    if level < 0 or level > tree.height:
        raise PrecisionReductionError(
            f"precision level must be in [0, {tree.height}], got {level}"
        )
    if matrix.level != 0:
        raise PrecisionReductionError(
            f"precision reduction expects a level-0 matrix, got level {matrix.level}"
        )
    unknown = [node_id for node_id in matrix.node_ids if node_id not in tree]
    if unknown:
        raise PrecisionReductionError(
            f"matrix covers nodes that are not part of the tree: {unknown[:5]}"
        )
    not_leaves = [node_id for node_id in matrix.node_ids if not tree.node(node_id).is_leaf]
    if not_leaves:
        raise PrecisionReductionError(
            f"matrix must cover leaf nodes only, got non-leaves: {not_leaves[:5]}"
        )
    if level == 0:
        return matrix.copy()

    # Group the matrix's leaves by their ancestor at the requested level,
    # preserving first-appearance order so results are deterministic.
    ancestor_order: List[str] = []
    ancestor_members: Dict[str, List[int]] = {}
    for position, node_id in enumerate(matrix.node_ids):
        ancestor = tree.ancestor_at_level(node_id, level).node_id
        if ancestor not in ancestor_members:
            ancestor_members[ancestor] = []
            ancestor_order.append(ancestor)
        ancestor_members[ancestor].append(position)

    priors = _resolve_priors(matrix, tree, leaf_priors)

    size = len(ancestor_order)
    values = np.zeros((size, size))
    for row_index, ancestor_i in enumerate(ancestor_order):
        member_rows = ancestor_members[ancestor_i]
        weights = priors[member_rows]
        weight_total = weights.sum()
        if weight_total <= 0:
            # Uninformative prior inside this ancestor: weight leaves equally.
            weights = np.full(len(member_rows), 1.0 / len(member_rows))
            weight_total = 1.0
        row_block = matrix.values[member_rows, :]
        weighted_rows = weights @ row_block  # Σ_m p_m z^0_{m, ·}
        for col_index, ancestor_j in enumerate(ancestor_order):
            member_cols = ancestor_members[ancestor_j]
            values[row_index, col_index] = weighted_rows[member_cols].sum() / weight_total

    reduced = ObfuscationMatrix(
        values=values,
        node_ids=ancestor_order,
        level=level,
        epsilon=matrix.epsilon,
        delta=matrix.delta,
        metadata={
            **{k: v for k, v in matrix.metadata.items() if k != "_node_index"},
            "reduced_from_level": 0,
            "reduced_from_size": matrix.size,
        },
    )
    logger.debug(
        "precision reduction: %d leaves -> %d nodes at level %d", matrix.size, size, level
    )
    return reduced


def ancestor_row_for(
    tree: LocationTree,
    reduced_matrix: ObfuscationMatrix,
    leaf_id: str,
) -> str:
    """The reduced matrix row to sample from for a user whose real leaf is *leaf_id*.

    Algorithm 4 (step 8) samples from the row of the ancestor of the real
    location at the precision level; this helper performs that lookup and
    validates that the ancestor survived any pruning.
    """
    ancestor = tree.ancestor_at_level(leaf_id, reduced_matrix.level).node_id
    if ancestor not in reduced_matrix:
        raise PrecisionReductionError(
            f"the ancestor {ancestor!r} of leaf {leaf_id!r} is not covered by the reduced matrix "
            "(its descendants may all have been pruned)"
        )
    return ancestor


def _resolve_priors(
    matrix: ObfuscationMatrix,
    tree: LocationTree,
    leaf_priors: Optional[Dict[str, float]],
) -> np.ndarray:
    if leaf_priors is not None:
        missing = [node_id for node_id in matrix.node_ids if node_id not in leaf_priors]
        if missing:
            raise PrecisionReductionError(
                f"leaf_priors is missing entries for {missing[:5]}"
            )
        values = np.array([float(leaf_priors[node_id]) for node_id in matrix.node_ids])
    else:
        values = np.array([tree.node(node_id).prior for node_id in matrix.node_ids])
    if np.any(values < 0):
        raise PrecisionReductionError("priors must be non-negative")
    return values
