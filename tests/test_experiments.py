"""Tests for the experiment configuration, workloads and figure drivers.

The drivers are exercised at a micro scale (tiny sweeps, 2 iterations, a
handful of trials) so the whole file stays fast while still executing every
code path the benchmarks rely on.  Shape assertions mirror what
EXPERIMENTS.md records against the paper.
"""

import pytest

from repro.experiments.config import PAPER_SCALE, SMALL_SCALE, get_scale
from repro.experiments.convergence import run_convergence_experiment
from repro.experiments.graph_approx import run_constraint_count_experiment, run_runtime_experiment
from repro.experiments.precision_timing import run_precision_timing_experiment
from repro.experiments.privacy_level import run_privacy_level_experiment
from repro.experiments.privacy_params import run_privacy_params_experiment
from repro.experiments.pruning_impact import run_pruning_impact_experiment
from repro.experiments.runner import EXPERIMENTS, results_to_json, run_all
from repro.experiments.workloads import build_workload


@pytest.fixture(scope="module")
def micro_config():
    return SMALL_SCALE.derive(
        name="small",
        num_checkins=1_200,
        num_targets=10,
        robust_iterations=2,
        pruning_trials=4,
        epsilon_sweep=(15.0, 17.0),
        delta_sweep=(1, 2),
        pruned_counts=(2, 5),
        location_counts=(7, 14),
        precision_location_counts=(14, 21),
        privacy_level_choices=((1, 1), (1, 0)),
        seed=99,
    )


@pytest.fixture(scope="module")
def micro_workload(micro_config):
    return build_workload(micro_config)


@pytest.fixture(scope="module")
def micro_location_set(micro_workload):
    # A 7-leaf range keeps every LP solve in this file well under a second.
    return micro_workload.subtree_location_set(privacy_level=1)


class TestConfig:
    def test_scales_exist(self):
        assert SMALL_SCALE.name == "small"
        assert PAPER_SCALE.name == "paper"
        assert PAPER_SCALE.robust_iterations == 10
        assert PAPER_SCALE.pruning_trials == 500

    def test_get_scale_lookup(self, monkeypatch):
        assert get_scale("small") is SMALL_SCALE
        assert get_scale("paper") is PAPER_SCALE
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is PAPER_SCALE
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_derive_overrides(self):
        derived = SMALL_SCALE.derive(epsilon=20.0)
        assert derived.epsilon == 20.0
        assert SMALL_SCALE.epsilon == 15.0

    def test_leaves_per_subtree(self):
        assert SMALL_SCALE.leaves_per_subtree == 49


class TestWorkload:
    def test_workload_structure(self, micro_workload, micro_config):
        assert len(micro_workload.tree.leaves()) == 7**micro_config.tree_height
        assert len(micro_workload.train) + len(micro_workload.test) == len(micro_workload.dataset)
        assert micro_workload.targets.size == micro_config.num_targets
        assert micro_workload.tree.root.prior == pytest.approx(1.0)

    def test_subtree_location_set(self, micro_workload):
        location_set = micro_workload.subtree_location_set(privacy_level=1)
        assert location_set.size == 7
        assert location_set.priors.sum() == pytest.approx(1.0)
        assert location_set.graph.is_connected()
        assert location_set.distance_matrix_km.shape == (7, 7)

    def test_subtree_index_out_of_range(self, micro_workload):
        with pytest.raises(IndexError):
            micro_workload.subtree_location_set(privacy_level=1, index=999)

    def test_connected_location_set_sizes(self, micro_workload):
        for size in (7, 12, 30):
            location_set = micro_workload.connected_location_set(size)
            assert location_set.size == size
            assert location_set.graph.is_connected()

    def test_connected_location_set_invalid_size(self, micro_workload):
        with pytest.raises(ValueError):
            micro_workload.connected_location_set(0)
        with pytest.raises(ValueError):
            micro_workload.connected_location_set(10**6)

    def test_test_points_in(self, micro_workload):
        all_leaf_ids = [leaf.node_id for leaf in micro_workload.tree.leaves()]
        points = micro_workload.test_points_in(all_leaf_ids, limit=5)
        assert len(points) <= 5


class TestConvergenceExperiment:
    def test_fig9_shape(self, micro_config, micro_workload, micro_location_set):
        result = run_convergence_experiment(
            micro_config, deltas=[1], workload=micro_workload, max_iterations=2
        )
        history = result.histories[1]
        assert len(history) == 3  # non-robust + 2 iterations
        assert all(value >= 0 for value in history)
        assert len(result.differences[1]) == 2
        assert result.table is not None and len(result.table.rows) == 3
        assert result.iterations_to_converge[1] >= 1


class TestGraphApproxExperiment:
    def test_fig10b_constraint_counts(self, micro_config, micro_workload):
        result = run_constraint_count_experiment(micro_config, workload=micro_workload)
        for row in result.constraint_rows:
            assert row["with_graph_approx"] <= row["without_graph_approx"]
        # The reduction grows with the number of locations (O(K^2) vs O(K^3)).
        reductions = [row["reduction_pct"] for row in result.constraint_rows]
        assert reductions == sorted(reductions)

    def test_fig10a_runtime(self, micro_config, micro_workload):
        result = run_runtime_experiment(
            micro_config, workload=micro_workload, deltas=[1], num_locations=14, iterations=1
        )
        row = result.runtime_rows[0]
        assert row["with_graph_approx_s"] > 0
        assert row["without_graph_approx_s"] > 0


class TestPrivacyParamsExperiment:
    def test_fig11_shape(self, micro_config, micro_workload, micro_location_set):
        result = run_privacy_params_experiment(
            micro_config,
            workload=micro_workload,
            epsilons=[15.0, 17.0],
            deltas=[1],
            location_set=micro_location_set,
        )
        assert len(result.rows) == 2
        assert result.corgi_never_below_nonrobust()
        for epsilon in (15.0, 17.0):
            assert result.nonrobust_loss[epsilon] >= 0


class TestPruningImpactExperiment:
    def test_fig12_shape(self, micro_config, micro_workload):
        result = run_pruning_impact_experiment(
            micro_config,
            workload=micro_workload,
            deltas=[2],
            location_counts=[49],
            pruned_counts=[3, 7],
            trials=4,
        )
        assert (49, "non-robust") in result.curves
        assert (49, "CORGI(delta=2)") in result.curves
        assert result.corgi_always_below_nonrobust()
        assert result.headline
        assert result.headline["pruned_fraction_pct"] == pytest.approx(100 * 7 / 49)


class TestPrivacyLevelExperiment:
    def test_fig13_shape(self, micro_config, micro_workload):
        result = run_privacy_level_experiment(
            micro_config,
            workload=micro_workload,
            epsilons=[15.0],
            deltas=[1],
            choices=[(2, 1), (1, 0)],
        )
        assert result.wider_range_costs_more()
        assert len(result.rows) == 2


class TestPrecisionTimingExperiment:
    def test_fig14_shape(self, micro_config, micro_workload):
        result = run_precision_timing_experiment(
            micro_config,
            workload=micro_workload,
            location_counts=[14],
            deltas=[1],
            reduction_repeats=2,
        )
        assert result.reduction_always_faster()
        assert 0 < result.mean_time_ratio < 1


class TestRunner:
    def test_registry_covers_all_figures(self):
        assert set(EXPERIMENTS) == {
            "convergence",
            "graph_approx",
            "privacy_params",
            "pruning_impact",
            "privacy_level",
            "precision_timing",
        }

    def test_run_all_subset(self, micro_config, capsys):
        results = run_all(micro_config, only=["graph_approx"], print_tables=True)
        assert "graph_approx" in results
        output = capsys.readouterr().out
        assert "Fig. 10" in output
        payload = results_to_json(results)
        assert "graph_approx" in payload
