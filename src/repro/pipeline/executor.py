"""Process-parallel execution of independent robust-generation problems.

Algorithm 3 generates one robust matrix per sub-tree at the privacy level;
the problems share no state, so they fan out across worker processes.  A
task carries only plain arrays (node ids, distances, cost matrix, priors,
constraint pairs) plus scalar knobs, which keeps pickling cheap and avoids
shipping the whole location tree to every worker; the worker rebuilds the
LP objective with :class:`~repro.core.objective.LinearQualityModel`.

Determinism: results are returned in task order regardless of worker count
or completion order (``ProcessPoolExecutor.map`` semantics), and every
worker runs the exact same serial code path as ``max_workers=1``, so the
output is bit-identical to the serial loop.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.geoind import GeoIndConstraintSet
from repro.core.objective import LinearQualityModel
from repro.core.robust import RobustGenerationResult, RobustMatrixGenerator
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class RobustGenerationTask:
    """One self-contained robust-generation problem (picklable).

    Attributes mirror the :class:`~repro.core.robust.RobustMatrixGenerator`
    arguments; ``key`` is an opaque caller-side identifier (the sub-tree
    root id on the server) carried through to correlate results.
    """

    key: str
    node_ids: List[str]
    distance_matrix_km: np.ndarray
    cost_matrix: np.ndarray
    priors: Optional[np.ndarray]
    epsilon: float
    delta: int
    constraint_pairs: Optional[np.ndarray] = None
    constraint_distances_km: Optional[np.ndarray] = None
    constraint_description: str = "custom"
    max_iterations: int = 10
    rpb_method: str = "approx"
    basis_row: str = "real"
    solver_method: str = "highs"
    level: int = 0
    metadata: dict = field(default_factory=dict)

    def constraint_set(self) -> Optional[GeoIndConstraintSet]:
        """Rebuild the constraint set, or None for the all-pairs default."""
        if self.constraint_pairs is None:
            return None
        return GeoIndConstraintSet(
            pairs=self.constraint_pairs,
            distances_km=self.constraint_distances_km,
            description=self.constraint_description,
        )


def execute_robust_task(task: RobustGenerationTask) -> RobustGenerationResult:
    """Run Algorithm 1 for one task (the worker entry point)."""
    quality_model = LinearQualityModel(task.cost_matrix, task.priors)
    generator = RobustMatrixGenerator(
        task.node_ids,
        task.distance_matrix_km,
        quality_model,
        task.epsilon,
        task.delta,
        constraint_set=task.constraint_set(),
        max_iterations=task.max_iterations,
        rpb_method=task.rpb_method,  # type: ignore[arg-type]
        basis_row=task.basis_row,  # type: ignore[arg-type]
        solver_method=task.solver_method,
        level=task.level,
    )
    result = generator.generate()
    result.matrix.metadata.update(task.metadata)
    return result


def run_robust_tasks(
    tasks: Sequence[RobustGenerationTask],
    *,
    max_workers: int = 1,
) -> List[RobustGenerationResult]:
    """Execute every task, serially or across processes, in task order.

    ``max_workers <= 1`` (or a single task) runs the plain serial loop.
    When worker processes cannot be spawned (restricted environments), the
    executor logs a warning and falls back to the serial path rather than
    failing the request.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    tasks = list(tasks)
    if max_workers == 1 or len(tasks) <= 1:
        return [execute_robust_task(task) for task in tasks]
    try:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(tasks))) as pool:
            return list(pool.map(execute_robust_task, tasks))
    except (OSError, BrokenProcessPool) as error:
        # OSError: workers could not be spawned at all; BrokenProcessPool: a
        # worker died mid-run (OOM kill, spawn re-import failure).  Task-level
        # exceptions (e.g. infeasible LPs) propagate with their original type.
        logger.warning(
            "parallel generation unavailable (%s); falling back to serial", error
        )
        return [execute_robust_task(task) for task in tasks]
