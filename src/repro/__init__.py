"""CORGI — CustOmizable Robust Geo-Indistinguishability.

A complete, pure-Python reproduction of *"User Customizable and Robust
Geo-Indistinguishability for Location Privacy"* (EDBT 2023): hexagonal
hierarchical location trees, customization policies, robust obfuscation
matrix generation via linear programming, user-side pruning and precision
reduction, baselines, adversary models and the full experiment suite.

Typical usage::

    from repro import (
        SAN_FRANCISCO, tree_for_region, priors_from_checkins,
        GowallaLikeGenerator, CORGIServer, CORGIClient, Policy,
    )

    dataset = GowallaLikeGenerator(seed=7).generate()
    tree = tree_for_region(SAN_FRANCISCO, height=2, root_resolution=7)
    priors_from_checkins(tree, dataset)
    server = CORGIServer(tree)
    client = CORGIClient(tree, server)
    outcome = client.obfuscate(37.78, -122.41, Policy(privacy_level=2, precision_level=0, delta=3))
    print(outcome.reported_center)

See README.md for the architecture overview and DESIGN.md for the mapping
between the paper's sections and the modules here.
"""

from repro.attacks import BayesianAttacker, expected_inference_error_km
from repro.baselines import NonRobustLPMechanism, PlanarLaplaceMechanism, UniformMechanism
from repro.client import (
    CORGIClient,
    HTTPTransport,
    InProcessTransport,
    ObfuscationOutcome,
    ObfuscationSession,
    TransportForestProvider,
)
from repro.core import (
    HexNeighborhoodGraph,
    ObfuscationLP,
    ObfuscationMatrix,
    QualityLossModel,
    RobustMatrixGenerator,
    TargetDistribution,
    check_geo_ind,
    precision_reduction,
    prune_matrix,
)
from repro.datasets import (
    SAN_FRANCISCO,
    CheckIn,
    CheckInDataset,
    GowallaLikeGenerator,
    SyntheticConfig,
    load_gowalla,
    train_test_split_checkins,
)
from repro.geometry import BoundingBox, LatLng, haversine_km
from repro.hexgrid import HexCell, HexGridSystem
from repro.pipeline import CacheStats, MatrixCache, RobustGenerationTask, run_robust_tasks
from repro.policy import Policy, Predicate, annotate_tree_with_dataset, user_location_profile
from repro.server import CORGIServer, ForestEngine, PrivacyForest, ServerConfig
from repro.service import CORGIHTTPServer, CORGIService, EnginePool, ServiceConfig
from repro.tree import LocationTree, build_location_tree, priors_from_checkins, tree_for_region

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Geometry / grid
    "LatLng",
    "BoundingBox",
    "haversine_km",
    "HexCell",
    "HexGridSystem",
    # Tree
    "LocationTree",
    "build_location_tree",
    "tree_for_region",
    "priors_from_checkins",
    # Datasets
    "CheckIn",
    "CheckInDataset",
    "GowallaLikeGenerator",
    "SyntheticConfig",
    "load_gowalla",
    "train_test_split_checkins",
    "SAN_FRANCISCO",
    # Policies
    "Policy",
    "Predicate",
    "annotate_tree_with_dataset",
    "user_location_profile",
    # Core
    "ObfuscationMatrix",
    "ObfuscationLP",
    "RobustMatrixGenerator",
    "QualityLossModel",
    "TargetDistribution",
    "HexNeighborhoodGraph",
    "check_geo_ind",
    "prune_matrix",
    "precision_reduction",
    # Pipeline
    "MatrixCache",
    "CacheStats",
    "RobustGenerationTask",
    "run_robust_tasks",
    # Server / service / client
    "CORGIServer",
    "ForestEngine",
    "ServerConfig",
    "PrivacyForest",
    "CORGIService",
    "ServiceConfig",
    "CORGIHTTPServer",
    "EnginePool",
    "CORGIClient",
    "ObfuscationOutcome",
    "ObfuscationSession",
    "InProcessTransport",
    "HTTPTransport",
    "TransportForestProvider",
    # Baselines / attacks
    "NonRobustLPMechanism",
    "PlanarLaplaceMechanism",
    "UniformMechanism",
    "BayesianAttacker",
    "expected_inference_error_km",
]
